//! A tiny leveled stderr logger for the CLI binaries.
//!
//! Progress and diagnostics go to **stderr** at a level chosen by the
//! `PWM_LOG` environment variable (`error`, `warn`, `info`, `debug`;
//! default `info`), so machine-readable result lines keep stdout to
//! themselves and `repro ... > results.txt` stays clean.

use std::io::Write as _;
use std::sync::OnceLock;

/// Verbosity levels, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable problems.
    Error,
    /// Suspicious but survivable conditions.
    Warn,
    /// Progress messages (the default).
    Info,
    /// Verbose diagnostics.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a level name (case-insensitive); `None` for unknown names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// A stderr logger filtering by [`Level`].
#[derive(Debug, Clone)]
pub struct Logger {
    level: Level,
}

impl Logger {
    /// A logger at an explicit level.
    pub fn with_level(level: Level) -> Logger {
        Logger { level }
    }

    /// A logger at the level named by `PWM_LOG` (default `info`).
    pub fn from_env() -> Logger {
        let level = std::env::var("PWM_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Info);
        Logger { level }
    }

    /// The active level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether a message at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level
    }

    /// Log at an explicit level.
    pub fn log(&self, level: Level, message: &str) {
        if self.enabled(level) {
            // Failure to write progress output is not worth crashing over.
            let _ = writeln!(std::io::stderr(), "[{}] {}", level.as_str(), message);
        }
    }

    /// Log an error.
    pub fn error(&self, message: &str) {
        self.log(Level::Error, message);
    }

    /// Log a warning.
    pub fn warn(&self, message: &str) {
        self.log(Level::Warn, message);
    }

    /// Log progress.
    pub fn info(&self, message: &str) {
        self.log(Level::Info, message);
    }

    /// Log verbose diagnostics.
    pub fn debug(&self, message: &str) {
        self.log(Level::Debug, message);
    }
}

/// The process-wide logger, initialized from `PWM_LOG` on first use.
pub fn global() -> &'static Logger {
    static GLOBAL: OnceLock<Logger> = OnceLock::new();
    GLOBAL.get_or_init(Logger::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_gates_messages() {
        let l = Logger::with_level(Level::Warn);
        assert!(l.enabled(Level::Error));
        assert!(l.enabled(Level::Warn));
        assert!(!l.enabled(Level::Info));
        assert!(!l.enabled(Level::Debug));
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_garbage() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" trace "), Some(Level::Debug));
        assert_eq!(Level::parse("loud"), None);
    }
}
