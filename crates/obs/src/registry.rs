//! The labeled metrics registry: counters, gauges, and mergeable HDR-style
//! histograms, rendered in Prometheus text exposition format.
//!
//! Handles returned by the registry are `Arc`-backed and lock-free to
//! update, so hot paths (rule evaluation, rate recomputation, per-flow
//! bookkeeping) pay one relaxed atomic op per observation. Registration
//! takes a lock; callers cache handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power of two,
/// giving ≤ 12.5% relative quantile error over the full `u64` range with
/// 496 buckets.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering all of `u64` (indexes `0..=bucket_index(u64::MAX)`).
const BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB as usize) + SUB as usize;
/// Stripes to spread contended updates across threads.
const SHARDS: usize = 4;

/// HDR-style log-bucketed bucket index for `v`; monotone in `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let shift = msb - SUB_BITS as u64;
    let sub = (v >> shift) & (SUB - 1);
    ((msb - SUB_BITS as u64 + 1) * SUB + sub) as usize
}

/// Largest value mapping to bucket `i` (its inclusive upper bound).
fn bucket_upper(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let octave = (i as u64) / SUB; // >= 1
    let sub = (i as u64) % SUB;
    let shift = octave - 1;
    ((SUB + sub) << shift) + ((1u64 << shift) - 1)
}

#[derive(Debug)]
struct HistogramShard {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl HistogramShard {
    fn new() -> HistogramShard {
        HistogramShard {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }
}

/// A mergeable HDR-style histogram of `u64` observations (log-bucketed,
/// ≤ 12.5% relative error), sharded across stripes so concurrent recorders
/// don't contend on the same cache lines.
///
/// Record values in integer units (microseconds, bytes); the metric name
/// carries the unit (`*_micros`, `*_bytes`).
#[derive(Debug, Clone)]
pub struct Histogram {
    shards: Arc<Vec<HistogramShard>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            shards: Arc::new((0..SHARDS).map(|_| HistogramShard::new()).collect()),
        }
    }
}

/// Round-robin stripe assignment, one stripe per recording thread.
fn shard_for_thread() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

impl Histogram {
    /// Fresh, empty histogram (detached from any registry).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_for_thread()];
        shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merge all shards into an owned snapshot (which is itself mergeable).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        let mut sum = 0u64;
        for shard in self.shards.iter() {
            for (acc, b) in buckets.iter_mut().zip(&shard.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        HistogramSnapshot { buckets, sum }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn new() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Add one observation (for building expectations in tests or merging
    /// scalar sources).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Add another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (acc, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *acc += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// containing that rank; `None` when empty. Relative error is bounded
    /// by the bucket resolution (≤ 12.5%).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i));
            }
        }
        None
    }

    /// Non-empty `(upper_bound_inclusive, count)` buckets, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the rendered label set (`k1="v1",k2="v2"`, keys sorted), so
    /// iteration order is the exposition order.
    series: BTreeMap<String, Series>,
}

/// The metric registry: named families of labeled series.
///
/// Cloning is cheap and clones share state. Handle lookups
/// ([`Registry::counter`] etc.) are get-or-create: the same
/// (name, label set) always returns a handle to the same underlying series.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

/// Render a label set as it appears inside `{}`: keys sorted, values
/// escaped.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::new();
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out
}

/// Escape a label value per the Prometheus text format: backslash, double
/// quote, and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a HELP string per the Prometheus text format: backslash and
/// newline.
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut families = self.families.lock().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name:?} registered twice with different kinds"
        );
        family
            .series
            .entry(label_key(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, MetricKind::Counter, labels, || {
            Series::Counter(Counter::default())
        }) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, MetricKind::Gauge, labels, || {
            Series::Gauge(Gauge::default())
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, MetricKind::Histogram, labels, || {
            Series::Histogram(Histogram::default())
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked at registration"),
        }
    }

    /// Render every family in Prometheus text exposition format, families
    /// and series in sorted order (deterministic output).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let families = self.families.lock().expect("registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", name, braced(labels), c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", name, braced(labels), g.get());
                    }
                    Series::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (upper, count) in snap.nonzero_buckets() {
                            cumulative += count;
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                name,
                                braced_with(labels, "le", &upper.to_string()),
                                cumulative
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            name,
                            braced_with(labels, "le", "+Inf"),
                            snap.count()
                        );
                        let _ = writeln!(out, "{}_sum{} {}", name, braced(labels), snap.sum());
                        let _ = writeln!(out, "{}_count{} {}", name, braced(labels), snap.count());
                    }
                }
            }
        }
        out
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn braced_with(labels: &str, extra_key: &str, extra_value: &str) -> String {
    let extra = format!("{extra_key}=\"{}\"", escape_label_value(extra_value));
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{{{labels},{extra}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exact for small values, continuous across the linear/log seam.
        for v in 0..1024u64 {
            assert!(bucket_index(v + 1) >= bucket_index(v));
            assert!(bucket_upper(bucket_index(v)) >= v, "upper covers {v}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8);
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_upper_inverts_index() {
        for i in 0..BUCKETS {
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(upper), i, "upper bound of {i} maps back");
            if upper < u64::MAX {
                assert!(bucket_index(upper + 1) > i, "upper+1 leaves bucket {i}");
            }
        }
    }

    #[test]
    fn quantiles_are_within_resolution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum(), 500_500);
        let p50 = snap.quantile(0.5).unwrap() as f64;
        let p99 = snap.quantile(0.99).unwrap() as f64;
        assert!((p50 / 500.0 - 1.0).abs() <= 0.125, "p50 {p50}");
        assert!((p99 / 990.0 - 1.0).abs() <= 0.125, "p99 {p99}");
        assert_eq!(snap.quantile(0.0), snap.quantile(0.001));
        assert!(snap.quantile(1.0).unwrap() >= 1000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        let mut combined = HistogramSnapshot::new();
        for v in [1u64, 5, 9, 100, 10_000, 123_456] {
            a.record(v);
            combined.record(v);
        }
        for v in [2u64, 9, 64, 1 << 40] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.count(), 10);
        assert_eq!(a.quantile(0.5), combined.quantile(0.5));
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 80_000);
    }

    #[test]
    fn handles_share_state() {
        let r = Registry::new();
        let a = r.counter("pwm_x_total", "x", &[("k", "v")]);
        let b = r.counter("pwm_x_total", "x", &[("k", "v")]);
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let other = r.counter("pwm_x_total", "x", &[("k", "w")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn render_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("pwm_b_total", "second", &[]).inc();
        r.gauge("pwm_a_ratio", "first", &[("link", "wan")]).set(0.5);
        let h = r.histogram("pwm_c_micros", "third", &[]);
        h.record(3);
        h.record(900);
        let text = r.render_prometheus();
        let a = text.find("pwm_a_ratio").unwrap();
        let b = text.find("pwm_b_total").unwrap();
        let c = text.find("pwm_c_micros").unwrap();
        assert!(a < b && b < c, "families sorted");
        assert!(text.contains("# TYPE pwm_a_ratio gauge"));
        assert!(text.contains("# TYPE pwm_b_total counter"));
        assert!(text.contains("# TYPE pwm_c_micros histogram"));
        assert!(text.contains("pwm_a_ratio{link=\"wan\"} 0.5"));
        assert!(text.contains("pwm_b_total 1"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("pwm_c_micros_sum 903"));
        assert!(text.contains("pwm_c_micros_count 2"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(
            escape_label_value("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd",
            "backslash, quote, newline"
        );
        assert_eq!(escape_help("line\nwith \\ slash"), "line\\nwith \\\\ slash");
        let r = Registry::new();
        r.counter(
            "pwm_esc_total",
            "tricky \"help\"\nsecond",
            &[("p", "a\"b\nc\\d")],
        )
        .inc();
        let text = r.render_prometheus();
        assert!(text.contains("# HELP pwm_esc_total tricky \"help\"\\nsecond"));
        assert!(text.contains("pwm_esc_total{p=\"a\\\"b\\nc\\\\d\"} 1"));
    }

    #[test]
    fn labels_sorted_regardless_of_call_order() {
        let r = Registry::new();
        let a = r.counter("pwm_l_total", "l", &[("z", "1"), ("a", "2")]);
        let b = r.counter("pwm_l_total", "l", &[("a", "2"), ("z", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same series regardless of label order");
        assert!(r
            .render_prometheus()
            .contains("pwm_l_total{a=\"2\",z=\"1\"} 2"));
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("pwm_k_total", "k", &[]);
        r.gauge("pwm_k_total", "k", &[]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every u64 lands in a bucket whose bounds contain it.
        #[test]
        fn bucket_bounds_contain_value(v in any::<u64>()) {
            let i = bucket_index(v);
            prop_assert!(i < BUCKETS);
            prop_assert!(bucket_upper(i) >= v);
            if i > 0 {
                prop_assert!(bucket_upper(i - 1) < v);
            }
        }

        /// Merging two snapshots equals recording the union.
        #[test]
        fn merge_is_union(xs in proptest::collection::vec(any::<u64>(), 0..64),
                          ys in proptest::collection::vec(any::<u64>(), 0..64)) {
            let mut a = HistogramSnapshot::new();
            let mut b = HistogramSnapshot::new();
            let mut u = HistogramSnapshot::new();
            for &x in &xs { a.record(x); u.record(x); }
            for &y in &ys { b.record(y); u.record(y); }
            a.merge(&b);
            prop_assert_eq!(a, u);
        }
    }
}
