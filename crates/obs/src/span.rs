//! Sim-time span tracing with Chrome-trace-format and JSONL exporters.
//!
//! Spans carry explicit sequential ids and optional parent links, so the
//! hierarchy survives export regardless of how flows interleave (the
//! Chrome format's implicit begin/end nesting cannot represent dozens of
//! concurrent transfers on one logical thread). Timestamps are
//! [`SimTime`] — integer microseconds, which is exactly the Chrome `ts`
//! unit — so a same-seed simulation exports a byte-identical file.

use crate::json::JsonValue;
use pwm_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Identifies one span within a [`Tracer`]. Ids are assigned sequentially
/// in creation order (deterministic for a deterministic caller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// One finished trace event: a span (with a duration) or an instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Human-readable event name (e.g. `transfer mProjectPP_1`).
    pub name: String,
    /// Category — one flame-chart row per category in the export
    /// (`workflow`, `policy`, `net`, ...).
    pub cat: String,
    /// This event's id.
    pub id: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
    /// Start time (sim time).
    pub start: SimTime,
    /// Span length; `None` marks an instant event.
    pub dur: Option<SimDuration>,
    /// Extra key/value annotations.
    pub args: Vec<(String, String)>,
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    cat: String,
    parent: Option<u64>,
    start: SimTime,
    args: Vec<(String, String)>,
}

#[derive(Debug, Default)]
struct Inner {
    next_id: u64,
    open: BTreeMap<u64, OpenSpan>,
    done: Vec<TraceEvent>,
}

/// A shared buffer of spans and instants. Cloning is cheap and clones share
/// the buffer.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Arc<Mutex<Inner>>,
}

impl Tracer {
    /// Fresh, empty tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Open a span at `at`; close it later with [`Tracer::end_span`].
    pub fn start_span(
        &self,
        name: impl Into<String>,
        cat: impl Into<String>,
        parent: Option<SpanId>,
        at: SimTime,
    ) -> SpanId {
        let mut inner = self.inner.lock().expect("tracer lock");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.open.insert(
            id,
            OpenSpan {
                name: name.into(),
                cat: cat.into(),
                parent: parent.map(|p| p.0),
                start: at,
                args: Vec::new(),
            },
        );
        SpanId(id)
    }

    /// Attach a key/value annotation to an open span. Ignored if the span
    /// is unknown or already closed.
    pub fn span_arg(&self, id: SpanId, key: impl Into<String>, value: impl Into<String>) {
        let mut inner = self.inner.lock().expect("tracer lock");
        if let Some(span) = inner.open.get_mut(&id.0) {
            span.args.push((key.into(), value.into()));
        }
    }

    /// Close a span at `at`. Ignored if the span is unknown or already
    /// closed. Ends before the start are clamped to zero duration.
    pub fn end_span(&self, id: SpanId, at: SimTime) {
        let mut inner = self.inner.lock().expect("tracer lock");
        if let Some(span) = inner.open.remove(&id.0) {
            let dur = if at > span.start {
                at.since(span.start)
            } else {
                SimDuration::ZERO
            };
            inner.done.push(TraceEvent {
                name: span.name,
                cat: span.cat,
                id: id.0,
                parent: span.parent,
                start: span.start,
                dur: Some(dur),
                args: span.args,
            });
        }
    }

    /// Record a fully-specified span in one call.
    pub fn complete_span(
        &self,
        name: impl Into<String>,
        cat: impl Into<String>,
        parent: Option<SpanId>,
        start: SimTime,
        end: SimTime,
        args: &[(&str, String)],
    ) -> SpanId {
        let id = self.start_span(name, cat, parent, start);
        for (k, v) in args {
            self.span_arg(id, *k, v.clone());
        }
        self.end_span(id, end);
        id
    }

    /// Record an instant event (a point in time, e.g. a fault boundary).
    pub fn instant(
        &self,
        name: impl Into<String>,
        cat: impl Into<String>,
        at: SimTime,
        args: &[(&str, String)],
    ) {
        let mut inner = self.inner.lock().expect("tracer lock");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.done.push(TraceEvent {
            name: name.into(),
            cat: cat.into(),
            id,
            parent: None,
            start: at,
            dur: None,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Number of events recorded so far (finished + still open).
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("tracer lock");
        inner.done.len() + inner.open.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All events, sorted by `(start, id)`. Spans still open are closed at
    /// the latest timestamp seen anywhere in the buffer, so an export never
    /// drops them.
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("tracer lock");
        let mut last = SimTime::ZERO;
        for e in &inner.done {
            let end = e.dur.map(|d| e.start + d).unwrap_or(e.start);
            last = last.max(end);
        }
        for s in inner.open.values() {
            last = last.max(s.start);
        }
        let mut events = inner.done.clone();
        for (&id, s) in &inner.open {
            events.push(TraceEvent {
                name: s.name.clone(),
                cat: s.cat.clone(),
                id,
                parent: s.parent,
                start: s.start,
                dur: Some(last.since(s.start)),
                args: s.args.clone(),
            });
        }
        events.sort_by_key(|e| (e.start, e.id));
        events
    }

    /// Export as a Chrome-trace-format JSON document (open in Perfetto or
    /// `chrome://tracing`). Spans become `"X"` complete events carrying
    /// `span_id`/`parent` args; instants become `"i"` events; categories
    /// become named threads (one flame row each).
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events();
        let mut tids: BTreeMap<&str, i64> = BTreeMap::new();
        for e in &events {
            let next = tids.len() as i64 + 1;
            tids.entry(e.cat.as_str()).or_insert(next);
        }
        let mut out: Vec<JsonValue> = Vec::with_capacity(events.len() + tids.len());
        for (cat, tid) in &tids {
            out.push(JsonValue::Obj(vec![
                ("ph".into(), JsonValue::Str("M".into())),
                ("name".into(), JsonValue::Str("thread_name".into())),
                ("pid".into(), JsonValue::Int(1)),
                ("tid".into(), JsonValue::Int(*tid)),
                (
                    "args".into(),
                    JsonValue::Obj(vec![("name".into(), JsonValue::Str(cat.to_string()))]),
                ),
            ]));
        }
        for e in &events {
            let tid = tids[e.cat.as_str()];
            let mut args = vec![("span_id".to_string(), JsonValue::Int(e.id as i64))];
            if let Some(parent) = e.parent {
                args.push(("parent".into(), JsonValue::Int(parent as i64)));
            }
            for (k, v) in &e.args {
                args.push((k.clone(), JsonValue::Str(v.clone())));
            }
            let mut members = vec![
                ("name".to_string(), JsonValue::Str(e.name.clone())),
                ("cat".into(), JsonValue::Str(e.cat.clone())),
                ("pid".into(), JsonValue::Int(1)),
                ("tid".into(), JsonValue::Int(tid)),
                ("ts".into(), JsonValue::Int(e.start.as_micros() as i64)),
            ];
            match e.dur {
                Some(dur) => {
                    members.push(("ph".into(), JsonValue::Str("X".into())));
                    members.push(("dur".into(), JsonValue::Int(dur.as_micros() as i64)));
                }
                None => {
                    members.push(("ph".into(), JsonValue::Str("i".into())));
                    members.push(("s".into(), JsonValue::Str("t".into())));
                }
            }
            members.push(("args".into(), JsonValue::Obj(args)));
            out.push(JsonValue::Obj(members));
        }
        JsonValue::Obj(vec![
            ("traceEvents".into(), JsonValue::Arr(out)),
            ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
        ])
        .render()
    }

    /// Export as JSONL: one JSON object per event per line, sorted by
    /// `(start, id)`.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let mut members = vec![
                (
                    "type".to_string(),
                    JsonValue::Str(if e.dur.is_some() { "span" } else { "instant" }.into()),
                ),
                ("name".into(), JsonValue::Str(e.name.clone())),
                ("cat".into(), JsonValue::Str(e.cat.clone())),
                ("id".into(), JsonValue::Int(e.id as i64)),
                (
                    "ts_micros".into(),
                    JsonValue::Int(e.start.as_micros() as i64),
                ),
            ];
            if let Some(parent) = e.parent {
                members.push(("parent".into(), JsonValue::Int(parent as i64)));
            }
            if let Some(dur) = e.dur {
                members.push(("dur_micros".into(), JsonValue::Int(dur.as_micros() as i64)));
            }
            if !e.args.is_empty() {
                members.push((
                    "args".into(),
                    JsonValue::Obj(
                        e.args
                            .iter()
                            .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
                            .collect(),
                    ),
                ));
            }
            out.push_str(&JsonValue::Obj(members).render());
            out.push('\n');
        }
        out
    }
}

/// Validate a Chrome-trace JSON document produced by
/// [`Tracer::chrome_trace_json`] (or a compatible tool): well-formed JSON,
/// a non-empty `traceEvents` array, and every span with a `parent` arg
/// contained within its parent's `[ts, ts+dur]` interval. Returns the
/// number of non-metadata events.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut spans: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
    let mut real = 0usize;
    for e in events {
        let ph = e
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or("event without ph")?;
        if ph == "M" {
            continue;
        }
        real += 1;
        let ts = e
            .get("ts")
            .and_then(|v| v.as_int())
            .ok_or("event without integer ts")?;
        if ph == "X" {
            let dur = e
                .get("dur")
                .and_then(|v| v.as_int())
                .ok_or("X event without integer dur")?;
            if let Some(id) = e
                .get("args")
                .and_then(|a| a.get("span_id"))
                .and_then(|v| v.as_int())
            {
                spans.insert(id, (ts, ts + dur));
            }
        }
    }
    for e in events {
        let (Some(args), Some(ts)) = (e.get("args"), e.get("ts").and_then(|v| v.as_int())) else {
            continue;
        };
        let Some(parent) = args.get("parent").and_then(|v| v.as_int()) else {
            continue;
        };
        let (pstart, pend) = *spans
            .get(&parent)
            .ok_or_else(|| format!("parent {parent} not found"))?;
        let end = ts + e.get("dur").and_then(|v| v.as_int()).unwrap_or(0);
        if ts < pstart || end > pend {
            return Err(format!(
                "span at ts {ts}..{end} escapes parent {parent} ({pstart}..{pend})"
            ));
        }
    }
    if real == 0 {
        return Err("trace has no events".into());
    }
    Ok(real)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn spans_nest_and_export() {
        let tr = Tracer::new();
        let job = tr.start_span("job", "workflow", None, t(1));
        let rpc = tr.start_span("advice", "policy", Some(job), t(2));
        tr.end_span(rpc, t(3));
        tr.instant("fault", "net", t(4), &[("link", "wan".into())]);
        tr.end_span(job, t(5));
        assert_eq!(tr.len(), 3);

        let events = tr.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "job");
        assert_eq!(events[0].dur, Some(SimDuration::from_secs(4)));
        assert_eq!(events[1].parent, Some(job.0));

        let json = tr.chrome_trace_json();
        assert_eq!(validate_chrome_trace(&json).unwrap(), 3);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"link\":\"wan\""));
    }

    #[test]
    fn open_spans_are_closed_at_last_seen_time() {
        let tr = Tracer::new();
        let a = tr.start_span("open", "x", None, t(1));
        tr.instant("late", "x", t(9), &[]);
        let events = tr.events();
        let open = events.iter().find(|e| e.id == a.0).unwrap();
        assert_eq!(open.dur, Some(SimDuration::from_secs(8)));
    }

    #[test]
    fn export_is_deterministic_and_sorted() {
        let build = || {
            let tr = Tracer::new();
            let a = tr.start_span("a", "c1", None, t(5));
            let b = tr.start_span("b", "c0", Some(a), t(6));
            tr.end_span(b, t(7));
            tr.end_span(a, t(8));
            tr.instant("i", "c1", t(2), &[]);
            tr
        };
        let x = build();
        let y = build();
        assert_eq!(x.chrome_trace_json(), y.chrome_trace_json());
        assert_eq!(x.jsonl(), y.jsonl());
        let events = x.events();
        assert!(events
            .windows(2)
            .all(|w| (w[0].start, w[0].id) <= (w[1].start, w[1].id)));
        assert_eq!(events[0].name, "i", "earliest first");
    }

    #[test]
    fn validator_rejects_bad_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        // A child escaping its parent's interval.
        let bad = r#"{"traceEvents":[
            {"name":"p","cat":"c","pid":1,"tid":1,"ts":0,"ph":"X","dur":10,"args":{"span_id":0}},
            {"name":"c","cat":"c","pid":1,"tid":1,"ts":5,"ph":"X","dur":10,"args":{"span_id":1,"parent":0}}
        ]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("escapes parent"));
    }

    #[test]
    fn end_of_unknown_span_is_ignored() {
        let tr = Tracer::new();
        tr.end_span(SpanId(99), t(1));
        assert!(tr.is_empty());
        let a = tr.start_span("a", "c", None, t(2));
        tr.end_span(a, t(3));
        tr.end_span(a, t(9)); // double end: ignored
        assert_eq!(tr.events()[0].dur, Some(SimDuration::from_secs(1)));
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let tr = Tracer::new();
        let a = tr.start_span("a", "c", None, t(1));
        tr.span_arg(a, "k", "v");
        tr.end_span(a, t(2));
        tr.instant("i", "c", t(3), &[]);
        let jsonl = tr.jsonl();
        let lines: Vec<_> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = JsonValue::parse(line).unwrap();
            assert!(v.get("type").is_some());
        }
    }
}
