//! A minimal, deterministic JSON value model with a writer and a
//! recursive-descent parser.
//!
//! The vendored `serde_json` substitute only (de)serializes concrete derived
//! types; the trace exporters need a dynamic document model (heterogeneous
//! `args` maps, validation of externally produced files), so this module
//! provides one. Object member order is preserved as inserted, which keeps
//! exports byte-stable across same-seed runs.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; member order is preserved (not sorted).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Look up an object member by key (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// Parse JSON text. Rejects trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}
impl std::error::Error for JsonError {}

/// Nesting depth guard (a parser for trace files, not adversarial input —
/// but it must not blow the stack either way).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| JsonValue::Null),
            Some(b't') => self.eat_keyword("true").map(|_| JsonValue::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the `XXXX` of a `\uXXXX` escape (cursor on the `u`), including
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let unit = self.hex4()?;
        if (0xD800..0xDC00).contains(&unit) {
            // High surrogate: require a following \uXXXX low surrogate.
            self.eat(b'\\')?;
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.err("unpaired surrogate"));
            }
            let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
            char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"))
        } else if (0xDC00..0xE000).contains(&unit) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(unit).ok_or_else(|| self.err("bad codepoint"))
        }
    }

    /// Consume `uXXXX` (cursor on the `u`); returns the code unit and leaves
    /// the cursor after the last hex digit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        self.eat(b'u')?;
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &JsonValue) -> JsonValue {
        JsonValue::parse(&v.render()).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            JsonValue::Null,
            JsonValue::Bool(true),
            JsonValue::Bool(false),
            JsonValue::Int(0),
            JsonValue::Int(-42),
            JsonValue::Int(i64::MAX),
            JsonValue::Float(1.5),
            JsonValue::Str("plain".into()),
            JsonValue::Str("quo\"te \\ back\nnew\ttab".into()),
            JsonValue::Str("unicode: åäö 🚀 \u{1}".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "value {v:?}");
        }
    }

    #[test]
    fn containers_roundtrip_and_preserve_order() {
        let v = JsonValue::Obj(vec![
            ("zeta".into(), JsonValue::Arr(vec![JsonValue::Int(1)])),
            ("alpha".into(), JsonValue::Obj(vec![])),
        ]);
        let text = v.render();
        assert!(text.find("zeta").unwrap() < text.find("alpha").unwrap());
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , \"\\u0041\\u00e5\" , null ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str().unwrap(),
            "Aå"
        );
    }

    #[test]
    fn parses_surrogate_pair() {
        let v = JsonValue::parse("\"\\ud83d\\ude80\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "🚀");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"\\ud83d\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse("{\"n\":3,\"s\":\"x\",\"f\":2.0}").unwrap();
        assert_eq!(v.get("n").unwrap().as_int(), Some(3));
        assert_eq!(v.get("f").unwrap().as_int(), Some(2));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_never_panics(s in "\\PC{0,256}") {
            let _ = JsonValue::parse(&s);
        }

        /// Arbitrary strings survive a render/parse round trip.
        #[test]
        fn strings_roundtrip(s in "\\PC{0,128}") {
            let v = JsonValue::Str(s.clone());
            prop_assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
        }
    }
}
