//! Differential property: a [`FaultPlan`] window whose boundaries land
//! *exactly on event timestamps* — flow starts, activations, completions —
//! must integrate identically under both event-queue implementations
//! ([`QueueKind::Heap`] and [`QueueKind::Ladder`]).
//!
//! Exact coincidence is the adversarial case: a fault boundary at the same
//! instant as a queued event exercises the segment-splitting logic in
//! `Network::advance` (boundary vs. event ordering within one instant) and
//! the strictly-in-the-future contract of `next_wakeup`. A queue that
//! perturbed same-instant ordering would shift which capacity a completing
//! flow last integrated under and change its completion time.
//!
//! The strategy first runs the flow set fault-free to learn the exact event
//! timestamps, then picks a window whose start and end are drawn from that
//! set, and replays under both queues asserting bit-identical transfer
//! records and final clocks.

use proptest::prelude::*;
use pwm_net::fault::{LinkFault, LinkFaultKind};
use pwm_net::{FlowSpec, Network, StreamModel, Topology, TransferRecord};
use pwm_sim::{FaultPlan, QueueKind, SimDuration, SimTime};

/// One generated transfer: (start, bytes, streams).
#[derive(Debug, Clone)]
struct GenFlow {
    start_us: u64,
    bytes: f64,
    streams: u32,
}

fn flow_strategy() -> impl Strategy<Value = GenFlow> {
    (0u64..2_000_000, 100_000u64..4_000_000, 1u32..4).prop_map(|(start_us, bytes, streams)| {
        GenFlow {
            start_us,
            bytes: bytes as f64,
            streams,
        }
    })
}

/// Two hosts around one 5 MB/s WAN link — slow enough that generated flows
/// overlap and fault windows land mid-transfer.
fn build() -> (Topology, pwm_net::HostId, pwm_net::HostId, pwm_net::LinkId) {
    let mut t = Topology::new();
    let a = t.add_host("src", 10.0e6);
    let b = t.add_host("dst", 10.0e6);
    let wan = t.add_link("wan", 5.0e6, SimDuration::from_millis(10));
    t.set_route(a, b, vec![wan]);
    t.set_route(b, a, vec![wan]);
    (t, a, b, wan)
}

/// Run the flow set to completion under `queue` with `plan` installed,
/// returning the tag-sorted transfer records and the final clock.
fn drive(
    queue: QueueKind,
    flows: &[GenFlow],
    plan: FaultPlan<LinkFault>,
) -> (Vec<TransferRecord>, SimTime) {
    let (topo, a, b, _wan) = build();
    let mut net = Network::with_seed_queue(topo, StreamModel::default(), 7, queue);
    net.set_fault_plan(plan);
    let mut starts: Vec<(SimTime, GenFlow, u64)> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| (SimTime::from_micros(f.start_us), f.clone(), i as u64))
        .collect();
    starts.sort_by_key(|(t, _, tag)| (*t, *tag));
    let mut ix = 0;
    loop {
        let next_start = starts.get(ix).map(|(t, _, _)| *t);
        let t = match (next_start, net.next_wakeup()) {
            (None, None) => break,
            (Some(s), None) => s,
            (None, Some(w)) => w,
            (Some(s), Some(w)) => s.min(w),
        };
        net.advance(t);
        while ix < starts.len() && starts[ix].0 <= t {
            let (_, f, tag) = &starts[ix];
            net.start_flow(
                t,
                FlowSpec {
                    src: a,
                    dst: b,
                    bytes: f.bytes,
                    streams: f.streams,
                    tag: *tag,
                },
            );
            ix += 1;
        }
    }
    let mut recs = net.take_completed();
    recs.sort_by_key(|r| r.tag);
    (recs, net.now())
}

/// Every event timestamp of the fault-free run: starts, activations, and
/// completions, deduplicated and sorted.
fn event_timestamps(flows: &[GenFlow]) -> Vec<SimTime> {
    let (recs, _) = drive(QueueKind::Heap, flows, FaultPlan::new());
    let mut ts: Vec<SimTime> = flows
        .iter()
        .map(|f| SimTime::from_micros(f.start_us))
        .chain(recs.iter().flat_map(|r| [r.activated_at, r.completed_at]))
        .collect();
    ts.sort();
    ts.dedup();
    ts
}

fn assert_identical(heap: &[TransferRecord], ladder: &[TransferRecord]) {
    assert_eq!(heap.len(), ladder.len(), "completion counts differ");
    for (h, l) in heap.iter().zip(ladder) {
        assert_eq!(h.tag, l.tag);
        assert_eq!(h.bytes, l.bytes);
        assert_eq!(h.streams, l.streams);
        assert_eq!(h.requested_at, l.requested_at, "tag {}", h.tag);
        assert_eq!(h.activated_at, l.activated_at, "tag {}", h.tag);
        assert_eq!(h.completed_at, l.completed_at, "tag {}", h.tag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A window snapped to two exact event timestamps (start inclusive,
    /// end exclusive) integrates identically across queue kinds, for both
    /// full outages and degradations.
    #[test]
    fn snapped_fault_window_is_queue_invariant(
        flows in proptest::collection::vec(flow_strategy(), 2..6),
        start_sel in 0usize..32,
        end_sel in 0usize..32,
        down in any::<bool>(),
    ) {
        let ts = event_timestamps(&flows);
        prop_assert!(ts.len() >= 2, "two flows always produce two timestamps");
        let i = start_sel % (ts.len() - 1);
        let j = i + 1 + (end_sel % (ts.len() - 1 - i));
        let (t0, t1) = (ts[i], ts[j]);
        let kind = if down {
            LinkFaultKind::Down
        } else {
            LinkFaultKind::Degrade(0.4)
        };
        let mk_plan = || {
            let mut plan = FaultPlan::new();
            let (topo, _, _, wan) = build();
            let _ = topo;
            plan.add(t0, t1.since(t0), LinkFault { link: wan, kind });
            plan
        };
        let (heap, heap_end) = drive(QueueKind::Heap, &flows, mk_plan());
        let (ladder, ladder_end) = drive(QueueKind::Ladder, &flows, mk_plan());
        prop_assert_eq!(heap.len(), flows.len(), "every flow must complete");
        assert_identical(&heap, &ladder);
        prop_assert_eq!(heap_end, ladder_end);
    }
}

/// Pinned regression: a full outage that begins exactly at one flow's
/// activation instant and ends exactly at the fault-free completion
/// instant of another.
#[test]
fn window_snapped_to_activation_and_completion_is_queue_invariant() {
    let flows = vec![
        GenFlow {
            start_us: 0,
            bytes: 2_000_000.0,
            streams: 2,
        },
        GenFlow {
            start_us: 150_000,
            bytes: 1_000_000.0,
            streams: 1,
        },
    ];
    let ts = event_timestamps(&flows);
    assert!(ts.len() >= 3);
    let (t0, t1) = (ts[1], ts[ts.len() - 1]);
    let mk_plan = || {
        let mut plan = FaultPlan::new();
        let (_, _, _, wan) = build();
        plan.add(
            t0,
            t1.since(t0),
            LinkFault {
                link: wan,
                kind: LinkFaultKind::Down,
            },
        );
        plan
    };
    let (heap, heap_end) = drive(QueueKind::Heap, &flows, mk_plan());
    let (ladder, ladder_end) = drive(QueueKind::Ladder, &flows, mk_plan());
    assert_eq!(heap.len(), flows.len());
    assert_identical(&heap, &ladder);
    assert_eq!(heap_end, ladder_end);
    // The outage actually delayed work: completions moved past the window.
    assert!(heap.iter().any(|r| r.completed_at >= t1));
}
