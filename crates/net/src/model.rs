//! The parallel-stream performance model.
//!
//! This module encodes the physics the paper's greedy policy exploits. Three
//! empirically motivated effects, each with a tunable knob:
//!
//! 1. **Per-stream throughput cap** — a TCP stream moves at most
//!    `window / RTT`; parallel streams exist precisely to aggregate past this
//!    cap. More streams help until the link itself saturates.
//! 2. **Over-subscription decay** — beyond a *knee* of total concurrent
//!    streams on a link, effective capacity declines (receiver/NIC thrash,
//!    loss synchronization). This is the paper's observation that a greedy
//!    threshold of 200 *hurts*: "the greedy algorithm can over-allocate the
//!    number of streams ... resulting in worse performance".
//! 3. **Churn turbulence** — the decay only bites while the flow population
//!    is in flux: every flow arrival/departure perturbs congestion control
//!    and the disturbance takes `turbulence_tau` to die out. Workloads with
//!    many medium transfers churn constantly and feel the full decay; very
//!    long transfers (the paper's 1 GB case) give TCP time to converge, which
//!    is why Fig. 9 shows "no clear advantage ... regardless of the policy
//!    used". A small `steady_overload_frac` of the decay applies even in
//!    steady state.
//!
//! On top of these, each file transfer pays a **connection setup** cost
//! (`setup_base + setup_per_stream × streams`, scaled by route RTT) and a
//! **slow-start ramp**: a freshly activated flow reaches its per-stream cap
//! exponentially with time constant `ramp_tau`.

use pwm_sim::{SimDuration, SimTime};

/// Tunable constants of the stream performance model.
///
/// Defaults are calibrated (see `pwm-bench`) so the paper-testbed topology
/// reproduces the orderings and rough factors of Figures 5–9.
#[derive(Debug, Clone)]
pub struct StreamModel {
    /// TCP window per stream, bytes. A stream's rate cap is
    /// `window_bytes / max(route RTT, min_rtt)`.
    pub window_bytes: f64,
    /// RTT floor so LAN routes don't get infinite per-stream caps.
    pub min_rtt: SimDuration,
    /// Total concurrent streams a link carries without degradation.
    pub knee_streams: f64,
    /// Logistic center of the over-subscription severity curve, expressed in
    /// streams *beyond* the knee.
    pub overload_center: f64,
    /// Logistic width of the severity curve (streams).
    pub overload_width: f64,
    /// Maximum fraction of link capacity lost to over-subscription.
    pub overload_max: f64,
    /// Turbulence added to a link by one flow arrival/departure.
    pub turbulence_per_event: f64,
    /// Exponential decay time of turbulence.
    pub turbulence_tau: SimDuration,
    /// Fraction of the severity applied even with zero turbulence.
    pub steady_overload_frac: f64,
    /// Per-flow fair-share weight jitter (TCP unfairness): each flow's
    /// effective weight is `streams × U(1-j, 1+j)`. This desynchronizes the
    /// completion times of equal-sized transfers, which is what keeps churn
    /// — and therefore the over-subscription penalty — continuous for
    /// medium transfers while very long transfers settle between events.
    pub flow_weight_jitter: f64,
    /// Fixed part of per-file connection setup (authentication, control
    /// channel), independent of RTT.
    pub setup_base: SimDuration,
    /// Additional setup per parallel stream opened.
    pub setup_per_stream: SimDuration,
    /// Number of route RTTs a connection handshake costs.
    pub setup_rtts: f64,
    /// Slow-start ramp time constant for a new flow.
    pub ramp_tau: SimDuration,
    /// How often rates are refreshed while flows ramp or links are turbulent.
    pub refresh_interval: SimDuration,
}

impl Default for StreamModel {
    fn default() -> Self {
        StreamModel {
            // 64 KiB window over ~40 ms → ~1.6 MB/s per stream, matching the
            // paper's need for several streams to fill a 3.5 MB/s WAN path.
            window_bytes: 65_536.0,
            min_rtt: SimDuration::from_millis(1),
            knee_streams: 66.0,
            overload_center: 55.0,
            overload_width: 40.0,
            overload_max: 0.5,
            turbulence_per_event: 0.5,
            turbulence_tau: SimDuration::from_secs(28),
            steady_overload_frac: 0.05,
            flow_weight_jitter: 0.22,
            setup_base: SimDuration::from_millis(350),
            setup_per_stream: SimDuration::from_millis(45),
            setup_rtts: 3.0,
            ramp_tau: SimDuration::from_secs(2),
            refresh_interval: SimDuration::from_secs(2),
        }
    }
}

impl StreamModel {
    /// Over-subscription severity for `n` total streams against a knee:
    /// 0 below the knee, rising along a logistic toward `overload_max`.
    pub fn severity(&self, n_streams: f64, knee: f64) -> f64 {
        if n_streams <= knee {
            return 0.0;
        }
        let x = (n_streams - knee - self.overload_center) / self.overload_width;
        self.overload_max / (1.0 + (-x).exp())
    }

    /// Effective capacity multiplier for a link given total streams and the
    /// current turbulence level (`0 ≤ turbulence`, saturating at 1).
    pub fn capacity_factor(&self, n_streams: f64, knee: f64, turbulence: f64) -> f64 {
        let sev = self.severity(n_streams, knee);
        let agitation = self.steady_overload_frac
            + (1.0 - self.steady_overload_frac) * turbulence.clamp(0.0, 1.0);
        (1.0 - sev * agitation).max(0.05)
    }

    /// Per-stream rate cap for a route with the given RTT (window / RTT).
    pub fn per_stream_rate(&self, rtt: SimDuration) -> f64 {
        let rtt = rtt.max(self.min_rtt).as_secs_f64();
        self.window_bytes / rtt
    }

    /// Slow-start multiplier for a flow that activated `age` ago. Floored at
    /// 0.3: TCP moves data from the first RTT, and the fluid model's rates
    /// are only refreshed at discrete instants.
    pub fn ramp_factor(&self, age: SimDuration) -> f64 {
        let tau = self.ramp_tau.as_secs_f64();
        if tau <= 0.0 {
            return 1.0;
        }
        (1.0 - (-age.as_secs_f64() / tau).exp()).max(0.3)
    }

    /// True once a flow's ramp factor is effectively 1.
    pub fn ramp_done(&self, age: SimDuration) -> bool {
        age >= self.ramp_tau * 5
    }

    /// Per-file connection setup time for `streams` parallel streams over a
    /// route with round-trip `rtt`.
    pub fn setup_time(&self, streams: u32, rtt: SimDuration) -> SimDuration {
        self.setup_base + self.setup_per_stream * streams as u64 + rtt.mul_f64(self.setup_rtts)
    }

    /// Turbulence remaining after `dt` of decay from level `t0`.
    pub fn decay_turbulence(&self, t0: f64, dt: SimDuration) -> f64 {
        let tau = self.turbulence_tau.as_secs_f64();
        if tau <= 0.0 || t0 == 0.0 {
            return 0.0;
        }
        let t = t0 * (-dt.as_secs_f64() / tau).exp();
        if t < 1e-4 {
            0.0
        } else {
            t
        }
    }

    /// Maximum rate of a flow with `streams` streams at `age` since
    /// activation over a route with round-trip `rtt`, before link sharing.
    pub fn flow_cap(&self, streams: u32, age: SimDuration, rtt: SimDuration) -> f64 {
        streams as f64 * self.per_stream_rate(rtt) * self.ramp_factor(age)
    }
}

/// Per-link dynamic state: stream occupancy and turbulence.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Total streams of flows currently active on this link.
    pub streams: u32,
    /// Current turbulence level (decays exponentially).
    pub turbulence: f64,
    /// When `turbulence` was last brought up to date.
    pub updated_at: SimTime,
    /// High-water mark of concurrent streams (Table IV cross-check).
    pub peak_streams: u32,
}

impl LinkState {
    /// Fresh, idle link state.
    pub fn new() -> Self {
        LinkState {
            streams: 0,
            turbulence: 0.0,
            updated_at: SimTime::ZERO,
            peak_streams: 0,
        }
    }

    /// Decay turbulence up to `now`.
    pub fn settle(&mut self, model: &StreamModel, now: SimTime) {
        if now > self.updated_at {
            self.turbulence = model.decay_turbulence(self.turbulence, now - self.updated_at);
            self.updated_at = now;
        }
    }

    /// Register a flow joining/leaving with `streams` streams: adjusts the
    /// stream count and injects turbulence proportional to how loaded the
    /// link already is (a churn event on a crowded link is more disruptive).
    pub fn membership_change(&mut self, model: &StreamModel, now: SimTime, delta: i64, knee: f64) {
        self.settle(model, now);
        let new = (self.streams as i64 + delta).max(0) as u32;
        self.streams = new;
        self.peak_streams = self.peak_streams.max(new);
        let load = (self.streams as f64 / knee.max(1.0)).min(3.0);
        self.turbulence = (self.turbulence + model.turbulence_per_event * load).min(1.5);
    }
}

impl Default for LinkState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> StreamModel {
        StreamModel::default()
    }

    #[test]
    fn severity_is_zero_below_knee() {
        let m = m();
        assert_eq!(m.severity(0.0, 66.0), 0.0);
        assert_eq!(m.severity(66.0, 66.0), 0.0);
        assert!(m.severity(67.0, 66.0) > 0.0);
    }

    #[test]
    fn severity_increases_with_streams() {
        let m = m();
        let s80 = m.severity(80.0, 66.0);
        let s110 = m.severity(110.0, 66.0);
        let s160 = m.severity(160.0, 66.0);
        let s203 = m.severity(203.0, 66.0);
        assert!(s80 < s110 && s110 < s160 && s160 < s203);
        assert!(s203 <= m.overload_max);
    }

    #[test]
    fn severity_saturates_at_overload_max() {
        let m = m();
        assert!((m.severity(10_000.0, 66.0) - m.overload_max).abs() < 1e-3);
    }

    #[test]
    fn capacity_factor_full_when_healthy() {
        let m = m();
        assert_eq!(m.capacity_factor(50.0, 66.0, 1.0), 1.0);
    }

    #[test]
    fn capacity_factor_depends_on_turbulence() {
        let m = m();
        let calm = m.capacity_factor(160.0, 66.0, 0.0);
        let turbulent = m.capacity_factor(160.0, 66.0, 1.0);
        assert!(turbulent < calm, "turbulence should deepen the penalty");
        // Even calm links keep a small steady-state penalty.
        assert!(calm < 1.0);
    }

    #[test]
    fn capacity_factor_floor() {
        let mut m = m();
        m.overload_max = 1.0;
        m.steady_overload_frac = 1.0;
        assert!(m.capacity_factor(10_000.0, 1.0, 1.0) >= 0.05);
    }

    #[test]
    fn ramp_rises_to_one_with_floor() {
        let m = m();
        assert_eq!(m.ramp_factor(SimDuration::ZERO), 0.3);
        let half = m.ramp_factor(m.ramp_tau);
        assert!((half - 0.632).abs() < 0.01);
        assert!(m.ramp_factor(m.ramp_tau * 10) > 0.999);
        assert!(m.ramp_done(m.ramp_tau * 5));
        assert!(!m.ramp_done(m.ramp_tau * 4));
    }

    #[test]
    fn per_stream_rate_uses_rtt_with_floor() {
        let m = m();
        let wan = m.per_stream_rate(SimDuration::from_millis(40));
        assert!((wan - 65_536.0 / 0.040).abs() < 1.0);
        // Sub-floor RTTs clamp to min_rtt.
        let lan = m.per_stream_rate(SimDuration::from_micros(10));
        assert!((lan - 65_536.0 / 0.001).abs() < 1.0);
    }

    #[test]
    fn setup_time_scales_with_streams_and_rtt() {
        let m = m();
        let rtt = SimDuration::from_millis(40);
        let s4 = m.setup_time(4, rtt);
        let s12 = m.setup_time(12, rtt);
        assert!(s12 > s4);
        assert_eq!(s12 - s4, m.setup_per_stream * 8);
        let far = m.setup_time(4, SimDuration::from_millis(400));
        assert!(far > s4);
    }

    #[test]
    fn turbulence_decays_and_clips_to_zero() {
        let m = m();
        let t = m.decay_turbulence(1.0, m.turbulence_tau);
        assert!((t - 0.3679).abs() < 0.01);
        assert_eq!(
            m.decay_turbulence(1.0, SimDuration::from_secs(100_000)),
            0.0
        );
        assert_eq!(m.decay_turbulence(0.0, SimDuration::from_secs(1)), 0.0);
    }

    #[test]
    fn flow_cap_scales_with_streams() {
        let m = m();
        let age = m.ramp_tau * 20;
        let rtt = SimDuration::from_millis(40);
        let c1 = m.flow_cap(1, age, rtt);
        let c4 = m.flow_cap(4, age, rtt);
        assert!((c4 / c1 - 4.0).abs() < 1e-9);
        assert!((c1 - m.per_stream_rate(rtt)).abs() < 1.0);
    }

    #[test]
    fn link_state_tracks_streams_and_peak() {
        let m = m();
        let mut ls = LinkState::new();
        ls.membership_change(&m, SimTime::from_secs(1), 8, 66.0);
        ls.membership_change(&m, SimTime::from_secs(2), 4, 66.0);
        assert_eq!(ls.streams, 12);
        assert_eq!(ls.peak_streams, 12);
        ls.membership_change(&m, SimTime::from_secs(3), -8, 66.0);
        assert_eq!(ls.streams, 4);
        assert_eq!(ls.peak_streams, 12);
    }

    #[test]
    fn link_state_never_goes_negative() {
        let m = m();
        let mut ls = LinkState::new();
        ls.membership_change(&m, SimTime::from_secs(1), -5, 66.0);
        assert_eq!(ls.streams, 0);
    }

    #[test]
    fn membership_change_injects_turbulence_proportional_to_load() {
        let m = m();
        let mut light = LinkState::new();
        light.membership_change(&m, SimTime::from_secs(1), 4, 66.0);
        let mut heavy = LinkState::new();
        heavy.membership_change(&m, SimTime::from_secs(1), 200, 66.0);
        assert!(heavy.turbulence > light.turbulence);
        assert!(heavy.turbulence <= 1.5);
    }

    #[test]
    fn settle_decays_between_events() {
        let m = m();
        let mut ls = LinkState::new();
        ls.membership_change(&m, SimTime::from_secs(0), 100, 66.0);
        let t0 = ls.turbulence;
        ls.settle(&m, SimTime::from_secs(200));
        assert!(ls.turbulence < t0 * 0.05);
    }
}
