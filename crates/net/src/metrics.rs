//! Aggregated transfer metrics.
//!
//! [`TransferLedger`] accumulates [`TransferRecord`]s and answers the
//! questions the experiment harness asks: how long did staging take in
//! aggregate, what goodput did transfers of a given tag class achieve, what
//! did the completion timeline look like.
//!
//! This is *post-run analysis* over owned records; live instrumentation
//! (per-link gauges, flow spans, fault instants) goes through the shared
//! `pwm-obs` handle attached with `Network::set_obs`.

use crate::flow::TransferRecord;
use pwm_sim::{OnlineStats, SimTime, Summary};

/// Counters describing how much work the rate allocator actually did —
/// the observable difference between the full-recompute baseline and the
/// incremental, component-local engine (see `DESIGN.md` §8).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AllocStats {
    /// Rate-recomputation entry points taken (one per integration step with
    /// live flows).
    pub recomputes: u64,
    /// Recomputes that found no dirty links and skipped allocation entirely.
    pub skipped: u64,
    /// Component-local progressive-filling runs performed.
    pub component_runs: u64,
    /// Flows passed through progressive filling, summed over all runs. Under
    /// full recompute this is `recomputes × live flows`; component-local
    /// allocation only pays for flows in dirty components.
    pub flows_allocated: u64,
    /// Links touched by progressive filling, summed over all runs.
    pub links_allocated: u64,
    /// Rate writes suppressed because the fresh allocation matched the
    /// previous one within epsilon (no ETA churn, no wakeup cascade).
    pub unchanged_writes: u64,
}

impl AllocStats {
    /// Mean flows per progressive-filling run (0 when none ran).
    pub fn mean_flows_per_run(&self) -> f64 {
        if self.component_runs == 0 {
            0.0
        } else {
            self.flows_allocated as f64 / self.component_runs as f64
        }
    }
}

/// Accumulates completed transfers for post-run analysis.
#[derive(Debug, Default)]
pub struct TransferLedger {
    records: Vec<TransferRecord>,
}

impl TransferLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb a batch of completion records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = TransferRecord>) {
        self.records.extend(records);
    }

    /// All records, in completion order as absorbed.
    pub fn records(&self) -> &[TransferRecord] {
        &self.records
    }

    /// Number of completed transfers.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no transfers completed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total payload bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Time the last transfer completed (ZERO when empty).
    pub fn last_completion(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| r.completed_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Time the first transfer was requested (ZERO when empty).
    pub fn first_request(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| r.requested_at)
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Goodput statistics over transfers matching `pred`.
    pub fn goodput_summary(&self, pred: impl Fn(&TransferRecord) -> bool) -> Summary {
        let mut stats = OnlineStats::new();
        for r in self.records.iter().filter(|r| pred(r)) {
            let g = r.goodput();
            if g > 0.0 {
                stats.push(g);
            }
        }
        stats.summary()
    }

    /// End-to-end duration statistics (seconds) over matching transfers.
    pub fn duration_summary(&self, pred: impl Fn(&TransferRecord) -> bool) -> Summary {
        let mut stats = OnlineStats::new();
        for r in self.records.iter().filter(|r| pred(r)) {
            stats.push(r.total_duration().as_secs_f64());
        }
        stats.summary()
    }

    /// Aggregate goodput: total bytes over the staging window
    /// (first request → last completion). 0 when empty or instantaneous.
    pub fn aggregate_goodput(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let window = self
            .last_completion()
            .since(self.first_request())
            .as_secs_f64();
        if window <= 0.0 {
            0.0
        } else {
            self.total_bytes() / window
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;
    use crate::topology::HostId;

    fn rec(tag: u64, req: u64, act: u64, done: u64, bytes: f64) -> TransferRecord {
        TransferRecord {
            flow: FlowId(tag),
            tag,
            src: HostId(0),
            dst: HostId(1),
            bytes,
            streams: 4,
            requested_at: SimTime::from_secs(req),
            activated_at: SimTime::from_secs(act),
            completed_at: SimTime::from_secs(done),
        }
    }

    #[test]
    fn empty_ledger_defaults() {
        let l = TransferLedger::new();
        assert!(l.is_empty());
        assert_eq!(l.total_bytes(), 0.0);
        assert_eq!(l.aggregate_goodput(), 0.0);
        assert_eq!(l.last_completion(), SimTime::ZERO);
    }

    #[test]
    fn totals_and_window() {
        let mut l = TransferLedger::new();
        l.extend([rec(1, 0, 1, 10, 100.0), rec(2, 5, 6, 25, 300.0)]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.total_bytes(), 400.0);
        assert_eq!(l.first_request(), SimTime::ZERO);
        assert_eq!(l.last_completion(), SimTime::from_secs(25));
        assert!((l.aggregate_goodput() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn filtered_summaries() {
        let mut l = TransferLedger::new();
        l.extend([rec(1, 0, 0, 10, 100.0), rec(2, 0, 0, 20, 100.0)]);
        let all = l.duration_summary(|_| true);
        assert_eq!(all.n, 2);
        assert!((all.mean - 15.0).abs() < 1e-9);
        let one = l.duration_summary(|r| r.tag == 1);
        assert_eq!(one.n, 1);
        assert!((one.mean - 10.0).abs() < 1e-9);
    }

    #[test]
    fn goodput_summary_ignores_instant_transfers() {
        let mut l = TransferLedger::new();
        l.extend([rec(1, 0, 5, 5, 100.0), rec(2, 0, 0, 10, 100.0)]);
        let s = l.goodput_summary(|_| true);
        assert_eq!(s.n, 1);
        assert!((s.mean - 10.0).abs() < 1e-9);
    }
}
