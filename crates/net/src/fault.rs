//! Link-level fault kinds for the fluid-flow network.
//!
//! A [`LinkFault`] is the payload carried by a [`pwm_sim::FaultPlan`]
//! installed on a [`crate::Network`]: while a fault window is active the
//! affected link's effective capacity is scaled (to zero for an outage),
//! which forces the weighted max-min allocator to re-share every in-flight
//! flow crossing that link. Overlapping faults on the same link compose
//! multiplicatively.

use crate::topology::LinkId;

/// What happens to a link while a fault window is active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFaultKind {
    /// The link is down: effective capacity is zero, flows crossing it
    /// stall (and resume when the window closes — a "flap" is a short
    /// `Down` window).
    Down,
    /// The link's capacity is multiplied by the given factor in `(0, 1)`
    /// (e.g. `0.3` models severe congestion or a failed bonded member).
    Degrade(f64),
}

/// A fault on one specific link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// The affected link.
    pub link: LinkId,
    /// How the link misbehaves.
    pub kind: LinkFaultKind,
}

impl LinkFault {
    /// The multiplier this fault applies to the link's capacity.
    pub fn capacity_factor(&self) -> f64 {
        match self.kind {
            LinkFaultKind::Down => 0.0,
            LinkFaultKind::Degrade(f) => f.clamp(0.0, 1.0),
        }
    }
}
