//! Flow (single file transfer) state.

use crate::topology::{HostId, LinkId};
use pwm_sim::{SimDuration, SimTime};

/// Identifies a flow within one [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A request to move one file between two hosts with a given number of
/// parallel streams.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Payload size in bytes.
    pub bytes: f64,
    /// Parallel streams to open (≥ 1; 0 is coerced to 1).
    pub streams: u32,
    /// Opaque tag for correlating with workflow-level transfers.
    pub tag: u64,
}

/// Lifecycle phase of a flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowPhase {
    /// Connection setup in progress; streams not yet occupying links.
    Connecting {
        /// When the data channels open.
        until: SimTime,
    },
    /// Connection setup finished but the transfer server at one endpoint is
    /// at its connection limit; waiting for a slot.
    Queued,
    /// Moving bytes.
    Active {
        /// When the data channels opened (for ramp age).
        activated_at: SimTime,
        /// Bytes still to move (fluid).
        remaining: f64,
        /// Rate assigned at the last recompute (bytes/sec).
        rate: f64,
    },
    /// All bytes delivered (awaiting collection).
    Done,
}

/// A flow plus its routing and bookkeeping.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Immutable request.
    pub spec: FlowSpec,
    /// Current phase.
    pub phase: FlowPhase,
    /// Links the flow occupies when active.
    pub route: Vec<LinkId>,
    /// `route` projected to raw link indices — cached at creation so the
    /// rate-recompute hot path never rebuilds it.
    pub links: Vec<usize>,
    /// Round-trip time of `route`, cached at creation (the route is fixed
    /// for the flow's lifetime, and therefore so is its RTT).
    pub route_rtt: SimDuration,
    /// When `start_flow` was called.
    pub requested_at: SimTime,
    /// Per-flow fair-share multiplier (TCP unfairness), drawn at start.
    pub weight_factor: f64,
}

impl Flow {
    /// Effective stream count (floor of 1).
    pub fn streams(&self) -> u32 {
        self.spec.streams.max(1)
    }

    /// Age since activation (zero while connecting).
    pub fn age(&self, now: SimTime) -> SimDuration {
        match &self.phase {
            FlowPhase::Active { activated_at, .. } => now.since(*activated_at),
            _ => SimDuration::ZERO,
        }
    }
}

/// A flow torn down by [`crate::Network::kill_flows_touching`] before it
/// finished: a host crash severs every transfer endpointed there. No
/// [`TransferRecord`] is emitted for a killed flow — the caller decides
/// whether and where to retry.
#[derive(Debug, Clone, PartialEq)]
pub struct KilledFlow {
    /// The severed flow.
    pub flow: FlowId,
    /// Caller's tag from the [`FlowSpec`].
    pub tag: u64,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Bytes still unmoved at the instant of the kill (the full payload for
    /// flows that never activated).
    pub bytes_remaining: f64,
}

/// The completed-transfer record handed back to callers.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRecord {
    /// The finished flow.
    pub flow: FlowId,
    /// Caller's tag from the [`FlowSpec`].
    pub tag: u64,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Bytes moved.
    pub bytes: f64,
    /// Parallel streams used.
    pub streams: u32,
    /// When the transfer was requested.
    pub requested_at: SimTime,
    /// When data started moving (after connection setup).
    pub activated_at: SimTime,
    /// When the last byte arrived.
    pub completed_at: SimTime,
}

impl TransferRecord {
    /// End-to-end duration including setup.
    pub fn total_duration(&self) -> SimDuration {
        self.completed_at.since(self.requested_at)
    }

    /// Data-moving duration only.
    pub fn transfer_duration(&self) -> SimDuration {
        self.completed_at.since(self.activated_at)
    }

    /// Achieved goodput over the data phase, bytes/sec (0 for instant
    /// transfers).
    pub fn goodput(&self) -> f64 {
        let d = self.transfer_duration().as_secs_f64();
        if d <= 0.0 {
            0.0
        } else {
            self.bytes / d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(req: u64, act: u64, done: u64, bytes: f64) -> TransferRecord {
        TransferRecord {
            flow: FlowId(1),
            tag: 0,
            src: HostId(0),
            dst: HostId(1),
            bytes,
            streams: 4,
            requested_at: SimTime::from_secs(req),
            activated_at: SimTime::from_secs(act),
            completed_at: SimTime::from_secs(done),
        }
    }

    #[test]
    fn durations_and_goodput() {
        let r = record(10, 12, 22, 50.0e6);
        assert_eq!(r.total_duration(), SimDuration::from_secs(12));
        assert_eq!(r.transfer_duration(), SimDuration::from_secs(10));
        assert!((r.goodput() - 5.0e6).abs() < 1.0);
    }

    #[test]
    fn instant_transfer_has_zero_goodput() {
        let r = record(5, 5, 5, 10.0);
        assert_eq!(r.goodput(), 0.0);
    }

    #[test]
    fn flow_streams_floor_at_one() {
        let f = Flow {
            spec: FlowSpec {
                src: HostId(0),
                dst: HostId(1),
                bytes: 1.0,
                streams: 0,
                tag: 0,
            },
            phase: FlowPhase::Done,
            route: vec![],
            links: vec![],
            route_rtt: SimDuration::ZERO,
            requested_at: SimTime::ZERO,
            weight_factor: 1.0,
        };
        assert_eq!(f.streams(), 1);
    }

    #[test]
    fn age_is_zero_while_connecting() {
        let f = Flow {
            spec: FlowSpec {
                src: HostId(0),
                dst: HostId(1),
                bytes: 1.0,
                streams: 2,
                tag: 0,
            },
            phase: FlowPhase::Connecting {
                until: SimTime::from_secs(3),
            },
            route: vec![],
            links: vec![],
            route_rtt: SimDuration::ZERO,
            requested_at: SimTime::ZERO,
            weight_factor: 1.0,
        };
        assert_eq!(f.age(SimTime::from_secs(2)), SimDuration::ZERO);
    }

    #[test]
    fn age_counts_from_activation() {
        let f = Flow {
            spec: FlowSpec {
                src: HostId(0),
                dst: HostId(1),
                bytes: 1.0,
                streams: 2,
                tag: 0,
            },
            phase: FlowPhase::Active {
                activated_at: SimTime::from_secs(3),
                remaining: 1.0,
                rate: 0.0,
            },
            route: vec![],
            links: vec![],
            route_rtt: SimDuration::ZERO,
            requested_at: SimTime::ZERO,
            weight_factor: 1.0,
        };
        assert_eq!(f.age(SimTime::from_secs(10)), SimDuration::from_secs(7));
    }
}
