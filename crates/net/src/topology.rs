//! Hosts, links, and routes.
//!
//! The testbed in the paper is small: a GridFTP server on a FutureGrid VM at
//! TACC, a ~28 Mbit/s WAN path to ISI, and the Obelix cluster with NFS on a
//! 1 Gbit LAN. We model an arbitrary topology of hosts joined by capacity-
//! limited links; each host owns an *access link* (its NIC / server capacity)
//! and a route between two hosts is `[src access, middle links..., dst
//! access]`. Overload of "host resources" and of "the network between them"
//! (the paper's phrasing) are then the same mechanism applied to different
//! links.

use std::collections::HashMap;
use std::fmt;

/// Identifies a host in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Identifies a link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// A capacity-limited, stream-aware link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Human-readable name ("wan-tacc-isi", "nic:gridftp-vm", ...).
    pub name: String,
    /// Raw capacity in bytes per second.
    pub capacity: f64,
    /// Round-trip time contribution of this link (affects per-stream caps
    /// and connection setup on routes crossing it).
    pub rtt: crate::SimDuration,
    /// Total concurrent streams this link handles without degradation.
    /// `None` means "use the model default".
    pub knee_override: Option<f64>,
}

/// A host with a named access link.
#[derive(Debug, Clone)]
pub struct Host {
    /// Human-readable name ("gridftp-vm", "obelix-nfs", ...).
    pub name: String,
    /// The NIC/server access link owned by this host.
    pub access_link: LinkId,
    /// Maximum concurrent *connections* (flows) this host's transfer server
    /// accepts; further flows queue after their setup completes. `None` =
    /// unlimited (a well-provisioned GridFTP server).
    pub max_connections: Option<u32>,
}

/// The network graph plus explicit routes.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    hosts: Vec<Host>,
    links: Vec<Link>,
    host_by_name: HashMap<String, HostId>,
    /// Middle links (excluding both access links) per ordered host pair.
    routes: HashMap<(HostId, HostId), Vec<LinkId>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a transit link and return its id.
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        capacity_bytes_per_sec: f64,
        rtt: crate::SimDuration,
    ) -> LinkId {
        assert!(
            capacity_bytes_per_sec > 0.0,
            "link capacity must be positive"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            name: name.into(),
            capacity: capacity_bytes_per_sec,
            rtt,
            knee_override: None,
        });
        id
    }

    /// Add a host, creating its access link with the given NIC capacity.
    pub fn add_host(&mut self, name: impl Into<String>, nic_bytes_per_sec: f64) -> HostId {
        let name = name.into();
        let access = self.add_link(
            format!("nic:{name}"),
            nic_bytes_per_sec,
            crate::SimDuration::from_micros(100),
        );
        let id = HostId(self.hosts.len() as u32);
        assert!(
            self.host_by_name.insert(name.clone(), id).is_none(),
            "duplicate host name {name}"
        );
        self.hosts.push(Host {
            name,
            access_link: access,
            max_connections: None,
        });
        id
    }

    /// Limit a host's transfer server to `max` concurrent connections
    /// (flows); additional transfers queue until a slot frees.
    pub fn set_host_connection_limit(&mut self, host: HostId, max: u32) {
        self.hosts[host.0 as usize].max_connections = Some(max.max(1));
    }

    /// Set a custom stream knee for one link (e.g. a fragile WAN path).
    pub fn set_link_knee(&mut self, link: LinkId, knee: f64) {
        self.links[link.0 as usize].knee_override = Some(knee);
    }

    /// Declare the middle links used between `src` and `dst`, in order.
    /// The route is installed for the `src → dst` direction only.
    pub fn set_route(&mut self, src: HostId, dst: HostId, middle: Vec<LinkId>) {
        self.routes.insert((src, dst), middle);
    }

    /// Full route (access links included) from `src` to `dst`.
    ///
    /// Transfers between a host and itself use only that host's access link
    /// (a local copy still consumes NIC/NFS bandwidth).
    pub fn route(&self, src: HostId, dst: HostId) -> Vec<LinkId> {
        let mut path = Vec::new();
        self.route_into(src, dst, &mut path);
        path
    }

    /// [`Self::route`] into a caller-owned buffer (cleared first), so hot
    /// paths can recycle capacity instead of allocating per flow.
    pub fn route_into(&self, src: HostId, dst: HostId, out: &mut Vec<LinkId>) {
        out.clear();
        let src_access = self.hosts[src.0 as usize].access_link;
        let dst_access = self.hosts[dst.0 as usize].access_link;
        out.push(src_access);
        if src == dst {
            return;
        }
        if let Some(middle) = self.routes.get(&(src, dst)) {
            out.extend_from_slice(middle);
        }
        out.push(dst_access);
    }

    /// Sum of RTTs along an already-computed route.
    pub fn path_rtt(&self, route: &[LinkId]) -> crate::SimDuration {
        route.iter().fold(crate::SimDuration::ZERO, |acc, l| {
            acc + self.links[l.0 as usize].rtt
        })
    }

    /// Sum of RTTs along the route — the base latency a new connection pays.
    pub fn route_rtt(&self, src: HostId, dst: HostId) -> crate::SimDuration {
        self.path_rtt(&self.route(src, dst))
    }

    /// Look up a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Look up a host.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// Find a host by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.host_by_name.get(name).copied()
    }

    /// Number of explicit (multi-hop) routes installed. Zero means every
    /// route is the trivial `[src access, dst access]` chain — engines can
    /// build routes from dense access-link tables without consulting the
    /// route map.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// Number of links (access + transit).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Iterate over all links with their ids.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u32), l))
    }
}

/// Build the paper's testbed: a GridFTP VM at TACC, a 28 Mbit/s WAN path, and
/// an Obelix head/NFS host on a 1 Gbit LAN, plus a local Apache host serving
/// Montage inputs. Returns `(topology, gridftp_vm, apache, obelix_nfs)`.
pub fn paper_testbed() -> (Topology, HostId, HostId, HostId) {
    let mut t = Topology::new();
    // 1 Gbit/s NIC ~ 125 MB/s; NFS write path a bit below line rate.
    let gridftp = t.add_host("gridftp-vm", 125.0e6);
    let apache = t.add_host("apache-isi", 125.0e6);
    let nfs = t.add_host("obelix-nfs", 110.0e6);
    // 28 Mbit/s ~ 3.5 MB/s observed WAN bandwidth, ~40 ms RTT.
    let wan = t.add_link("wan-tacc-isi", 3.5e6, crate::SimDuration::from_millis(40));
    t.set_route(gridftp, nfs, vec![wan]);
    t.set_route(nfs, gridftp, vec![wan]);
    // Apache → NFS stays on the 1 Gbit LAN (no middle link).
    (t, gridftp, apache, nfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn add_host_creates_access_link() {
        let mut t = Topology::new();
        let h = t.add_host("a", 1e6);
        let access = t.host(h).access_link;
        assert_eq!(t.link(access).name, "nic:a");
        assert_eq!(t.link(access).capacity, 1e6);
    }

    #[test]
    fn route_includes_both_access_links() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1e6);
        let b = t.add_host("b", 1e6);
        let wan = t.add_link("wan", 5e5, SimDuration::from_millis(40));
        t.set_route(a, b, vec![wan]);
        let route = t.route(a, b);
        assert_eq!(route.len(), 3);
        assert_eq!(route[0], t.host(a).access_link);
        assert_eq!(route[1], wan);
        assert_eq!(route[2], t.host(b).access_link);
    }

    #[test]
    fn route_without_middle_links_is_direct() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1e6);
        let b = t.add_host("b", 1e6);
        let route = t.route(a, b);
        assert_eq!(route.len(), 2);
    }

    #[test]
    fn self_route_uses_single_access_link() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1e6);
        let route = t.route(a, a);
        assert_eq!(route, vec![t.host(a).access_link]);
    }

    #[test]
    fn route_is_directional() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1e6);
        let b = t.add_host("b", 1e6);
        let wan = t.add_link("wan", 5e5, SimDuration::from_millis(1));
        t.set_route(a, b, vec![wan]);
        assert_eq!(t.route(a, b).len(), 3);
        assert_eq!(t.route(b, a).len(), 2, "reverse route was not installed");
    }

    #[test]
    fn route_rtt_sums_links() {
        let mut t = Topology::new();
        let a = t.add_host("a", 1e6);
        let b = t.add_host("b", 1e6);
        let wan = t.add_link("wan", 5e5, SimDuration::from_millis(40));
        t.set_route(a, b, vec![wan]);
        // two access links at 100us each + 40ms
        assert_eq!(t.route_rtt(a, b), SimDuration::from_micros(40_200));
    }

    #[test]
    fn host_lookup_by_name() {
        let mut t = Topology::new();
        let a = t.add_host("alpha", 1e6);
        assert_eq!(t.host_by_name("alpha"), Some(a));
        assert_eq!(t.host_by_name("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate host name")]
    fn duplicate_host_names_rejected() {
        let mut t = Topology::new();
        t.add_host("a", 1e6);
        t.add_host("a", 1e6);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut t = Topology::new();
        t.add_link("bad", 0.0, SimDuration::ZERO);
    }

    #[test]
    fn paper_testbed_shape() {
        let (t, gridftp, apache, nfs) = paper_testbed();
        assert_eq!(t.host_count(), 3);
        // WAN route crosses 3 links; LAN route 2.
        assert_eq!(t.route(gridftp, nfs).len(), 3);
        assert_eq!(t.route(apache, nfs).len(), 2);
        // The WAN link is the bottleneck.
        let wan_route = t.route(gridftp, nfs);
        let min_cap = wan_route
            .iter()
            .map(|&l| t.link(l).capacity)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min_cap, 3.5e6);
    }

    #[test]
    fn knee_override_is_stored() {
        let mut t = Topology::new();
        let l = t.add_link("wan", 1e6, SimDuration::ZERO);
        assert!(t.link(l).knee_override.is_none());
        t.set_link_knee(l, 64.0);
        assert_eq!(t.link(l).knee_override, Some(64.0));
    }
}
