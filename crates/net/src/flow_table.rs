//! Struct-of-arrays storage for live flows.
//!
//! The old engine kept flows in a `BTreeMap<FlowId, Flow>` with an enum
//! phase; every hot-path touch (rate write-back, remaining-bytes math, BFS
//! membership checks) paid a tree walk plus an enum match across a ~200-byte
//! record. [`FlowTable`] splits the flow into slot-indexed *columns*: the hot
//! scalars (`phase`, `rate`, `remaining`, …) are dense parallel vectors the
//! allocator walks with plain indexing, while the per-flow constants live in
//! a [`FlowCold`] row touched only at activation and completion.
//!
//! Slots are stable for a flow's lifetime (event payloads and the link
//! bipartite index carry raw `u32` slots), recycled through a free list after
//! completion. Determinism is preserved by a `FlowId → slot` `BTreeMap`:
//! every order-sensitive iteration (candidate activation, full recompute,
//! component sorting) goes through id order, never slot order.

use crate::flow::{FlowId, FlowSpec};
use crate::topology::LinkId;
use pwm_sim::{EventHandle, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Lifecycle phase of a slot. Mirrors [`crate::flow::FlowPhase`] minus the
/// payload fields, which live in their own columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Slot is on the free list.
    Vacant,
    /// Connection setup in progress; a `Connect` event is pending.
    Connecting,
    /// Setup finished but an endpoint's connection limit defers activation.
    Queued,
    /// Moving bytes.
    Active,
}

/// Per-flow constants, written once at `start_flow` and read at activation,
/// allocation, and completion.
#[derive(Debug, Clone)]
pub struct FlowCold {
    /// Immutable request.
    pub spec: FlowSpec,
    /// Links of the route, as `LinkId`s (for record/obs paths).
    pub route: Vec<LinkId>,
    /// `route` projected to raw link indices for the allocator.
    pub links: Vec<usize>,
    /// Round-trip time of the (fixed) route.
    pub route_rtt: SimDuration,
    /// When `start_flow` was called.
    pub requested_at: SimTime,
    /// Per-flow fair-share multiplier (TCP unfairness), drawn at start.
    pub weight_factor: f64,
}

impl FlowCold {
    /// Effective stream count (floor of 1).
    pub fn streams(&self) -> u32 {
        self.spec.streams.max(1)
    }
}

/// Slot-indexed columns of live-flow state.
///
/// Columns are `pub` so the engine can split borrows across them (e.g. sort
/// a slot list by the `id_of` column while mutating another column).
pub struct FlowTable {
    /// Lifecycle phase per slot.
    pub phase: Vec<Phase>,
    /// When the flow activated (ramp age anchor). Valid while `Active`.
    pub activated_at: Vec<SimTime>,
    /// Anchor instant of the linear motion below. Valid while `Active`.
    pub rate_since: Vec<SimTime>,
    /// Bytes remaining *as of* `rate_since`; the engine integrates lazily:
    /// `remaining(t) = remaining - rate · (t - rate_since)`.
    pub remaining: Vec<f64>,
    /// Allocated rate, bytes/sec. Valid while `Active`.
    pub rate: Vec<f64>,
    /// Fair-share weight: `streams × weight_factor`, precomputed at insert.
    pub weight: Vec<f64>,
    /// True when the last allocation left the flow bound by its own cap
    /// (rather than a saturated link) — the gate for ramp recomputes.
    pub cap_bound: Vec<bool>,
    /// Pending completion-ETA event, if the flow has a nonzero rate.
    pub eta: Vec<Option<EventHandle>>,
    /// Owning flow id per slot (stale for vacant slots).
    pub id_of: Vec<FlowId>,
    /// Per-flow constants (stale for vacant slots; overwritten on reuse).
    pub cold: Vec<FlowCold>,
    /// Deterministic id → slot index over live flows.
    slot_of: BTreeMap<FlowId, u32>,
    /// Vacant slots available for reuse.
    free: Vec<u32>,
}

impl FlowTable {
    /// Empty table.
    pub fn new() -> Self {
        FlowTable {
            phase: Vec::new(),
            activated_at: Vec::new(),
            rate_since: Vec::new(),
            remaining: Vec::new(),
            rate: Vec::new(),
            weight: Vec::new(),
            cap_bound: Vec::new(),
            eta: Vec::new(),
            id_of: Vec::new(),
            cold: Vec::new(),
            slot_of: BTreeMap::new(),
            free: Vec::new(),
        }
    }

    /// Steal the `route`/`links` buffers of the next slot `insert` would
    /// recycle, emptied but with their capacity intact. Hot callers fill
    /// these in place and hand them back inside the [`FlowCold`] they pass
    /// to `insert`, making steady-state flow turnover allocation-free.
    /// Returns fresh (unallocated) buffers when no vacant slot exists.
    pub fn take_vacant_cold(&mut self) -> (Vec<LinkId>, Vec<usize>) {
        match self.free.last() {
            Some(&s) => {
                let c = &mut self.cold[s as usize];
                let mut route = std::mem::take(&mut c.route);
                let mut links = std::mem::take(&mut c.links);
                route.clear();
                links.clear();
                (route, links)
            }
            None => (Vec::new(), Vec::new()),
        }
    }

    /// Insert a new flow in `Connecting` phase; returns its slot.
    pub fn insert(&mut self, id: FlowId, cold: FlowCold) -> u32 {
        let weight = cold.streams() as f64 * cold.weight_factor;
        let slot = match self.free.pop() {
            Some(s) => {
                let si = s as usize;
                self.phase[si] = Phase::Connecting;
                self.activated_at[si] = SimTime::ZERO;
                self.rate_since[si] = SimTime::ZERO;
                self.remaining[si] = 0.0;
                self.rate[si] = 0.0;
                self.weight[si] = weight;
                self.cap_bound[si] = false;
                self.eta[si] = None;
                self.id_of[si] = id;
                self.cold[si] = cold;
                s
            }
            None => {
                let s = self.phase.len() as u32;
                self.phase.push(Phase::Connecting);
                self.activated_at.push(SimTime::ZERO);
                self.rate_since.push(SimTime::ZERO);
                self.remaining.push(0.0);
                self.rate.push(0.0);
                self.weight.push(weight);
                self.cap_bound.push(false);
                self.eta.push(None);
                self.id_of.push(id);
                self.cold.push(cold);
                s
            }
        };
        let prev = self.slot_of.insert(id, slot);
        debug_assert!(prev.is_none(), "flow id inserted twice");
        slot
    }

    /// Free a flow's slot for reuse. The cold row is left stale (it is
    /// overwritten on the next reuse); callers must read any fields they
    /// need *before* removing.
    pub fn remove(&mut self, id: FlowId) {
        let slot = self.slot_of.remove(&id).expect("removing unknown flow");
        let si = slot as usize;
        self.phase[si] = Phase::Vacant;
        self.eta[si] = None;
        self.free.push(slot);
    }

    /// Live flows in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, u32)> + '_ {
        self.slot_of.iter().map(|(&id, &s)| (id, s))
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// True when no flows are live.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Total slots ever allocated (live + vacant); the bound for any
    /// slot-indexed scratch vector.
    pub fn slot_count(&self) -> usize {
        self.phase.len()
    }
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::HostId;

    fn cold(bytes: f64, streams: u32) -> FlowCold {
        FlowCold {
            spec: FlowSpec {
                src: HostId(0),
                dst: HostId(1),
                bytes,
                streams,
                tag: 0,
            },
            route: vec![LinkId(0)],
            links: vec![0],
            route_rtt: SimDuration::from_millis(1),
            requested_at: SimTime::ZERO,
            weight_factor: 1.5,
        }
    }

    #[test]
    fn insert_precomputes_weight_with_stream_floor() {
        let mut t = FlowTable::new();
        let s = t.insert(FlowId(1), cold(10.0, 0));
        assert_eq!(t.weight[s as usize], 1.5, "0 streams coerces to 1");
        let s2 = t.insert(FlowId(2), cold(10.0, 4));
        assert_eq!(t.weight[s2 as usize], 6.0);
    }

    #[test]
    fn slots_are_recycled_lifo_and_ids_stay_deterministic() {
        let mut t = FlowTable::new();
        let a = t.insert(FlowId(1), cold(1.0, 1));
        let b = t.insert(FlowId(2), cold(2.0, 1));
        assert_ne!(a, b);
        t.remove(FlowId(1));
        assert_eq!(t.len(), 1);
        assert!(t.iter().all(|(id, _)| id != FlowId(1)));
        let c = t.insert(FlowId(3), cold(3.0, 1));
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(t.slot_count(), 2, "no growth on reuse");
        // Iteration is id-ordered regardless of slot assignment.
        let order: Vec<FlowId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(order, vec![FlowId(2), FlowId(3)]);
        assert_eq!(t.cold[c as usize].spec.bytes, 3.0, "cold row overwritten");
    }

    #[test]
    fn remove_clears_phase_and_eta() {
        let mut t = FlowTable::new();
        let s = t.insert(FlowId(7), cold(1.0, 2));
        t.phase[s as usize] = Phase::Active;
        t.remove(FlowId(7));
        assert_eq!(t.phase[s as usize], Phase::Vacant);
        assert!(t.eta[s as usize].is_none());
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "removing unknown flow")]
    fn removing_unknown_flow_panics() {
        let mut t = FlowTable::new();
        t.remove(FlowId(9));
    }
}
