//! Hot/cold split storage for live flows.
//!
//! The old engine kept flows in a `BTreeMap<FlowId, Flow>` with an enum
//! phase; every hot-path touch (rate write-back, remaining-bytes math, BFS
//! membership checks) paid a tree walk plus an enum match across a ~200-byte
//! record. The first rewrite split the flow into slot-indexed parallel
//! *columns* — which fixed the tree walks but left each event touching ~9
//! separate arrays at a random slot index: at 100k live flows that is ~9
//! cache misses per flow touched, and the misses, not the arithmetic,
//! dominated the event loop.
//!
//! [`FlowTable`] therefore packs everything the per-event hot path reads or
//! writes into one cache-line-sized [`FlowHot`] row (64 bytes: the lazy
//! byte-integrator anchor, the allocated rate, the pending-ETA handle, the
//! fair-share weight, the owning id, and the phase/cap-bound flags), so a
//! flow touch is one line fill instead of nine. Per-flow constants stay in
//! a separate [`FlowCold`] row read mostly at activation and completion.
//!
//! Slots are stable for a flow's lifetime (event payloads and the link
//! bipartite index carry raw `u32` slots), recycled through a free list after
//! completion. Determinism is preserved by the [`IdSlotMap`] `FlowId → slot`
//! index: every order-sensitive iteration (candidate activation, full
//! recompute, component sorting) goes through id order, never slot order.

use crate::flow::{FlowId, FlowSpec};
use crate::topology::LinkId;
use pwm_sim::{EventHandle, SimDuration, SimTime};
use std::collections::VecDeque;

/// Lifecycle phase of a slot. Mirrors [`crate::flow::FlowPhase`] minus the
/// payload fields, which live in the rest of the [`FlowHot`] row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Slot is on the free list.
    Vacant,
    /// Connection setup in progress; a `Connect` event is pending.
    Connecting,
    /// Setup finished but an endpoint's connection limit defers activation.
    Queued,
    /// Moving bytes.
    Active,
}

/// Links a route can hold inline in the [`FlowCold`] row. Routes in this
/// engine are access-link chains (source access, optional transit, destination
/// access), so real routes are 1–3 links; longer ones spill to the heap.
const ROUTE_INLINE: usize = 6;

/// Per-flow constants, written once at `start_flow` and read at activation,
/// allocation, and completion.
///
/// The route is stored *inline* as raw link indices (spilling to a `Vec`
/// only past [`ROUTE_INLINE`] links): the membership loops at activation and
/// completion, and the component BFS, all walk a flow's links right after
/// reading the row — a heap-side `Vec` would cost an extra random cache line
/// per walk, and the old `route: Vec<LinkId>` + `links: Vec<usize>` pair
/// cost two.
#[derive(Debug, Clone)]
pub struct FlowCold {
    /// Immutable request.
    pub spec: FlowSpec,
    /// Round-trip time of the (fixed) route.
    pub route_rtt: SimDuration,
    /// When `start_flow` was called.
    pub requested_at: SimTime,
    /// Per-flow fair-share multiplier (TCP unfairness), drawn at start.
    pub weight_factor: f64,
    /// Inline route storage (raw link indices); valid up to `route_len`.
    route_inline: [u32; ROUTE_INLINE],
    /// Links in the route. When it exceeds [`ROUTE_INLINE`], the whole
    /// route lives in `route_spill` instead.
    route_len: u8,
    /// Heap overflow for routes longer than [`ROUTE_INLINE`] links.
    route_spill: Vec<u32>,
}

impl FlowCold {
    /// Build a cold row, copying `route` into inline storage (or the heap
    /// spill when it is longer than [`ROUTE_INLINE`] links).
    pub fn new(
        spec: FlowSpec,
        route: &[LinkId],
        route_rtt: SimDuration,
        requested_at: SimTime,
        weight_factor: f64,
    ) -> Self {
        let mut route_inline = [0u32; ROUTE_INLINE];
        let mut route_spill = Vec::new();
        if route.len() <= ROUTE_INLINE {
            for (cell, l) in route_inline.iter_mut().zip(route) {
                *cell = l.0;
            }
        } else {
            route_spill.extend(route.iter().map(|l| l.0));
        }
        FlowCold {
            spec,
            route_rtt,
            requested_at,
            weight_factor,
            route_inline,
            route_len: route.len().min(ROUTE_INLINE) as u8,
            route_spill,
        }
    }

    /// Effective stream count (floor of 1).
    pub fn streams(&self) -> u32 {
        self.spec.streams.max(1)
    }

    /// The route as raw link indices.
    #[inline]
    pub fn links(&self) -> &[u32] {
        if self.route_spill.is_empty() {
            &self.route_inline[..self.route_len as usize]
        } else {
            &self.route_spill
        }
    }

    /// Links in the route.
    #[inline]
    pub fn link_count(&self) -> usize {
        if self.route_spill.is_empty() {
            self.route_len as usize
        } else {
            self.route_spill.len()
        }
    }

    /// The `k`-th link of the route as a raw index. Indexed access (rather
    /// than holding [`FlowCold::links`]) lets membership loops mutate other
    /// engine state between reads.
    #[inline]
    pub fn link_at(&self, k: usize) -> usize {
        if self.route_spill.is_empty() {
            debug_assert!(k < self.route_len as usize);
            self.route_inline[k] as usize
        } else {
            self.route_spill[k] as usize
        }
    }
}

/// Raw-`u64` sentinel for "no pending ETA event" in [`FlowHot::eta_raw`].
/// Safe because no live [`EventHandle`] is ever all-ones (see
/// [`EventHandle::raw`]).
const NO_ETA: u64 = u64::MAX;

/// Everything the per-event hot path touches for one flow, packed into a
/// single 64-byte row so a flow touch costs one cache-line fill.
///
/// The pending-ETA handle is stored raw (`u64`, [`NO_ETA`] when absent)
/// rather than as `Option<EventHandle>`: the option's discriminant would
/// push the row past a cache line. Use [`FlowHot::eta`] / [`FlowHot::
/// set_eta`] / [`FlowHot::take_eta`] instead of the raw word.
#[derive(Debug, Clone)]
#[repr(C)]
pub struct FlowHot {
    /// Bytes remaining *as of* `rate_since`; the engine integrates lazily:
    /// `remaining(t) = remaining - rate · (t - rate_since)`.
    pub remaining: f64,
    /// Allocated rate, bytes/sec. Valid while `Active`.
    pub rate: f64,
    /// Anchor instant of the lazy linear motion above. Valid while `Active`.
    pub rate_since: SimTime,
    /// When the flow activated (ramp age anchor). Valid while `Active`.
    pub activated_at: SimTime,
    /// Fair-share weight: `streams × weight_factor`, precomputed at insert.
    pub weight: f64,
    /// Owning flow id (stale for vacant slots).
    pub id: FlowId,
    /// Pending completion-ETA event, raw ([`NO_ETA`] when none).
    eta_raw: u64,
    /// Lifecycle phase.
    pub phase: Phase,
    /// True when the last allocation left the flow bound by its own cap
    /// (rather than a saturated link) — the gate for ramp recomputes.
    pub cap_bound: bool,
    /// Component-BFS visited marker. Living in the hot row (pad space, the
    /// row stays one line) means the BFS pays no separate marker-array miss:
    /// it reads the line it is about to touch anyway. Always false outside
    /// a recompute's BFS phase.
    pub seen: bool,
}

impl FlowHot {
    /// The pending completion-ETA event, if any.
    #[inline]
    pub fn eta(&self) -> Option<EventHandle> {
        if self.eta_raw == NO_ETA {
            None
        } else {
            Some(EventHandle::from_raw(self.eta_raw))
        }
    }

    /// Record (or clear) the pending completion-ETA event.
    #[inline]
    pub fn set_eta(&mut self, h: Option<EventHandle>) {
        self.eta_raw = match h {
            Some(h) => h.raw(),
            None => NO_ETA,
        };
    }

    /// Clear and return the pending completion-ETA event.
    #[inline]
    pub fn take_eta(&mut self) -> Option<EventHandle> {
        let h = self.eta();
        self.eta_raw = NO_ETA;
        h
    }
}

/// Slot-indexed live-flow state: one [`FlowHot`] row per slot plus the cold
/// constants. Rows are `pub` so the engine can index them freely and split
/// borrows against the cold column.
pub struct FlowTable {
    /// Hot per-flow state, one 64-byte row per slot.
    pub hot: Vec<FlowHot>,
    /// Per-flow constants (stale for vacant slots; overwritten on reuse).
    pub cold: Vec<FlowCold>,
    /// Deterministic id → slot index over live flows.
    slot_of: IdSlotMap,
    /// Vacant slots available for reuse.
    free: Vec<u32>,
}

/// `slot_of[id]` value meaning "no live flow with this id".
const NO_SLOT: u32 = u32::MAX;

/// Windowed dense `FlowId → slot` map.
///
/// Flow ids come from one monotone counter and are never recycled, so the
/// live ids always sit inside a moving window `[head, head + cells.len())`.
/// That turns the id-order index — the structure DESIGN.md §11 fingered as
/// the other half of the 100k-flow cache bill, a `BTreeMap` walk on every
/// flow start and completion — into two array words: lookup is a subtract
/// and an index, insert appends to the back, and remove blanks a cell and
/// advances `head` past leading blanks. Id-ordered iteration (the
/// determinism contract) is a linear walk of the window.
///
/// The window spans the oldest-live to newest-live id, so memory is
/// proportional to the id spread of concurrently live flows (4 bytes per
/// id), not to total flows ever started — the same churn bound as the slot
/// free-list.
struct IdSlotMap {
    /// Id of `cells[0]`.
    head: u64,
    /// Slot per id offset; `NO_SLOT` marks dead ids inside the window.
    cells: VecDeque<u32>,
    /// Live entries (cells not equal to `NO_SLOT`).
    live: usize,
}

impl IdSlotMap {
    fn new() -> Self {
        IdSlotMap {
            head: 0,
            cells: VecDeque::new(),
            live: 0,
        }
    }

    /// Insert a mapping; `id` must be at or beyond every id ever inserted
    /// (flow ids are monotone) and not currently live.
    fn insert(&mut self, id: FlowId, slot: u32) {
        debug_assert_ne!(slot, NO_SLOT);
        if self.cells.is_empty() {
            self.head = id.0;
        }
        assert!(
            id.0 >= self.head,
            "flow ids must be assigned in increasing order"
        );
        let ix = (id.0 - self.head) as usize;
        while self.cells.len() <= ix {
            self.cells.push_back(NO_SLOT);
        }
        let cell = &mut self.cells[ix];
        debug_assert_eq!(*cell, NO_SLOT, "flow id inserted twice");
        *cell = slot;
        self.live += 1;
    }

    /// Remove a mapping, returning its slot if it was live.
    fn remove(&mut self, id: FlowId) -> Option<u32> {
        if id.0 < self.head {
            return None;
        }
        let ix = (id.0 - self.head) as usize;
        if ix >= self.cells.len() {
            return None;
        }
        let cell = &mut self.cells[ix];
        if *cell == NO_SLOT {
            return None;
        }
        let slot = *cell;
        *cell = NO_SLOT;
        self.live -= 1;
        // Shrink the window from both ends so it tracks the live id span.
        while self.cells.front() == Some(&NO_SLOT) {
            self.cells.pop_front();
            self.head += 1;
        }
        while self.cells.back() == Some(&NO_SLOT) {
            self.cells.pop_back();
        }
        Some(slot)
    }

    /// Live `(id, slot)` pairs in ascending id order.
    fn iter(&self) -> impl Iterator<Item = (FlowId, u32)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != NO_SLOT)
            .map(move |(ix, &s)| (FlowId(self.head + ix as u64), s))
    }

    fn len(&self) -> usize {
        self.live
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl FlowTable {
    /// Empty table.
    pub fn new() -> Self {
        const _: () = assert!(
            std::mem::size_of::<FlowHot>() == 64,
            "FlowHot must stay exactly one cache line"
        );
        FlowTable {
            hot: Vec::new(),
            cold: Vec::new(),
            slot_of: IdSlotMap::new(),
            free: Vec::new(),
        }
    }

    /// Insert a new flow in `Connecting` phase; returns its slot.
    pub fn insert(&mut self, id: FlowId, cold: FlowCold) -> u32 {
        let row = FlowHot {
            remaining: 0.0,
            rate: 0.0,
            rate_since: SimTime::ZERO,
            activated_at: SimTime::ZERO,
            weight: cold.streams() as f64 * cold.weight_factor,
            id,
            eta_raw: NO_ETA,
            phase: Phase::Connecting,
            cap_bound: false,
            seen: false,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                let si = s as usize;
                self.hot[si] = row;
                self.cold[si] = cold;
                s
            }
            None => {
                let s = self.hot.len() as u32;
                self.hot.push(row);
                self.cold.push(cold);
                s
            }
        };
        self.slot_of.insert(id, slot);
        slot
    }

    /// Free a flow's slot for reuse. The cold row is left stale (it is
    /// overwritten on the next reuse); callers must read any fields they
    /// need *before* removing.
    pub fn remove(&mut self, id: FlowId) {
        let slot = self.slot_of.remove(id).expect("removing unknown flow");
        let row = &mut self.hot[slot as usize];
        row.phase = Phase::Vacant;
        row.eta_raw = NO_ETA;
        self.free.push(slot);
    }

    /// Live flows in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, u32)> + '_ {
        self.slot_of.iter()
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// True when no flows are live.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::HostId;

    fn cold(bytes: f64, streams: u32) -> FlowCold {
        FlowCold::new(
            FlowSpec {
                src: HostId(0),
                dst: HostId(1),
                bytes,
                streams,
                tag: 0,
            },
            &[LinkId(0)],
            SimDuration::from_millis(1),
            SimTime::ZERO,
            1.5,
        )
    }

    #[test]
    fn hot_row_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<FlowHot>(), 64);
    }

    #[test]
    fn insert_precomputes_weight_with_stream_floor() {
        let mut t = FlowTable::new();
        let s = t.insert(FlowId(1), cold(10.0, 0));
        assert_eq!(t.hot[s as usize].weight, 1.5, "0 streams coerces to 1");
        let s2 = t.insert(FlowId(2), cold(10.0, 4));
        assert_eq!(t.hot[s2 as usize].weight, 6.0);
    }

    #[test]
    fn slots_are_recycled_lifo_and_ids_stay_deterministic() {
        let mut t = FlowTable::new();
        let a = t.insert(FlowId(1), cold(1.0, 1));
        let b = t.insert(FlowId(2), cold(2.0, 1));
        assert_ne!(a, b);
        t.remove(FlowId(1));
        assert_eq!(t.len(), 1);
        assert!(t.iter().all(|(id, _)| id != FlowId(1)));
        let c = t.insert(FlowId(3), cold(3.0, 1));
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(t.hot.len(), 2, "no growth on reuse");
        // Iteration is id-ordered regardless of slot assignment.
        let order: Vec<FlowId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(order, vec![FlowId(2), FlowId(3)]);
        assert_eq!(t.cold[c as usize].spec.bytes, 3.0, "cold row overwritten");
    }

    #[test]
    fn remove_clears_phase_and_eta() {
        let mut t = FlowTable::new();
        let s = t.insert(FlowId(7), cold(1.0, 2));
        t.hot[s as usize].phase = Phase::Active;
        t.hot[s as usize].set_eta(Some(EventHandle::from_raw(0)));
        t.remove(FlowId(7));
        assert_eq!(t.hot[s as usize].phase, Phase::Vacant);
        assert!(t.hot[s as usize].eta().is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn eta_round_trips_through_raw_storage() {
        let mut t = FlowTable::new();
        let s = t.insert(FlowId(1), cold(1.0, 1)) as usize;
        assert!(t.hot[s].eta().is_none(), "fresh row has no ETA");
        // Handle raw 0 (slot 0, generation 0) is a legal handle and must be
        // distinguishable from the sentinel.
        let h = EventHandle::from_raw(0);
        t.hot[s].set_eta(Some(h));
        assert_eq!(t.hot[s].eta(), Some(h));
        assert_eq!(t.hot[s].take_eta(), Some(h));
        assert!(t.hot[s].eta().is_none());
        assert!(t.hot[s].take_eta().is_none());
    }

    #[test]
    fn route_spills_past_inline_capacity() {
        let mk = |n: u32| {
            let route: Vec<LinkId> = (0..n).map(LinkId).collect();
            FlowCold::new(
                FlowSpec {
                    src: HostId(0),
                    dst: HostId(1),
                    bytes: 1.0,
                    streams: 1,
                    tag: 0,
                },
                &route,
                SimDuration::from_millis(1),
                SimTime::ZERO,
                1.0,
            )
        };
        // Inline: typical short route.
        let short = mk(3);
        assert_eq!(short.links(), &[0, 1, 2]);
        assert_eq!(short.link_count(), 3);
        assert_eq!(short.link_at(2), 2);
        // Exactly at capacity stays inline.
        let full = mk(ROUTE_INLINE as u32);
        assert_eq!(full.link_count(), ROUTE_INLINE);
        assert!(full.route_spill.is_empty());
        // Past capacity spills, preserving order and length.
        let long = mk(9);
        assert_eq!(long.link_count(), 9);
        assert_eq!(long.link_at(8), 8);
        assert_eq!(long.links().len(), 9);
        assert_eq!(long.links(), (0..9).collect::<Vec<u32>>().as_slice());
        // Empty route is legal (loopback with no links).
        let none = mk(0);
        assert_eq!(none.link_count(), 0);
        assert!(none.links().is_empty());
    }

    #[test]
    #[should_panic(expected = "removing unknown flow")]
    fn removing_unknown_flow_panics() {
        let mut t = FlowTable::new();
        t.remove(FlowId(9));
    }

    #[test]
    fn id_window_tracks_live_span_under_churn() {
        let mut t = FlowTable::new();
        // Interleave monotone inserts with out-of-order removals, the
        // pattern the windowed id map must keep bounded and ordered.
        for wave in 0u64..50 {
            let base = wave * 10;
            for k in 0..10 {
                t.insert(FlowId(base + k), cold(1.0, 1));
            }
            // Remove newest-first, then some from the previous wave.
            for k in (5..10).rev() {
                t.remove(FlowId(base + k));
            }
            if wave > 0 {
                for k in 0..5 {
                    t.remove(FlowId((wave - 1) * 10 + k));
                }
            }
        }
        assert_eq!(t.len(), 5, "only the last wave's survivors remain");
        assert_eq!(t.slot_of.cells.len(), 5, "window shrinks to live span");
        let ids: Vec<u64> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![490, 491, 492, 493, 494]);
        // Draining everything resets the window entirely.
        for id in ids {
            t.remove(FlowId(id));
        }
        assert!(t.is_empty());
        assert!(t.slot_of.cells.is_empty());
        // A later id restarts the window without growth.
        t.insert(FlowId(10_000), cold(1.0, 1));
        assert_eq!(t.slot_of.cells.len(), 1);
        assert_eq!(t.iter().next().map(|(id, _)| id), Some(FlowId(10_000)));
    }
}
