//! Weighted max-min fair bandwidth sharing with per-flow rate caps.
//!
//! Given a set of links with (effective) capacities and a set of flows, each
//! with a weight (its parallel-stream count), a rate cap (streams ×
//! per-stream rate × ramp), and the list of links it crosses, compute the
//! classic *progressive-filling* allocation: grow every flow's rate in
//! proportion to its weight until it hits its cap or a link it crosses is
//! saturated; freeze those flows and repeat with the residual capacity.
//!
//! This is the fluid-flow approximation used by network simulators for bulk
//! TCP: fast to recompute at every membership change and accurate at the
//! tens-of-seconds timescales the workflow experiments care about.

/// A flow's demand as seen by the allocator.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// Fair-share weight (parallel streams).
    pub weight: f64,
    /// Upper bound on the flow's rate (bytes/sec).
    pub cap: f64,
    /// Indices into the `capacities` slice of the links this flow crosses.
    pub links: Vec<usize>,
}

/// Compute weighted max-min rates.
///
/// `capacities[l]` is the effective capacity of link `l` in bytes/sec.
/// Returns one rate per flow, in input order. Flows with zero weight or an
/// empty link list receive their cap directly (they consume no shared
/// resource in this model).
pub fn max_min_rates(capacities: &[f64], flows: &[FlowDemand]) -> Vec<f64> {
    const EPS: f64 = 1e-9;
    let mut rates = vec![0.0f64; flows.len()];
    let mut fixed = vec![false; flows.len()];
    let mut residual: Vec<f64> = capacities.to_vec();

    // Flows that use no links are bounded only by their cap.
    for (i, f) in flows.iter().enumerate() {
        if f.links.is_empty() || f.weight <= 0.0 {
            rates[i] = f.cap.max(0.0);
            fixed[i] = true;
        }
    }

    loop {
        // Residual weight per link over unfixed flows.
        let mut link_weight = vec![0.0f64; capacities.len()];
        let mut any_unfixed = false;
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            any_unfixed = true;
            for &l in &f.links {
                link_weight[l] += f.weight;
            }
        }
        if !any_unfixed {
            break;
        }

        // The binding constraint: the smallest per-weight share offered by
        // any loaded link, or the smallest per-weight cap of any unfixed flow.
        let mut limit = f64::INFINITY;
        let mut limit_is_link = false;
        let mut limit_link = usize::MAX;
        for (l, &w) in link_weight.iter().enumerate() {
            if w > EPS {
                let share = residual[l].max(0.0) / w;
                if share < limit - EPS {
                    limit = share;
                    limit_is_link = true;
                    limit_link = l;
                }
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let cap_share = (f.cap - rates[i]).max(0.0) / f.weight;
            if cap_share < limit - EPS {
                limit = cap_share;
                limit_is_link = false;
            }
        }
        if !limit.is_finite() {
            // No loaded links and no finite caps: flows are unconstrained;
            // freeze them at their (infinite) caps — callers always pass
            // finite caps, so treat as done.
            break;
        }

        // Grow every unfixed flow by weight × limit.
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let inc = f.weight * limit;
            rates[i] += inc;
            for &l in &f.links {
                residual[l] -= inc;
            }
        }

        // Freeze flows that hit the binding constraint.
        let mut froze = false;
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let at_cap = rates[i] >= f.cap - EPS;
            let on_saturated = limit_is_link && f.links.contains(&limit_link);
            let on_any_saturated = f.links.iter().any(|&l| residual[l] <= EPS);
            if at_cap || on_saturated || on_any_saturated {
                fixed[i] = true;
                froze = true;
            }
        }
        if !froze {
            // Numerical corner: freeze everything touching the tightest link
            // to guarantee progress.
            for (i, f) in flows.iter().enumerate() {
                if !fixed[i] && (f.links.contains(&limit_link) || !limit_is_link) {
                    fixed[i] = true;
                }
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(weight: f64, cap: f64, links: &[usize]) -> FlowDemand {
        FlowDemand {
            weight,
            cap,
            links: links.to_vec(),
        }
    }

    fn link_usage(capacities: &[f64], flows: &[FlowDemand], rates: &[f64]) -> Vec<f64> {
        let mut used = vec![0.0; capacities.len()];
        for (f, &r) in flows.iter().zip(rates) {
            for &l in &f.links {
                used[l] += r;
            }
        }
        used
    }

    #[test]
    fn single_flow_takes_min_of_cap_and_capacity() {
        let caps = [10.0];
        let flows = [demand(4.0, 100.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 10.0).abs() < 1e-6);

        let flows = [demand(4.0, 3.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equal_weights_split_equally() {
        let caps = [12.0];
        let flows = [demand(1.0, 100.0, &[0]), demand(1.0, 100.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 6.0).abs() < 1e-6);
        assert!((r[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn weights_bias_the_split() {
        let caps = [12.0];
        let flows = [demand(2.0, 100.0, &[0]), demand(1.0, 100.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 8.0).abs() < 1e-6);
        assert!((r[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn capped_flow_releases_share_to_others() {
        let caps = [12.0];
        let flows = [demand(1.0, 2.0, &[0]), demand(1.0, 100.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 2.0).abs() < 1e-6);
        assert!((r[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn never_exceeds_any_link_capacity() {
        let caps = [10.0, 6.0];
        let flows = [
            demand(3.0, 100.0, &[0, 1]),
            demand(1.0, 100.0, &[0]),
            demand(2.0, 100.0, &[1]),
        ];
        let r = max_min_rates(&caps, &flows);
        let used = link_usage(&caps, &flows, &r);
        for (u, c) in used.iter().zip(&caps) {
            assert!(*u <= c + 1e-6, "used {u} > cap {c}");
        }
    }

    #[test]
    fn bottleneck_link_determines_shared_flow() {
        // Flow A crosses both links; the 6-unit link is the bottleneck it
        // shares with flow C at equal weight → A gets 2 on it (weight 1 vs 2).
        let caps = [10.0, 6.0];
        let flows = [demand(1.0, 100.0, &[0, 1]), demand(2.0, 100.0, &[1])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 2.0).abs() < 1e-6);
        assert!((r[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn flow_with_no_links_gets_its_cap() {
        let caps = [1.0];
        let flows = [demand(1.0, 42.0, &[])];
        let r = max_min_rates(&caps, &flows);
        assert_eq!(r[0], 42.0);
    }

    #[test]
    fn zero_weight_flow_gets_cap_without_consuming() {
        let caps = [10.0];
        let flows = [demand(0.0, 1.0, &[0]), demand(1.0, 100.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert_eq!(r[0], 1.0);
        assert!((r[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs() {
        assert!(max_min_rates(&[], &[]).is_empty());
        let caps = [5.0];
        assert!(max_min_rates(&caps, &[]).is_empty());
    }

    #[test]
    fn after_unsaturated_bottleneck_rest_fills_up() {
        // Flow A capped at 1; flows B, C share the rest of a 10-unit link.
        let caps = [10.0];
        let flows = [
            demand(1.0, 1.0, &[0]),
            demand(1.0, 100.0, &[0]),
            demand(1.0, 100.0, &[0]),
        ];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 1.0).abs() < 1e-6);
        assert!((r[1] - 4.5).abs() < 1e-6);
        assert!((r[2] - 4.5).abs() < 1e-6);
    }

    #[test]
    fn many_flows_conservation_and_fairness() {
        let caps = [100.0];
        let flows: Vec<FlowDemand> = (0..20).map(|_| demand(4.0, 1e9, &[0])).collect();
        let r = max_min_rates(&caps, &flows);
        let total: f64 = r.iter().sum();
        assert!((total - 100.0).abs() < 1e-6);
        for w in &r {
            assert!((w - 5.0).abs() < 1e-6);
        }
    }

    #[test]
    fn two_hop_route_limited_by_smaller_link() {
        let caps = [3.5, 125.0];
        let flows = [demand(8.0, 1e9, &[0, 1])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 3.5).abs() < 1e-6);
    }
}
