//! Weighted max-min fair bandwidth sharing with per-flow rate caps.
//!
//! Given a set of links with (effective) capacities and a set of flows, each
//! with a weight (its parallel-stream count), a rate cap (streams ×
//! per-stream rate × ramp), and the list of links it crosses, compute the
//! classic *progressive-filling* allocation: grow every flow's rate in
//! proportion to its weight until it hits its cap or a link it crosses is
//! saturated; freeze those flows and repeat with the residual capacity.
//!
//! This is the fluid-flow approximation used by network simulators for bulk
//! TCP: fast to recompute at every membership change and accurate at the
//! tens-of-seconds timescales the workflow experiments care about.

/// A flow's demand as seen by the allocator.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// Fair-share weight (parallel streams).
    pub weight: f64,
    /// Upper bound on the flow's rate (bytes/sec).
    pub cap: f64,
    /// Indices into the `capacities` slice of the links this flow crosses.
    pub links: Vec<usize>,
}

/// Compute weighted max-min rates.
///
/// `capacities[l]` is the effective capacity of link `l` in bytes/sec.
/// Returns one rate per flow, in input order. Flows with zero weight or an
/// empty link list receive their cap directly (they consume no shared
/// resource in this model).
pub fn max_min_rates(capacities: &[f64], flows: &[FlowDemand]) -> Vec<f64> {
    const EPS: f64 = 1e-9;
    let mut rates = vec![0.0f64; flows.len()];
    let mut fixed = vec![false; flows.len()];
    let mut residual: Vec<f64> = capacities.to_vec();

    // Flows that use no links are bounded only by their cap.
    for (i, f) in flows.iter().enumerate() {
        if f.links.is_empty() || f.weight <= 0.0 {
            rates[i] = f.cap.max(0.0);
            fixed[i] = true;
        }
    }

    loop {
        // Residual weight per link over unfixed flows.
        let mut link_weight = vec![0.0f64; capacities.len()];
        let mut any_unfixed = false;
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            any_unfixed = true;
            for &l in &f.links {
                link_weight[l] += f.weight;
            }
        }
        if !any_unfixed {
            break;
        }

        // The binding constraint: the smallest per-weight share offered by
        // any loaded link, or the smallest per-weight cap of any unfixed flow.
        let mut limit = f64::INFINITY;
        let mut limit_is_link = false;
        let mut limit_link = usize::MAX;
        for (l, &w) in link_weight.iter().enumerate() {
            if w > EPS {
                let share = residual[l].max(0.0) / w;
                if share < limit - EPS {
                    limit = share;
                    limit_is_link = true;
                    limit_link = l;
                }
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let cap_share = (f.cap - rates[i]).max(0.0) / f.weight;
            if cap_share < limit - EPS {
                limit = cap_share;
                limit_is_link = false;
            }
        }
        if !limit.is_finite() {
            // No loaded links and no finite caps: flows are unconstrained;
            // freeze them at their (infinite) caps — callers always pass
            // finite caps, so treat as done.
            break;
        }

        // Grow every unfixed flow by weight × limit.
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let inc = f.weight * limit;
            rates[i] += inc;
            for &l in &f.links {
                residual[l] -= inc;
            }
        }

        // Freeze flows that hit the binding constraint.
        let mut froze = false;
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            let at_cap = rates[i] >= f.cap - EPS;
            let on_saturated = limit_is_link && f.links.contains(&limit_link);
            let on_any_saturated = f.links.iter().any(|&l| residual[l] <= EPS);
            if at_cap || on_saturated || on_any_saturated {
                fixed[i] = true;
                froze = true;
            }
        }
        if !froze {
            // Numerical corner: freeze everything touching the tightest link
            // to guarantee progress.
            for (i, f) in flows.iter().enumerate() {
                if !fixed[i] && (f.links.contains(&limit_link) || !limit_is_link) {
                    fixed[i] = true;
                }
            }
        }
    }
    rates
}

/// A reusable progressive-filling allocator.
///
/// Semantically equivalent to [`max_min_rates`] (the naive reference kept
/// for tests and baseline benchmarks), but engineered for the recompute hot
/// path:
///
/// * **No per-call allocation.** All working state — residual capacities,
///   per-link residual weights, flow tables, the flattened link lists — lives
///   in buffers that persist across calls and are reset lazily (only the
///   entries touched by the previous call are cleared).
/// * **Decremental link weights.** The naive algorithm rebuilds the
///   per-link weight sums from scratch on every filling iteration; here the
///   sums are built once and *decremented* as flows freeze.
/// * **Shrinking scan set.** Frozen flows drop out of the per-iteration
///   scans (order-preserving compaction), so late iterations touch only the
///   still-growing flows instead of re-skipping everything frozen so far.
///
/// Usage: `begin(link_count)`, then one [`RateAllocator::push_flow`] per
/// flow (in a deterministic order — the caller's iteration order fixes every
/// floating-point reduction), then [`RateAllocator::allocate`].
#[derive(Debug, Default)]
pub struct RateAllocator {
    /// Per-link working state; valid only for links in `touched`. One row
    /// per link rather than three parallel arrays: the filling loop indexes
    /// links at random, so splitting residual/weight/touched across arrays
    /// costs three cache lines per link touched where one row costs one.
    scratch: Vec<LinkScratch>,
    /// Links referenced by at least one pushed flow this round.
    touched: Vec<usize>,
    /// Per-flow weight, in push order.
    weights: Vec<f64>,
    /// Per-flow rate cap, in push order.
    caps: Vec<f64>,
    /// Flattened link lists of all pushed flows.
    links_flat: Vec<u32>,
    /// Per-flow `(start, end)` span into `links_flat`.
    spans: Vec<(u32, u32)>,
    /// Computed rates, in push order.
    rates: Vec<f64>,
    /// Per-flow frozen marker.
    fixed: Vec<bool>,
    /// Still-growing flow indices (order-preserving).
    active: Vec<usize>,
}

/// Per-link allocator working state, packed so the random-access filling
/// loops pay one cache line per link instead of three.
#[derive(Debug, Default, Clone, Copy)]
struct LinkScratch {
    /// Residual capacity, decremented as flows grow.
    residual: f64,
    /// Residual weight over unfrozen flows, decremented as flows freeze.
    weight: f64,
    /// True iff the link is in `touched` (lazily reset by `begin`).
    touched: bool,
}

impl RateAllocator {
    /// Numerical slop shared with [`max_min_rates`].
    const EPS: f64 = 1e-9;

    /// Fresh allocator with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new allocation round over a link space of `link_count`.
    pub fn begin(&mut self, link_count: usize) {
        // Lazily clear only what the previous round touched.
        for &l in &self.touched {
            self.scratch[l].touched = false;
        }
        self.touched.clear();
        if self.scratch.len() < link_count {
            self.scratch.resize(link_count, LinkScratch::default());
        }
        self.weights.clear();
        self.caps.clear();
        self.links_flat.clear();
        self.spans.clear();
        self.rates.clear();
        self.fixed.clear();
        self.active.clear();
    }

    /// Add one flow. `links` holds raw link indices into the capacity space
    /// declared to [`RateAllocator::begin`] (`u32`, matching how callers
    /// store routes in their packed per-flow rows).
    pub fn push_flow(&mut self, weight: f64, cap: f64, links: &[u32]) {
        let start = self.links_flat.len() as u32;
        for &l in links {
            self.links_flat.push(l);
            let l = l as usize;
            if !self.scratch[l].touched {
                self.scratch[l].touched = true;
                self.touched.push(l);
            }
        }
        self.spans.push((start, self.links_flat.len() as u32));
        self.weights.push(weight);
        self.caps.push(cap);
    }

    /// Run progressive filling over the pushed flows and return one rate
    /// per flow, in push order. `capacity_of(l)` yields the effective
    /// capacity of link `l` — an accessor rather than a slice so callers
    /// can keep capacities packed inside their own per-link rows (it is
    /// called once per touched link, when seeding residuals). The returned
    /// slice is valid until the next `begin`.
    pub fn allocate(&mut self, capacity_of: impl Fn(usize) -> f64) -> &[f64] {
        let n = self.weights.len();
        self.rates.resize(n, 0.0);
        self.fixed.resize(n, false);
        for r in self.rates.iter_mut() {
            *r = 0.0;
        }
        for f in self.fixed.iter_mut() {
            *f = false;
        }
        for &l in &self.touched {
            self.scratch[l].residual = capacity_of(l);
            self.scratch[l].weight = 0.0;
        }
        // Capless/linkless flows take their cap; the rest seed link weights.
        for i in 0..n {
            let (s, e) = self.spans[i];
            if s == e || self.weights[i] <= 0.0 {
                self.rates[i] = self.caps[i].max(0.0);
                self.fixed[i] = true;
            } else {
                self.active.push(i);
                for &l in &self.links_flat[s as usize..e as usize] {
                    self.scratch[l as usize].weight += self.weights[i];
                }
            }
        }

        while !self.active.is_empty() {
            // Binding constraint: the smallest per-weight share any loaded
            // link offers, or the smallest per-weight residual cap.
            let mut limit = f64::INFINITY;
            let mut limit_is_link = false;
            let mut limit_link = usize::MAX;
            for &l in &self.touched {
                let w = self.scratch[l].weight;
                if w > Self::EPS {
                    let share = self.scratch[l].residual.max(0.0) / w;
                    if share < limit - Self::EPS {
                        limit = share;
                        limit_is_link = true;
                        limit_link = l;
                    }
                }
            }
            for &i in &self.active {
                let cap_share = (self.caps[i] - self.rates[i]).max(0.0) / self.weights[i];
                if cap_share < limit - Self::EPS {
                    limit = cap_share;
                    limit_is_link = false;
                }
            }
            if !limit.is_finite() {
                break;
            }

            // Grow every active flow by weight × limit.
            for &i in &self.active {
                let inc = self.weights[i] * limit;
                self.rates[i] += inc;
                let (s, e) = self.spans[i];
                for &l in &self.links_flat[s as usize..e as usize] {
                    self.scratch[l as usize].residual -= inc;
                }
            }

            // Freeze flows that hit the binding constraint.
            let mut froze = false;
            for &i in &self.active {
                let (s, e) = self.spans[i];
                let links = &self.links_flat[s as usize..e as usize];
                let at_cap = self.rates[i] >= self.caps[i] - Self::EPS;
                let on_saturated = limit_is_link && links.contains(&(limit_link as u32));
                let on_any_saturated = links
                    .iter()
                    .any(|&l| self.scratch[l as usize].residual <= Self::EPS);
                if at_cap || on_saturated || on_any_saturated {
                    self.fixed[i] = true;
                    froze = true;
                }
            }
            if !froze {
                // Numerical corner: freeze everything touching the tightest
                // link to guarantee progress (mirrors `max_min_rates`).
                for &i in &self.active {
                    let (s, e) = self.spans[i];
                    let links = &self.links_flat[s as usize..e as usize];
                    if links.contains(&(limit_link as u32)) || !limit_is_link {
                        self.fixed[i] = true;
                    }
                }
            }
            // Drop frozen flows from the scan set, returning their weight.
            let fixed = &self.fixed;
            let weights = &self.weights;
            let spans = &self.spans;
            let links_flat = &self.links_flat;
            let scratch = &mut self.scratch;
            self.active.retain(|&i| {
                if fixed[i] {
                    let (s, e) = spans[i];
                    for &l in &links_flat[s as usize..e as usize] {
                        scratch[l as usize].weight -= weights[i];
                    }
                    false
                } else {
                    true
                }
            });
        }
        &self.rates
    }

    /// Number of flows pushed since the last `begin` (diagnostic).
    pub fn flow_count(&self) -> usize {
        self.weights.len()
    }

    /// Rate for a component containing exactly one flow: max-min fairness
    /// degenerates to the binding constraint of the first (and only)
    /// filling round. This mirrors [`RateAllocator::allocate`] *bit for
    /// bit* — same `EPS` guards, same `weight * limit` rounding, same
    /// iteration order over `capacities` as the `touched` list would have —
    /// so callers can take this shortcut without perturbing a single ULP
    /// relative to running the full allocator (the incremental-vs-full
    /// equivalence suites compare rates exactly). `capacities` must yield
    /// the flow's links in route order (the order `push_flow` would have
    /// touched them).
    pub fn single_flow_rate(
        weight: f64,
        cap: f64,
        capacities: impl IntoIterator<Item = f64>,
    ) -> f64 {
        if weight <= 0.0 {
            // `allocate` fixes non-positive-weight flows at their cap.
            return cap.max(0.0);
        }
        let mut limit = f64::INFINITY;
        if weight > Self::EPS {
            for c in capacities {
                let share = c.max(0.0) / weight;
                if share < limit - Self::EPS {
                    limit = share;
                }
            }
        }
        let cap_share = cap.max(0.0) / weight;
        if cap_share < limit - Self::EPS {
            limit = cap_share;
        }
        if !limit.is_finite() {
            return 0.0;
        }
        weight * limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(weight: f64, cap: f64, links: &[usize]) -> FlowDemand {
        FlowDemand {
            weight,
            cap,
            links: links.to_vec(),
        }
    }

    fn link_usage(capacities: &[f64], flows: &[FlowDemand], rates: &[f64]) -> Vec<f64> {
        let mut used = vec![0.0; capacities.len()];
        for (f, &r) in flows.iter().zip(rates) {
            for &l in &f.links {
                used[l] += r;
            }
        }
        used
    }

    #[test]
    fn single_flow_takes_min_of_cap_and_capacity() {
        let caps = [10.0];
        let flows = [demand(4.0, 100.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 10.0).abs() < 1e-6);

        let flows = [demand(4.0, 3.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equal_weights_split_equally() {
        let caps = [12.0];
        let flows = [demand(1.0, 100.0, &[0]), demand(1.0, 100.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 6.0).abs() < 1e-6);
        assert!((r[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn weights_bias_the_split() {
        let caps = [12.0];
        let flows = [demand(2.0, 100.0, &[0]), demand(1.0, 100.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 8.0).abs() < 1e-6);
        assert!((r[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn capped_flow_releases_share_to_others() {
        let caps = [12.0];
        let flows = [demand(1.0, 2.0, &[0]), demand(1.0, 100.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 2.0).abs() < 1e-6);
        assert!((r[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn never_exceeds_any_link_capacity() {
        let caps = [10.0, 6.0];
        let flows = [
            demand(3.0, 100.0, &[0, 1]),
            demand(1.0, 100.0, &[0]),
            demand(2.0, 100.0, &[1]),
        ];
        let r = max_min_rates(&caps, &flows);
        let used = link_usage(&caps, &flows, &r);
        for (u, c) in used.iter().zip(&caps) {
            assert!(*u <= c + 1e-6, "used {u} > cap {c}");
        }
    }

    #[test]
    fn bottleneck_link_determines_shared_flow() {
        // Flow A crosses both links; the 6-unit link is the bottleneck it
        // shares with flow C at equal weight → A gets 2 on it (weight 1 vs 2).
        let caps = [10.0, 6.0];
        let flows = [demand(1.0, 100.0, &[0, 1]), demand(2.0, 100.0, &[1])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 2.0).abs() < 1e-6);
        assert!((r[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn flow_with_no_links_gets_its_cap() {
        let caps = [1.0];
        let flows = [demand(1.0, 42.0, &[])];
        let r = max_min_rates(&caps, &flows);
        assert_eq!(r[0], 42.0);
    }

    #[test]
    fn zero_weight_flow_gets_cap_without_consuming() {
        let caps = [10.0];
        let flows = [demand(0.0, 1.0, &[0]), demand(1.0, 100.0, &[0])];
        let r = max_min_rates(&caps, &flows);
        assert_eq!(r[0], 1.0);
        assert!((r[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs() {
        assert!(max_min_rates(&[], &[]).is_empty());
        let caps = [5.0];
        assert!(max_min_rates(&caps, &[]).is_empty());
    }

    #[test]
    fn after_unsaturated_bottleneck_rest_fills_up() {
        // Flow A capped at 1; flows B, C share the rest of a 10-unit link.
        let caps = [10.0];
        let flows = [
            demand(1.0, 1.0, &[0]),
            demand(1.0, 100.0, &[0]),
            demand(1.0, 100.0, &[0]),
        ];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 1.0).abs() < 1e-6);
        assert!((r[1] - 4.5).abs() < 1e-6);
        assert!((r[2] - 4.5).abs() < 1e-6);
    }

    #[test]
    fn many_flows_conservation_and_fairness() {
        let caps = [100.0];
        let flows: Vec<FlowDemand> = (0..20).map(|_| demand(4.0, 1e9, &[0])).collect();
        let r = max_min_rates(&caps, &flows);
        let total: f64 = r.iter().sum();
        assert!((total - 100.0).abs() < 1e-6);
        for w in &r {
            assert!((w - 5.0).abs() < 1e-6);
        }
    }

    #[test]
    fn two_hop_route_limited_by_smaller_link() {
        let caps = [3.5, 125.0];
        let flows = [demand(8.0, 1e9, &[0, 1])];
        let r = max_min_rates(&caps, &flows);
        assert!((r[0] - 3.5).abs() < 1e-6);
    }

    fn links_u32(links: &[usize]) -> Vec<u32> {
        links.iter().map(|&l| l as u32).collect()
    }

    fn alloc_rates(caps: &[f64], flows: &[FlowDemand]) -> Vec<f64> {
        let mut alloc = RateAllocator::new();
        alloc.begin(caps.len());
        for f in flows {
            alloc.push_flow(f.weight, f.cap, &links_u32(&f.links));
        }
        alloc.allocate(|l| caps[l]).to_vec()
    }

    #[test]
    fn allocator_matches_reference_on_unit_cases() {
        let cases: Vec<(Vec<f64>, Vec<FlowDemand>)> = vec![
            (vec![10.0], vec![demand(4.0, 100.0, &[0])]),
            (
                vec![12.0],
                vec![demand(2.0, 100.0, &[0]), demand(1.0, 100.0, &[0])],
            ),
            (
                vec![12.0],
                vec![demand(1.0, 2.0, &[0]), demand(1.0, 100.0, &[0])],
            ),
            (
                vec![10.0, 6.0],
                vec![
                    demand(3.0, 100.0, &[0, 1]),
                    demand(1.0, 100.0, &[0]),
                    demand(2.0, 100.0, &[1]),
                ],
            ),
            (vec![1.0], vec![demand(1.0, 42.0, &[])]),
            (
                vec![10.0],
                vec![demand(0.0, 1.0, &[0]), demand(1.0, 100.0, &[0])],
            ),
            (vec![3.5, 125.0], vec![demand(8.0, 1e9, &[0, 1])]),
        ];
        for (caps, flows) in cases {
            let reference = max_min_rates(&caps, &flows);
            let fast = alloc_rates(&caps, &flows);
            for (a, b) in reference.iter().zip(&fast) {
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn allocator_is_reusable_across_rounds() {
        let mut alloc = RateAllocator::new();
        // Round 1: two flows on link 0.
        alloc.begin(3);
        alloc.push_flow(1.0, 100.0, &[0u32]);
        alloc.push_flow(1.0, 100.0, &[0u32]);
        let r = alloc.allocate(|l| [12.0, 5.0, 7.0][l]);
        assert!((r[0] - 6.0).abs() < 1e-9);
        // Round 2: different shape; stale state must not bleed through.
        alloc.begin(3);
        alloc.push_flow(2.0, 100.0, &[1u32, 2]);
        assert_eq!(alloc.flow_count(), 1);
        let r = alloc.allocate(|l| [12.0, 5.0, 7.0][l]);
        assert!((r[0] - 5.0).abs() < 1e-9, "{r:?}");
    }
}

#[cfg(test)]
mod equivalence_proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random abstract topologies: up to 12 links, up to 24 flows each
    /// crossing a random subset of links with random weight and cap.
    fn arb_scenario() -> impl Strategy<Value = (Vec<f64>, Vec<FlowDemand>)> {
        (1usize..12).prop_flat_map(|nlinks| {
            let caps = proptest::collection::vec(0.5f64..200.0, nlinks..nlinks + 1);
            let flows = proptest::collection::vec(
                (
                    0.1f64..16.0,                               // weight
                    0.01f64..500.0,                             // cap
                    proptest::collection::vec(0..nlinks, 0..5), // links (may repeat)
                ),
                1..24,
            )
            .prop_map(|fs| {
                fs.into_iter()
                    .map(|(weight, cap, mut links)| {
                        links.sort_unstable();
                        links.dedup();
                        FlowDemand { weight, cap, links }
                    })
                    .collect::<Vec<_>>()
            });
            (caps, flows)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The scratch-buffer incremental allocator and the naive reference
        /// agree within 1e-6 relative rate error on random topologies.
        #[test]
        fn incremental_matches_naive_reference((caps, flows) in arb_scenario()) {
            let reference = max_min_rates(&caps, &flows);
            let mut alloc = RateAllocator::new();
            alloc.begin(caps.len());
            for f in &flows {
                let links: Vec<u32> = f.links.iter().map(|&l| l as u32).collect();
                alloc.push_flow(f.weight, f.cap, &links);
            }
            let fast = alloc.allocate(|l| caps[l]);
            for (i, (a, b)) in reference.iter().zip(fast).enumerate() {
                let tol = 1e-6 * a.abs().max(1e-9);
                prop_assert!(
                    (a - b).abs() <= tol,
                    "flow {i}: reference {a} vs incremental {b}"
                );
            }
        }

        /// Component locality: allocating two disjoint link groups together
        /// or separately gives the same rates.
        #[test]
        fn disjoint_components_allocate_independently(
            (caps_a, flows_a) in arb_scenario(),
            (caps_b, flows_b) in arb_scenario(),
        ) {
            // Shift component B's link indices past component A's.
            let offset = caps_a.len();
            let mut caps = caps_a.clone();
            caps.extend_from_slice(&caps_b);
            let shifted_b: Vec<FlowDemand> = flows_b
                .iter()
                .map(|f| FlowDemand {
                    weight: f.weight,
                    cap: f.cap,
                    links: f.links.iter().map(|l| l + offset).collect(),
                })
                .collect();
            let mut joint_flows = flows_a.clone();
            joint_flows.extend(shifted_b.iter().cloned());
            let joint = max_min_rates(&caps, &joint_flows);

            let to_u32 = |links: &[usize]| links.iter().map(|&l| l as u32).collect::<Vec<u32>>();
            let mut alloc = RateAllocator::new();
            alloc.begin(caps.len());
            for f in &flows_a {
                alloc.push_flow(f.weight, f.cap, &to_u32(&f.links));
            }
            let ra = alloc.allocate(|l| caps[l]).to_vec();
            alloc.begin(caps.len());
            for f in &shifted_b {
                alloc.push_flow(f.weight, f.cap, &to_u32(&f.links));
            }
            let rb = alloc.allocate(|l| caps[l]).to_vec();

            for (i, (j, s)) in joint.iter().zip(ra.iter().chain(rb.iter())).enumerate() {
                let tol = 1e-6 * j.abs().max(1e-9);
                prop_assert!(
                    (j - s).abs() <= tol,
                    "flow {i}: joint {j} vs separate {s}"
                );
            }
        }
    }
}
