//! Per-link utilization timelines.
//!
//! An opt-in recorder ([`crate::Network::watch_link`]) that samples a link's
//! stream occupancy, turbulence, and instantaneous throughput at every rate
//! recomputation. Bounded by decimation: when the buffer fills, every other
//! sample is dropped and the sampling stride doubles, so arbitrarily long
//! runs keep a uniform ~half-full buffer.

use pwm_sim::SimTime;

/// One observation of a link's state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Concurrent streams on the link.
    pub streams: u32,
    /// Turbulence level at the sample instant.
    pub turbulence: f64,
    /// Sum of the rates of flows crossing the link (bytes/sec).
    pub throughput: f64,
}

/// A bounded, self-decimating sample series for one link.
#[derive(Debug, Clone)]
pub struct LinkTimeline {
    samples: Vec<UtilizationSample>,
    capacity: usize,
    stride: u64,
    counter: u64,
}

impl LinkTimeline {
    /// A timeline retaining at most `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        LinkTimeline {
            samples: Vec::new(),
            capacity: capacity.max(8),
            stride: 1,
            counter: 0,
        }
    }

    /// Offer a sample; kept only when the current stride admits it.
    pub fn record(&mut self, sample: UtilizationSample) {
        let admit = self.counter.is_multiple_of(self.stride);
        self.counter += 1;
        if !admit {
            return;
        }
        if self.samples.len() == self.capacity {
            // Decimate in place: keep every other sample, double the stride.
            let mut i = 0;
            self.samples.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            self.stride *= 2;
        }
        self.samples.push(sample);
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> &[UtilizationSample] {
        &self.samples
    }

    /// Mean throughput over the retained samples (bytes/sec).
    pub fn mean_throughput(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.throughput).sum::<f64>() / self.samples.len() as f64
    }

    /// Largest stream count observed in the retained samples.
    pub fn peak_streams(&self) -> u32 {
        self.samples.iter().map(|s| s.streams).max().unwrap_or(0)
    }

    /// Fraction of retained samples with turbulence above `level`.
    pub fn turbulent_fraction(&self, level: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.turbulence > level).count() as f64
            / self.samples.len() as f64
    }
}

impl Default for LinkTimeline {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64, streams: u32, throughput: f64) -> UtilizationSample {
        UtilizationSample {
            at: SimTime::from_secs(t),
            streams,
            turbulence: 0.0,
            throughput,
        }
    }

    #[test]
    fn records_until_capacity() {
        let mut tl = LinkTimeline::with_capacity(8);
        for t in 0..8 {
            tl.record(sample(t, 1, 1.0));
        }
        assert_eq!(tl.samples().len(), 8);
    }

    #[test]
    fn decimates_and_doubles_stride() {
        let mut tl = LinkTimeline::with_capacity(8);
        for t in 0..64 {
            tl.record(sample(t, 1, 1.0));
        }
        // Never exceeds capacity and coverage spans the whole range.
        assert!(tl.samples().len() <= 8);
        let first = tl.samples().first().unwrap().at;
        let last = tl.samples().last().unwrap().at;
        assert_eq!(first, SimTime::from_secs(0));
        assert!(last >= SimTime::from_secs(48), "last kept sample {last}");
        // Samples remain time-ordered.
        for w in tl.samples().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn aggregates() {
        let mut tl = LinkTimeline::default();
        tl.record(sample(0, 4, 10.0));
        tl.record(UtilizationSample {
            at: SimTime::from_secs(1),
            streams: 9,
            turbulence: 0.8,
            throughput: 30.0,
        });
        assert!((tl.mean_throughput() - 20.0).abs() < 1e-9);
        assert_eq!(tl.peak_streams(), 9);
        assert!((tl.turbulent_fraction(0.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline_defaults() {
        let tl = LinkTimeline::default();
        assert_eq!(tl.mean_throughput(), 0.0);
        assert_eq!(tl.peak_streams(), 0);
        assert_eq!(tl.turbulent_fraction(0.0), 0.0);
    }
}
