//! # pwm-net — network and host simulator
//!
//! The substrate standing in for the paper's physical testbed (GridFTP server
//! on a FutureGrid VM, ~28 Mbit/s WAN to ISI, Obelix cluster on a 1 Gbit
//! LAN). It simulates bulk data transfers as fluid flows over a topology of
//! capacity-limited links, with the parallel-stream effects the paper's
//! greedy/balanced policies manipulate:
//!
//! * per-stream window/RTT rate caps (why parallel streams help at all),
//! * an over-subscription knee beyond which total streams on a link *hurt*
//!   (why a greedy threshold of 200 loses to 50),
//! * churn turbulence that makes the over-subscription penalty bite hardest
//!   for workloads of many medium transfers and fade for very long ones
//!   (why the 1 GB experiments show no clear winner),
//! * per-file connection setup costs scaling with streams and RTT.
//!
//! Module map: [`topology`] (hosts/links/routes), [`model`] (the stream
//! performance model and its knobs), [`sharing`] (weighted max-min fair
//! allocation), [`flow`] (transfer state and records), [`network`] (the
//! engine), [`metrics`] (post-run aggregation), [`fault`] (deterministic
//! link outages and degradations driven by a [`pwm_sim::FaultPlan`]).
//!
//! ```
//! use pwm_net::{paper_testbed, FlowSpec, Network, StreamModel};
//! use pwm_sim::SimTime;
//!
//! let (topo, gridftp, _apache, nfs) = paper_testbed();
//! let mut net = Network::new(topo, StreamModel::default());
//! net.start_flow(SimTime::ZERO, FlowSpec {
//!     src: gridftp, dst: nfs, bytes: 10.0e6, streams: 8, tag: 1,
//! });
//! net.run_to_completion(SimTime::from_secs(3600));
//! let done = net.take_completed();
//! assert_eq!(done.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod flow;
mod flow_table;
pub mod metrics;
pub mod model;
pub mod network;
pub mod sharing;
pub mod timeline;
pub mod topology;

pub use fault::{LinkFault, LinkFaultKind};
pub use flow::{Flow, FlowId, FlowPhase, FlowSpec, KilledFlow, TransferRecord};
pub use metrics::{AllocStats, TransferLedger};
pub use model::{LinkState, StreamModel};
pub use network::Network;
pub use sharing::{max_min_rates, FlowDemand, RateAllocator};
pub use timeline::{LinkTimeline, UtilizationSample};
pub use topology::{paper_testbed, Host, HostId, Link, LinkId, Topology};

// Re-export the simulation time types used throughout this crate's API.
pub use pwm_sim::{SimDuration, SimTime};
