//! The fluid-flow network engine.
//!
//! [`Network`] holds the topology, the [`StreamModel`], and the set of live
//! flows. It is a *passive* component: a driver (the workflow executor, or a
//! test) interleaves its own events with the network's by asking
//! [`Network::next_wakeup`] for the earliest instant anything interesting
//! happens and calling [`Network::advance`] to move the engine there. Rates
//! are recomputed (weighted max-min, see [`crate::sharing`]) at every flow
//! membership change and at periodic refresh points while flows ramp or
//! links are turbulent.
//!
//! # Event-driven core
//!
//! The engine's own discontinuities — a connection finishing setup, a flow
//! draining at its current rate — live in an indexed [`EventQueue`] rather
//! than being rediscovered by per-flow scans. Flow state is a
//! struct-of-arrays [`FlowTable`]; byte progress is integrated *lazily*
//! (each slot stores `(remaining, rate, rate_since)` and the engine
//! evaluates the linear motion on demand), so advancing time is O(1) in the
//! number of flows. When an allocation actually changes a flow's rate, its
//! completion-ETA event is cancelled and rescheduled — the cancel-heavy
//! workload the indexed queue's O(1)-locate cancellation exists for. A rate
//! that moves by less than [`RATE_EPS`] keeps both its value and its
//! pending ETA event untouched.
//!
//! Per-event cost is therefore O(affected component + log live-flows):
//! popping the event, updating link membership, and re-running progressive
//! filling over the connected component the membership change can reach.
//! Disjoint host-pair clusters never pay for each other's churn, and a
//! 100k-flow network costs no more per event than a 100-flow one with the
//! same cluster size.
//!
//! Determinism: every order-sensitive iteration (activation candidates,
//! completion processing, component allocation, the full-recompute baseline)
//! sorts by monotonically increasing [`FlowId`], so floating-point
//! reductions are identical across runs with the same schedule.

use crate::fault::{LinkFault, LinkFaultKind};
use crate::flow::{FlowId, FlowSpec, KilledFlow, TransferRecord};
use crate::flow_table::{FlowCold, FlowTable, Phase};
use crate::metrics::AllocStats;
use crate::model::{LinkState, StreamModel};
use crate::sharing::{max_min_rates, FlowDemand, RateAllocator};
use crate::timeline::{LinkTimeline, UtilizationSample};
use crate::topology::{LinkId, Topology};
use pwm_obs::{Counter, Gauge, Obs, SpanId};
use pwm_sim::{DynQueue, FaultEvent, FaultPlan, QueueKind, SimDuration, SimQueue, SimRng, SimTime};
use std::collections::BTreeMap;

/// Completion slop: a flow whose remaining bytes drop below this is done.
const BYTE_EPS: f64 = 0.5;

/// Relative rate-change threshold below which a freshly computed rate is
/// discarded in favor of the flow's current one: sub-epsilon churn would
/// only perturb completion ETAs in their last bits and cascade pointless
/// event reschedules through the queue.
const RATE_EPS: f64 = 1e-9;

/// Relative slack when deciding whether an allocation left a flow bound by
/// its own cap (`rate ≈ cap`) rather than by a saturated link.
const CAP_BOUND_SLACK: f64 = 1e-6;

/// The engine's internal discontinuities, keyed by flow slot.
#[derive(Debug, Clone, Copy)]
enum NetEvent {
    /// Connection setup finishes for the flow in this slot.
    Connect(u32),
    /// Completion ETA of the flow in this slot at its scheduled rate.
    /// Cancelled and rescheduled whenever the rate genuinely changes.
    Complete(u32),
}

/// Flow slots a link can hold inline in its [`LinkHot`] row before membership
/// spills to the heap. Sized so the whole row is exactly two cache lines.
const LINK_FLOWS_INLINE: usize = 10;

/// Per-link hot state: everything the engine touches when a flow joins or
/// leaves a link or its effective capacity refreshes, packed into one
/// 128-byte (two cache line) row. These fields used to live in five parallel
/// arrays plus the topology's link table *plus* a `Vec<Vec<u32>>` membership
/// index; at 100k-flow scale every membership event then paid ~5 scattered
/// cache misses per link touched — two of them just to reach the membership
/// list (spine entry, then heap data) — which dominated the event loop.
///
/// The first 64 bytes hold the capacity math; the second 64 hold the active
/// flow membership inline (up to [`LINK_FLOWS_INLINE`] slots, covering the
/// access links that dominate event traffic), adjacent to the line the
/// engine just touched so the hardware prefetcher gets it nearly free.
/// Fan-in links (a shared backbone with hundreds of flows) spill to a
/// per-link heap `Vec` and behave like the old layout.
#[repr(C, align(64))]
struct LinkHot {
    // --- line 1: capacity math -------------------------------------------
    /// Occupancy and turbulence (streams, peak, turbulence, updated_at).
    state: LinkState,
    /// Congestion knee with any per-link override resolved at build time
    /// (the topology and model are fixed for the network's lifetime).
    knee: f64,
    /// Nominal capacity from the topology; turbulence, stream counts, and
    /// faults scale it into `capacity` below.
    base_capacity: f64,
    /// Effective capacity as of the last recompute; a change marks the
    /// link dirty (covers turbulence decay, stream-count knees, and
    /// fault-window boundaries in one comparison). Kept inside the hot row
    /// so the capacity refresh and the allocator's residual seeding read
    /// the same cache line they already touched for `state`.
    capacity: f64,
    /// Running allocated throughput, rebuilt at each component
    /// reallocation.
    throughput: f64,
    /// Membership or effective capacity changed since the last recompute
    /// (membership flag for `Network::dirty_links`).
    dirty: bool,
    /// Membership flag for `Network::turb_links`.
    turb: bool,
    /// Component-BFS visited marker; always false outside a recompute's
    /// BFS phase.
    seen: bool,
    /// Flows in `flows_inline`, or [`FLOWS_SPILLED`] when membership lives
    /// in `flows_spill`.
    nflows: u8,
    /// Explicit padding so the membership half starts on the second line.
    _pad: [u8; 4],
    // --- line 2: active-flow membership ----------------------------------
    /// Inline membership: active flow slots on this link, sorted by the
    /// owning `FlowId`. Valid up to `nflows`.
    flows_inline: [u32; LINK_FLOWS_INLINE],
    /// Heap overflow once membership exceeds [`LINK_FLOWS_INLINE`]; holds
    /// the *entire* sorted list while active.
    flows_spill: Vec<u32>,
}

/// `LinkHot::nflows` marker: membership has spilled to `flows_spill`.
const FLOWS_SPILLED: u8 = u8::MAX;

const _: () = assert!(
    std::mem::size_of::<LinkHot>() == 128,
    "LinkHot must stay exactly two cache lines"
);

impl LinkHot {
    /// Active flow slots on this link, sorted by owning `FlowId`.
    #[inline]
    fn flows(&self) -> &[u32] {
        if self.nflows == FLOWS_SPILLED {
            &self.flows_spill
        } else {
            &self.flows_inline[..self.nflows as usize]
        }
    }

    /// Flows currently on the link.
    #[inline]
    fn flow_count(&self) -> usize {
        if self.nflows == FLOWS_SPILLED {
            self.flows_spill.len()
        } else {
            self.nflows as usize
        }
    }

    /// The `m`-th member slot. Indexed access (rather than holding
    /// [`LinkHot::flows`]) lets the BFS mutate other links between reads.
    #[inline]
    fn flow_at(&self, m: usize) -> u32 {
        if self.nflows == FLOWS_SPILLED {
            self.flows_spill[m]
        } else {
            debug_assert!(m < self.nflows as usize);
            self.flows_inline[m]
        }
    }

    /// Insert `slot` at `pos` (from a binary search over `flows()`),
    /// spilling to the heap when the inline array is full.
    fn insert_flow_at(&mut self, pos: usize, slot: u32) {
        if self.nflows == FLOWS_SPILLED {
            self.flows_spill.insert(pos, slot);
        } else if (self.nflows as usize) < LINK_FLOWS_INLINE {
            let n = self.nflows as usize;
            self.flows_inline.copy_within(pos..n, pos + 1);
            self.flows_inline[pos] = slot;
            self.nflows += 1;
        } else {
            // Crossing into spill: move the whole list to the heap. The
            // spill Vec keeps its capacity across episodes, so links that
            // oscillate around the boundary only pay a small memcpy.
            self.flows_spill.clear();
            self.flows_spill.extend_from_slice(&self.flows_inline);
            self.flows_spill.insert(pos, slot);
            self.nflows = FLOWS_SPILLED;
        }
    }

    /// Remove the member at `pos` (from a binary search over `flows()`),
    /// un-spilling once a drained list fits inline again with hysteresis.
    fn remove_flow_at(&mut self, pos: usize) {
        if self.nflows == FLOWS_SPILLED {
            self.flows_spill.remove(pos);
            if self.flows_spill.len() <= LINK_FLOWS_INLINE / 2 {
                self.nflows = self.flows_spill.len() as u8;
                for (cell, &s) in self.flows_inline.iter_mut().zip(&self.flows_spill) {
                    *cell = s;
                }
                self.flows_spill.clear();
            }
        } else {
            let n = self.nflows as usize;
            debug_assert!(pos < n);
            self.flows_inline.copy_within(pos + 1..n, pos);
            self.nflows -= 1;
        }
    }
}

/// Per-host connection accounting, packed so the activation path's
/// slot-availability check and occupancy bump touch one small row instead of
/// a counter array plus the topology's (large, string-bearing) host record.
#[derive(Clone, Copy)]
struct HostSlot {
    /// Connections currently open at the host.
    active: u32,
    /// Connection limit; `u32::MAX` when the host is unlimited.
    max: u32,
}

/// The live network simulation.
pub struct Network {
    topology: Topology,
    model: StreamModel,
    /// Struct-of-arrays live-flow state (see [`FlowTable`]).
    flows: FlowTable,
    /// Connect/Complete discontinuities, indexed for O(1)-locate cancel.
    /// Implementation chosen per run (see [`Network::with_seed_queue`]).
    sched: DynQueue<NetEvent>,
    /// Per-link hot state, one row per link (see [`LinkHot`]).
    links: Vec<LinkHot>,
    next_flow_id: u64,
    now: SimTime,
    completed: Vec<TransferRecord>,
    total_bytes_completed: f64,
    total_flows_completed: u64,
    rng: SimRng,
    /// Per-host connection accounting (enforces per-host limits).
    hosts: Vec<HostSlot>,
    /// Dense access-link index per host. The topology's `Host` rows carry
    /// strings and options; routing every replacement flow through them
    /// costs scattered cache misses, where this table packs 16 hosts per
    /// line.
    host_access: Vec<u32>,
    /// Dense per-link RTT table (same motivation as `host_access`).
    link_rtt: Vec<SimDuration>,
    /// True when the topology has no explicit multi-hop routes, so every
    /// route is `[src access, dst access]` and `start_flow` can skip the
    /// route-map lookup entirely.
    simple_routes: bool,
    /// Opt-in utilization recorders, keyed by watched link.
    timelines: BTreeMap<LinkId, LinkTimeline>,
    /// Scheduled link faults; capacities scale while a window is active.
    faults: FaultPlan<LinkFault>,
    /// Opt-in observability sinks (see [`Network::set_obs`]).
    obs: Option<NetObs>,

    // --- Incremental allocation engine ------------------------------------
    // A persistent flow↔link bipartite index (inline in the `LinkHot` rows)
    // plus a dirty-link set lets a membership change re-run progressive
    // filling over only the connected component of links/flows it can
    // actually affect; disjoint host-pair clusters never pay for each
    // other's churn.
    /// The links with `LinkHot::dirty` set (insertion-ordered, dedup'd).
    dirty_links: Vec<usize>,
    /// Active flows still in slow-start, id → slot. Their caps rise with
    /// age, but a recompute is only forced while a flow's cap is actually
    /// binding (see `recompute_rates` step 2).
    ramping: BTreeMap<FlowId, u32>,
    /// Flows waiting for a connection slot, id → slot (FIFO = id order).
    queued: BTreeMap<FlowId, u32>,
    /// Links with nonzero stored turbulence (membership flag: `LinkHot::
    /// turb`). Invariant: any link whose stored turbulence is positive is
    /// in this list — turbulence is only injected by membership changes,
    /// which enlist the link; it leaves once settling clips the level to
    /// zero.
    turb_links: Vec<usize>,
    /// Slots that became Active already drained (zero-byte payloads): they
    /// complete in the same advance step, without a Complete event.
    done_now: Vec<u32>,
    /// Number of flows currently in [`Phase::Active`].
    active_count: usize,
    /// Reusable progressive-filling scratch (see [`RateAllocator`]).
    alloc: RateAllocator,
    /// Scratch: flow slots of the dirty component(s), sorted by id.
    comp_flows: Vec<u32>,
    /// Scratch: per-component flow caps, parallel to `comp_flows`.
    comp_caps: Vec<f64>,
    /// Scratch: links of the dirty component(s).
    comp_links: Vec<usize>,
    /// Scratch: BFS work stack of link indices. (The visited markers live
    /// as `seen` bits inside the `LinkHot`/`FlowHot` rows the BFS touches
    /// anyway, cleared via `comp_links`/`comp_flows`.)
    bfs_stack: Vec<usize>,
    /// Scratch: route buffer reused across `start_flow` calls.
    route_scratch: Vec<LinkId>,
    /// Scratch: ramping (id, slot) pairs being examined this recompute.
    ramp_scratch: Vec<(FlowId, u32)>,
    /// Scratch: raw events drained from the queue in one batched pass per
    /// `advance` segment (same-timestamp coalescing).
    drain_scratch: Vec<(SimTime, NetEvent)>,
    /// Scratch: Connect events drained in the current `advance` segment.
    connect_scratch: Vec<(FlowId, u32)>,
    /// Scratch: Complete events drained in the current `advance` segment.
    complete_scratch: Vec<(FlowId, u32)>,
    /// Scratch: (slot, stream-delta) pairs joining links in `activate_due`.
    join_scratch: Vec<(u32, i64)>,
    /// Allocation-work counters (see [`AllocStats`]).
    stats: AllocStats,
    /// Benchmark/testing escape hatch: when true, every recompute takes the
    /// full path (all flows, all links, fresh buffers).
    full_recompute: bool,
}

/// Observability state attached by [`Network::set_obs`]: the shared handle
/// plus per-link gauge handles cached so the rate-recompute hot path never
/// touches the registry's name table.
struct NetObs {
    obs: Obs,
    /// Per-link `(streams, throughput_bps)` gauges, indexed by `LinkId`.
    link_gauges: Vec<(Gauge, Gauge)>,
    /// Sim-loop queue health, refreshed after every `advance`.
    queue: QueueObs,
    /// Trace-span parents for in-flight flows (see
    /// [`Network::set_flow_span_parent`]).
    flow_parents: BTreeMap<FlowId, SpanId>,
}

/// Cached handles for the sim-loop queue-health series, labeled with the
/// queue kind. The occupancy gauges expose the ladder's geometry (current
/// bucket / rungs / overflow); they read zero under the heap, which has no
/// bucket structure.
struct QueueObs {
    depth: Gauge,
    current_bucket: Gauge,
    rung_events: Gauge,
    overflow_events: Gauge,
    active_rungs: Gauge,
    cancelled: Counter,
}

impl QueueObs {
    fn new(obs: &Obs, queue: QueueKind) -> Self {
        let q = queue.name();
        QueueObs {
            depth: obs.registry.gauge(
                "sim_queue_depth",
                "Live events pending in the simulation event queue",
                &[("queue", q)],
            ),
            current_bucket: obs.registry.gauge(
                "sim_queue_current_bucket_events",
                "Events in the ladder queue's sorted current bucket",
                &[("queue", q)],
            ),
            rung_events: obs.registry.gauge(
                "sim_queue_rung_events",
                "Events bucketed in ladder-queue rungs",
                &[("queue", q)],
            ),
            overflow_events: obs.registry.gauge(
                "sim_queue_overflow_events",
                "Far-future events staged in the ladder queue's overflow list",
                &[("queue", q)],
            ),
            active_rungs: obs.registry.gauge(
                "sim_queue_active_rungs",
                "Ladder-queue rungs currently spawned",
                &[("queue", q)],
            ),
            cancelled: obs.registry.counter(
                "sim_queue_cancelled_total",
                "Events cancelled before firing over the queue's lifetime",
                &[("queue", q)],
            ),
        }
    }

    fn refresh(&self, health: pwm_sim::QueueHealth) {
        self.depth.set(health.depth as f64);
        self.current_bucket.set(health.current_bucket_events as f64);
        self.rung_events.set(health.rung_events as f64);
        self.overflow_events.set(health.overflow_events as f64);
        self.active_rungs.set(health.active_rungs as f64);
        let exported = self.cancelled.get();
        self.cancelled
            .add(health.cancelled_total.saturating_sub(exported));
    }
}

impl Network {
    /// Build a network over `topology` with the given stream model and the
    /// default seed (0) for per-flow weight jitter.
    pub fn new(topology: Topology, model: StreamModel) -> Self {
        Self::with_seed(topology, model, 0)
    }

    /// Build a network with an explicit seed for per-flow weight jitter.
    pub fn with_seed(topology: Topology, model: StreamModel, seed: u64) -> Self {
        Self::with_seed_queue(topology, model, seed, QueueKind::default())
    }

    /// Build a network choosing the pending-event structure explicitly.
    /// Both kinds produce bit-identical runs (the ladder preserves exact
    /// `(time, seq)` order); the choice only trades queue-operation cost
    /// profiles, so it is a benchmarking/validation knob, not a semantic
    /// one.
    pub fn with_seed_queue(
        topology: Topology,
        model: StreamModel,
        seed: u64,
        queue: QueueKind,
    ) -> Self {
        let link_count = topology.link_count();
        let links = (0..link_count)
            .map(|ix| {
                let l = topology.link(LinkId(ix as u32));
                LinkHot {
                    state: LinkState::new(),
                    knee: l.knee_override.unwrap_or(model.knee_streams),
                    base_capacity: l.capacity,
                    capacity: 0.0,
                    throughput: 0.0,
                    dirty: false,
                    turb: false,
                    seen: false,
                    nflows: 0,
                    _pad: [0; 4],
                    flows_inline: [0; LINK_FLOWS_INLINE],
                    flows_spill: Vec::new(),
                }
            })
            .collect();
        // Connection limits are fixed at build time (the topology is owned
        // and never mutated after construction), so bake them into the
        // per-host accounting rows.
        let hosts = (0..topology.host_count())
            .map(|h| HostSlot {
                active: 0,
                max: topology
                    .host(crate::HostId(h as u32))
                    .max_connections
                    .unwrap_or(u32::MAX),
            })
            .collect();
        let host_access = (0..topology.host_count())
            .map(|h| topology.host(crate::HostId(h as u32)).access_link.0)
            .collect();
        let link_rtt = (0..link_count)
            .map(|ix| topology.link(LinkId(ix as u32)).rtt)
            .collect();
        let simple_routes = topology.route_count() == 0;
        Network {
            topology,
            model,
            flows: FlowTable::new(),
            sched: DynQueue::new(queue),
            links,
            next_flow_id: 0,
            now: SimTime::ZERO,
            completed: Vec::new(),
            total_bytes_completed: 0.0,
            total_flows_completed: 0,
            rng: SimRng::for_component(seed, "network-weights"),
            hosts,
            host_access,
            link_rtt,
            simple_routes,
            timelines: BTreeMap::new(),
            faults: FaultPlan::new(),
            obs: None,
            dirty_links: Vec::new(),
            ramping: BTreeMap::new(),
            queued: BTreeMap::new(),
            turb_links: Vec::new(),
            done_now: Vec::new(),
            active_count: 0,
            alloc: RateAllocator::new(),
            comp_flows: Vec::new(),
            comp_caps: Vec::new(),
            comp_links: Vec::new(),
            bfs_stack: Vec::new(),
            route_scratch: Vec::new(),
            ramp_scratch: Vec::new(),
            drain_scratch: Vec::new(),
            connect_scratch: Vec::new(),
            complete_scratch: Vec::new(),
            join_scratch: Vec::new(),
            stats: AllocStats::default(),
            full_recompute: false,
        }
    }

    /// Force every rate recomputation down the full path (every flow, every
    /// link, fresh buffers). Benchmark baseline and equivalence-testing
    /// escape hatch; choose a mode before starting flows and keep it for
    /// the network's lifetime.
    pub fn set_full_recompute(&mut self, on: bool) {
        self.full_recompute = on;
    }

    /// Allocation-work counters accumulated since construction.
    pub fn alloc_stats(&self) -> AllocStats {
        self.stats
    }

    /// Attach observability: completed flows become trace spans (category
    /// `net`, timed `activated_at → completed_at`), link fault windows
    /// become trace instants, and every rate recomputation refreshes
    /// per-link `pwm_net_link_streams` / `pwm_net_link_throughput_bps`
    /// gauges labeled with the link name.
    pub fn set_obs(&mut self, obs: Obs) {
        let link_gauges = (0..self.topology.link_count())
            .map(|ix| {
                let name = self.topology.link(LinkId(ix as u32)).name.clone();
                (
                    obs.registry.gauge(
                        "pwm_net_link_streams",
                        "Concurrent streams currently on the link",
                        &[("link", &name)],
                    ),
                    obs.registry.gauge(
                        "pwm_net_link_throughput_bps",
                        "Aggregate throughput currently allocated across the link, bytes/sec",
                        &[("link", &name)],
                    ),
                )
            })
            .collect();
        let queue = QueueObs::new(&obs, self.sched.kind());
        queue.refresh(self.sched.health());
        let net_obs = NetObs {
            obs,
            link_gauges,
            queue,
            flow_parents: BTreeMap::new(),
        };
        self.emit_fault_instants(&net_obs, self.faults.events());
        self.obs = Some(net_obs);
    }

    /// Parent the trace span of `flow` (emitted when the flow completes)
    /// under an existing span — typically the workflow executor's transfer
    /// span. No-op without observability attached.
    pub fn set_flow_span_parent(&mut self, flow: FlowId, parent: SpanId) {
        if let Some(o) = &mut self.obs {
            o.flow_parents.insert(flow, parent);
        }
    }

    /// Trace instants marking each scheduled fault window's open and close.
    fn emit_fault_instants(&self, obs: &NetObs, events: &[FaultEvent<LinkFault>]) {
        for ev in events {
            let link = self.topology.link(ev.kind.link).name.clone();
            let kind = match ev.kind.kind {
                LinkFaultKind::Down => "down".to_string(),
                LinkFaultKind::Degrade(f) => format!("degrade:{f}"),
            };
            obs.obs.tracer.instant(
                "link_fault_start",
                "net",
                ev.window.start,
                &[("link", link.clone()), ("kind", kind.clone())],
            );
            obs.obs.tracer.instant(
                "link_fault_end",
                "net",
                ev.window.end(),
                &[("link", link), ("kind", kind)],
            );
        }
    }

    /// Install a full fault plan (replacing any existing one). Must be
    /// called before the affected windows open; fault effects apply from
    /// the next rate recomputation.
    pub fn set_fault_plan(&mut self, plan: FaultPlan<LinkFault>) {
        self.faults = plan;
        if let Some(o) = &self.obs {
            self.emit_fault_instants(o, self.faults.events());
        }
    }

    /// Schedule one link fault active over `[start, start + duration)`.
    pub fn inject_link_fault(&mut self, start: SimTime, duration: SimDuration, fault: LinkFault) {
        self.faults.add(start, duration, fault);
        if let Some(o) = &self.obs {
            // The plan re-sorts on add, so describe the new window directly.
            let added = [FaultEvent {
                window: pwm_sim::FaultWindow::new(start, duration),
                kind: fault,
            }];
            self.emit_fault_instants(o, &added);
        }
    }

    /// The installed fault plan (empty when no faults are scheduled).
    pub fn fault_plan(&self) -> &FaultPlan<LinkFault> {
        &self.faults
    }

    /// Capacity multiplier for `link` at `at` under the active fault
    /// windows (overlapping faults compose multiplicatively; 1.0 when the
    /// link is healthy).
    fn fault_capacity_factor(&self, link: LinkId, at: SimTime) -> f64 {
        self.faults
            .active_at(at)
            .filter(|e| e.kind.link == link)
            .map(|e| e.kind.capacity_factor())
            .product()
    }

    /// Start recording a utilization timeline for `link`.
    pub fn watch_link(&mut self, link: LinkId) {
        self.timelines.entry(link).or_default();
    }

    /// The recorded timeline for `link`, if watched.
    pub fn timeline(&self, link: LinkId) -> Option<&LinkTimeline> {
        self.timelines.get(&link)
    }

    /// True when both endpoints have a free connection slot. A loopback
    /// flow (`src == dst`) occupies — and therefore checks — one host once.
    fn slots_available(&self, src: crate::HostId, dst: crate::HostId) -> bool {
        let free = |h: crate::HostId| {
            let s = self.hosts[h.0 as usize];
            s.active < s.max
        };
        free(src) && (src == dst || free(dst))
    }

    fn occupy_slots(&mut self, src: crate::HostId, dst: crate::HostId, delta: i64) {
        let mut bump = |h: crate::HostId| {
            let slot = &mut self.hosts[h.0 as usize].active;
            *slot = (*slot as i64 + delta).max(0) as u32;
        };
        bump(src);
        if src != dst {
            bump(dst);
        }
    }

    /// Currently active connections at a host (diagnostic).
    pub fn host_connections(&self, host: crate::HostId) -> u32 {
        self.hosts[host.0 as usize].active
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The stream model in force.
    pub fn model(&self) -> &StreamModel {
        &self.model
    }

    /// Current network-local time (last `advance` target).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of flows currently connecting or moving bytes.
    pub fn live_flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Peak concurrent streams ever observed on `link` (Table IV check).
    pub fn peak_streams(&self, link: LinkId) -> u32 {
        self.links[link.0 as usize].state.peak_streams
    }

    /// Current concurrent streams on `link`.
    pub fn current_streams(&self, link: LinkId) -> u32 {
        self.links[link.0 as usize].state.streams
    }

    /// Current turbulence level of `link`, decayed to `now` (diagnostic).
    pub fn link_turbulence(&self, link: LinkId) -> f64 {
        let ls = &self.links[link.0 as usize].state;
        self.model
            .decay_turbulence(ls.turbulence, self.now.since(ls.updated_at))
    }

    /// Total bytes delivered by completed flows.
    pub fn total_bytes_completed(&self) -> f64 {
        self.total_bytes_completed
    }

    /// Total flows completed.
    pub fn total_flows_completed(&self) -> u64 {
        self.total_flows_completed
    }

    /// Bytes remaining for the flow in slot `si`, integrated lazily to
    /// `now` from the slot's `(remaining, rate, rate_since)` anchor.
    fn remaining_at(&self, si: usize, now: SimTime) -> f64 {
        let h = &self.flows.hot[si];
        let dt = now.since(h.rate_since).as_secs_f64();
        (h.remaining - h.rate * dt).max(0.0)
    }

    /// Begin a transfer at time `now` (which must not precede the engine's
    /// clock). The flow first spends the model's connection-setup time in
    /// [`Phase::Connecting`], then joins the bandwidth-sharing set.
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        self.start_flow_with_setup(now, spec, SimDuration::ZERO)
    }

    /// [`Self::start_flow`] with `extra` added to the connection-setup
    /// delay. Storage endpoint stages (object-store request round-trips,
    /// multipart handshakes) model their fixed per-transfer overhead here
    /// without perturbing the bandwidth-sharing phase; `extra == ZERO` is
    /// byte-identical to `start_flow`.
    pub fn start_flow_with_setup(
        &mut self,
        now: SimTime,
        spec: FlowSpec,
        extra: SimDuration,
    ) -> FlowId {
        self.advance(now);
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        // One reusable route buffer: the cold row stores the route inline,
        // so steady-state flow turnover allocates nothing. Routes and RTTs
        // come from the dense tables, not the topology's record rows.
        let mut route = std::mem::take(&mut self.route_scratch);
        route.clear();
        if self.simple_routes {
            route.push(LinkId(self.host_access[spec.src.0 as usize]));
            if spec.src != spec.dst {
                route.push(LinkId(self.host_access[spec.dst.0 as usize]));
            }
        } else {
            self.topology.route_into(spec.src, spec.dst, &mut route);
        }
        let rtt = route.iter().fold(SimDuration::ZERO, |acc, l| {
            acc + self.link_rtt[l.0 as usize]
        });
        let setup = self.model.setup_time(spec.streams.max(1), rtt);
        let weight_factor = self.rng.jitter(self.model.flow_weight_jitter);
        let slot = self
            .flows
            .insert(id, FlowCold::new(spec, &route, rtt, now, weight_factor));
        self.route_scratch = route;
        let h = self
            .sched
            .schedule_at(now + setup + extra, NetEvent::Connect(slot));
        // The ETA word is unused while connecting; parking the Connect
        // handle there lets a host-crash kill cancel the pending event.
        self.flows.hot[slot as usize].set_eta(Some(h));
        id
    }

    /// Drain the records of flows that finished since the last call.
    pub fn take_completed(&mut self) -> Vec<TransferRecord> {
        std::mem::take(&mut self.completed)
    }

    /// Like [`Self::take_completed`], but appends into a caller-owned
    /// buffer, preserving both sides' capacity — the allocation-free
    /// variant for drivers that drain every step.
    pub fn drain_completed_into(&mut self, out: &mut Vec<TransferRecord>) {
        out.append(&mut self.completed);
    }

    /// Tear down every live flow with an endpoint at `host` — the network
    /// half of a host crash. Severed flows emit no [`TransferRecord`]; the
    /// returned [`KilledFlow`]s tell the driver what was in flight so it can
    /// re-plan. Connection slots, link memberships, and pending events are
    /// released exactly as on completion, and flows that drain at precisely
    /// `now` complete normally before the kill is applied. Draws no
    /// randomness and schedules nothing: a run that never calls this is
    /// byte-identical to one on an engine without the method.
    pub fn kill_flows_touching(&mut self, now: SimTime, host: crate::HostId) -> Vec<KilledFlow> {
        self.advance(now);
        let victims: Vec<(FlowId, u32)> = self
            .flows
            .iter()
            .filter(|&(_, slot)| {
                let spec = &self.flows.cold[slot as usize].spec;
                spec.src == host || spec.dst == host
            })
            .collect();
        let mut killed = Vec::with_capacity(victims.len());
        for (id, slot) in victims {
            let si = slot as usize;
            let (src, dst, bytes, streams, tag) = {
                let cold = &self.flows.cold[si];
                (
                    cold.spec.src,
                    cold.spec.dst,
                    cold.spec.bytes,
                    cold.streams(),
                    cold.spec.tag,
                )
            };
            let bytes_remaining = match self.flows.hot[si].phase {
                Phase::Connecting => {
                    // The ETA word holds the pending Connect event.
                    if let Some(h) = self.flows.hot[si].take_eta() {
                        self.sched.cancel(h);
                    }
                    bytes
                }
                Phase::Queued => {
                    self.queued.remove(&id);
                    bytes
                }
                Phase::Active => {
                    let rem = self.remaining_at(si, now);
                    if let Some(h) = self.flows.hot[si].take_eta() {
                        self.sched.cancel(h);
                    }
                    self.occupy_slots(src, dst, -1);
                    self.active_count -= 1;
                    self.ramping.remove(&id);
                    let nlinks = self.flows.cold[si].link_count();
                    for k in 0..nlinks {
                        let ix = self.flows.cold[si].link_at(k);
                        let lh = &mut self.links[ix];
                        lh.state
                            .membership_change(&self.model, now, -(streams as i64), lh.knee);
                        self.note_turbulence(ix);
                        let pos = {
                            let hot = &self.flows.hot;
                            self.links[ix]
                                .flows()
                                .binary_search_by_key(&id, |&s| hot[s as usize].id)
                        };
                        if let Ok(p) = pos {
                            self.links[ix].remove_flow_at(p);
                        }
                        self.mark_link_dirty(ix);
                    }
                    rem
                }
                Phase::Vacant => continue,
            };
            if let Some(o) = &mut self.obs {
                o.flow_parents.remove(&id);
            }
            self.flows.remove(id);
            killed.push(KilledFlow {
                flow: id,
                tag,
                src,
                dst,
                bytes_remaining,
            });
        }
        if !killed.is_empty() {
            self.recompute_or_skip();
        }
        killed
    }

    /// Earliest instant at which the network's state changes discontinuously:
    /// a connection opens, a flow drains at current rates, or a refresh is
    /// due because something is ramping or turbulent. `None` when idle.
    ///
    /// O(pending-turbulent-links), not O(flows): connect/complete instants
    /// come from the event queue's peek, ramp refreshes from the `ramping`
    /// set's emptiness, turbulence refreshes from the turbulent-link list.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        // Wakeups must be strictly in the future: a completion ETA that
        // rounds down to `now` would otherwise make drivers spin forever.
        let floor = self.now + SimDuration::from_micros(1);
        let mut bump = |t: SimTime| {
            let t = t.max(floor);
            earliest = Some(match earliest {
                Some(e) if e <= t => e,
                _ => t,
            });
        };

        if let Some(t) = self.sched.peek_time() {
            bump(t);
        }
        let mut needs_refresh = !self.ramping.is_empty();
        if !needs_refresh && !self.flows.is_empty() {
            // Turbulent links also change effective rates over time.
            needs_refresh = self.turb_links.iter().any(|&ix| {
                let ls = &self.links[ix].state;
                ls.streams > 0
                    && self
                        .model
                        .decay_turbulence(ls.turbulence, self.now.since(ls.updated_at))
                        > 0.02
            });
        }
        if needs_refresh {
            bump(self.now + self.model.refresh_interval);
        }
        // Fault boundaries change effective capacities discontinuously. A
        // flow stalled on a downed link has rate 0 and therefore no ETA, so
        // the fault-clear boundary is the only wakeup that lets it progress.
        if !self.flows.is_empty() {
            if let Some(b) = self.faults.next_boundary_after(self.now) {
                bump(b);
            }
        }
        earliest
    }

    /// Advance the engine to `to`, handling activations and completions at
    /// their exact instants, and leave rates freshly computed.
    ///
    /// # Panics
    /// Panics if `to` precedes the engine clock.
    pub fn advance(&mut self, to: SimTime) {
        assert!(to >= self.now, "network clock cannot move backwards");
        while self.now < to {
            // Next discontinuity within (now, to]: the earliest pending
            // event or fault boundary. Byte progress needs no integration
            // stop — it is evaluated lazily per flow.
            let mut seg_end = to;
            if let Some(t) = self.sched.peek_time() {
                if t > self.now && t < seg_end {
                    seg_end = t;
                }
            }
            if let Some(b) = self.faults.next_boundary_after(self.now) {
                if b < seg_end {
                    seg_end = b;
                }
            }
            self.now = seg_end;

            let mut connects = std::mem::take(&mut self.connect_scratch);
            let mut completes = std::mem::take(&mut self.complete_scratch);
            let mut drained = std::mem::take(&mut self.drain_scratch);
            connects.clear();
            completes.clear();
            drained.clear();
            // One batched peel per segment: every event due at `now` comes
            // off the queue in a single pass (the ladder serves this from
            // its sorted current bucket's tail) before any application.
            self.sched.drain_until(self.now, &mut drained);
            for &(_, ev) in &drained {
                match ev {
                    NetEvent::Connect(slot) => {
                        let row = &mut self.flows.hot[slot as usize];
                        row.set_eta(None);
                        connects.push((row.id, slot));
                    }
                    NetEvent::Complete(slot) => {
                        let row = &mut self.flows.hot[slot as usize];
                        row.set_eta(None);
                        completes.push((row.id, slot));
                    }
                }
            }
            self.drain_scratch = drained;
            self.activate_due(&mut connects);
            self.collect_done(&mut completes);
            // Completions free connection slots: promote queued flows now.
            connects.clear();
            self.activate_due(&mut connects);
            self.connect_scratch = connects;
            self.complete_scratch = completes;
            self.recompute_or_skip();
        }
        // `to` may equal `now` on entry (pure rate refresh): still recompute
        // so callers starting flows see current conditions.
        if self.active_count > 0 {
            self.recompute_or_skip();
        }
        if let Some(o) = &self.obs {
            o.queue.refresh(self.sched.health());
        }
    }

    /// Recompute rates unless it is provably a no-op (counted as a skip).
    fn recompute_or_skip(&mut self) {
        if self.recompute_is_noop() {
            self.stats.skipped += 1;
        } else {
            self.recompute_rates();
        }
    }

    /// True when an immediate incremental recompute would provably leave
    /// every rate, capacity, and timeline untouched: no dirty links, no
    /// ramping flows (rising caps), no turbulent links (decaying factors),
    /// no fault plan (discontinuous capacities), and no watched timelines
    /// to sample. Full-recompute mode never short-circuits — it is the
    /// pre-change baseline and must keep the old engine's cost profile.
    fn recompute_is_noop(&self) -> bool {
        !self.full_recompute
            && self.dirty_links.is_empty()
            && self.ramping.is_empty()
            && self.turb_links.is_empty()
            && self.faults.events().is_empty()
            && self.timelines.is_empty()
    }

    /// Activate setup-complete flows (or queue them when an endpoint's
    /// transfer server is at its connection limit), and promote queued
    /// flows into freed slots in FIFO (= id) order. `fresh` carries the
    /// flows whose Connect event fired this step.
    fn activate_due(&mut self, candidates: &mut Vec<(FlowId, u32)>) {
        let now = self.now;
        candidates.extend(self.queued.iter().map(|(&id, &s)| (id, s)));
        if candidates.is_empty() {
            return;
        }
        candidates.sort_unstable_by_key(|&(id, _)| id);
        let mut joins = std::mem::take(&mut self.join_scratch);
        joins.clear();
        for &(id, slot) in candidates.iter() {
            let si = slot as usize;
            let (src, dst) = {
                let spec = &self.flows.cold[si].spec;
                (spec.src, spec.dst)
            };
            if self.slots_available(src, dst) {
                self.occupy_slots(src, dst, 1);
                self.queued.remove(&id);
                let bytes = self.flows.cold[si].spec.bytes.max(0.0);
                let row = &mut self.flows.hot[si];
                row.phase = Phase::Active;
                row.activated_at = now;
                row.rate_since = now;
                row.remaining = bytes;
                row.rate = 0.0;
                row.cap_bound = false;
                if bytes <= BYTE_EPS {
                    // Nothing to move: complete in this same step, without
                    // waiting for a rate or an ETA event.
                    self.done_now.push(slot);
                }
                joins.push((slot, self.flows.cold[si].streams() as i64));
            } else {
                self.flows.hot[si].phase = Phase::Queued;
                self.queued.insert(id, slot);
            }
        }
        for &(slot, streams) in joins.iter() {
            let si = slot as usize;
            let id = self.flows.hot[si].id;
            let nlinks = self.flows.cold[si].link_count();
            for k in 0..nlinks {
                let ix = self.flows.cold[si].link_at(k);
                let lh = &mut self.links[ix];
                lh.state
                    .membership_change(&self.model, now, streams, lh.knee);
                self.note_turbulence(ix);
                let pos = {
                    let hot = &self.flows.hot;
                    self.links[ix]
                        .flows()
                        .binary_search_by_key(&id, |&s| hot[s as usize].id)
                };
                if let Err(p) = pos {
                    self.links[ix].insert_flow_at(p, slot);
                }
                self.mark_link_dirty(ix);
            }
            self.active_count += 1;
            if !self.model.ramp_done(SimDuration::ZERO) {
                self.ramping.insert(id, slot);
            }
        }
        self.join_scratch = joins;
    }

    /// Record that a link's membership or capacity changed since the last
    /// recompute.
    fn mark_link_dirty(&mut self, ix: usize) {
        let lh = &mut self.links[ix];
        if !lh.dirty {
            lh.dirty = true;
            self.dirty_links.push(ix);
        }
    }

    /// Enlist `ix` in the turbulent-link list if its stored turbulence is
    /// positive (call after any `membership_change`).
    fn note_turbulence(&mut self, ix: usize) {
        let lh = &mut self.links[ix];
        if lh.state.turbulence > 0.0 && !lh.turb {
            lh.turb = true;
            self.turb_links.push(ix);
        }
    }

    /// Retire drained flows, record them, release their streams. `fired`
    /// carries the flows whose Complete event popped this step; zero-byte
    /// activations arrive via `done_now`.
    fn collect_done(&mut self, fired: &mut Vec<(FlowId, u32)>) {
        if !self.done_now.is_empty() {
            let drained = std::mem::take(&mut self.done_now);
            for slot in drained {
                fired.push((self.flows.hot[slot as usize].id, slot));
            }
        }
        if fired.is_empty() {
            return;
        }
        fired.sort_unstable_by_key(|&(id, _)| id);
        let now = self.now;
        for &(id, slot) in fired.iter() {
            let si = slot as usize;
            if self.flows.hot[si].phase != Phase::Active || self.flows.hot[si].id != id {
                debug_assert!(false, "completion event for a non-active slot");
                continue;
            }
            let rem = self.remaining_at(si, now);
            if rem > BYTE_EPS {
                // The microsecond-rounded ETA fired a hair early; push the
                // event forward and drain the last bytes next step.
                let rate = self.flows.hot[si].rate;
                debug_assert!(rate > 0.0, "early ETA with zero rate");
                let eta = (now + SimDuration::from_secs_f64(rem / rate))
                    .max(now + SimDuration::from_micros(1));
                let h = self.sched.schedule_at(eta, NetEvent::Complete(slot));
                self.flows.hot[si].set_eta(Some(h));
                continue;
            }
            if let Some(h) = self.flows.hot[si].take_eta() {
                // Zero-byte completions may still carry a pending ETA.
                self.sched.cancel(h);
            }
            let (src, dst, bytes, streams, tag, requested_at) = {
                let cold = &self.flows.cold[si];
                (
                    cold.spec.src,
                    cold.spec.dst,
                    cold.spec.bytes,
                    cold.streams(),
                    cold.spec.tag,
                    cold.requested_at,
                )
            };
            let activated_at = self.flows.hot[si].activated_at;
            self.occupy_slots(src, dst, -1);
            self.active_count -= 1;
            self.ramping.remove(&id);
            let nlinks = self.flows.cold[si].link_count();
            for k in 0..nlinks {
                let ix = self.flows.cold[si].link_at(k);
                let lh = &mut self.links[ix];
                lh.state
                    .membership_change(&self.model, now, -(streams as i64), lh.knee);
                self.note_turbulence(ix);
                let pos = {
                    let hot = &self.flows.hot;
                    self.links[ix]
                        .flows()
                        .binary_search_by_key(&id, |&s| hot[s as usize].id)
                };
                if let Ok(p) = pos {
                    self.links[ix].remove_flow_at(p);
                }
                self.mark_link_dirty(ix);
            }
            self.total_bytes_completed += bytes;
            self.total_flows_completed += 1;
            if let Some(o) = &mut self.obs {
                let parent = o.flow_parents.remove(&id);
                let src_name = self.topology.host(src).name.clone();
                let dst_name = self.topology.host(dst).name.clone();
                o.obs.tracer.complete_span(
                    format!("flow {src_name}->{dst_name}"),
                    "net",
                    parent,
                    activated_at,
                    now,
                    &[
                        ("bytes", format!("{bytes:.0}")),
                        ("streams", streams.to_string()),
                        ("tag", tag.to_string()),
                    ],
                );
            }
            self.completed.push(TransferRecord {
                flow: id,
                tag,
                src,
                dst,
                bytes,
                streams,
                requested_at,
                activated_at,
                completed_at: now,
            });
            self.flows.remove(id);
        }
    }

    /// Settle turbulence and refresh the effective capacity of one link,
    /// marking it dirty when the capacity moved.
    fn refresh_capacity(&mut self, ix: usize, now: SimTime, have_faults: bool) {
        let fault_factor = if have_faults {
            self.fault_capacity_factor(LinkId(ix as u32), now)
        } else {
            1.0
        };
        let lh = &mut self.links[ix];
        lh.state.settle(&self.model, now);
        let factor =
            self.model
                .capacity_factor(lh.state.streams as f64, lh.knee, lh.state.turbulence);
        let cap = lh.base_capacity * factor * fault_factor;
        if cap != lh.capacity {
            lh.capacity = cap;
            self.mark_link_dirty(ix);
        }
    }

    /// Drop settled-out links from the turbulent list (stored turbulence
    /// must be fresh, i.e. the list's links were just settled).
    fn prune_turbulent(&mut self) {
        let mut i = 0;
        while i < self.turb_links.len() {
            let ix = self.turb_links[i];
            if self.links[ix].state.turbulence == 0.0 {
                self.links[ix].turb = false;
                self.turb_links.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Write an allocated rate back to a flow: on a genuine change (beyond
    /// [`RATE_EPS`] relative), re-anchor the lazy integrator at `now` and
    /// reschedule the completion-ETA event; otherwise leave both the rate
    /// and the pending event untouched. Always refreshes the cap-bound
    /// flag used to gate ramp recomputes.
    fn apply_rate(&mut self, slot: u32, now: SimTime, new_rate: f64, cap: f64) {
        let si = slot as usize;
        let old = self.flows.hot[si].rate;
        if (new_rate - old).abs() > RATE_EPS * old.abs().max(1.0) {
            let rem = self.remaining_at(si, now);
            let row = &mut self.flows.hot[si];
            row.remaining = rem;
            row.rate_since = now;
            row.rate = new_rate;
            if new_rate > 0.0 {
                let eta = now + SimDuration::from_secs_f64(rem / new_rate);
                // Re-key the pending completion in place when one exists;
                // a fresh event is only needed after a zero-rate stall.
                match row.eta() {
                    Some(h) if self.sched.reschedule(h, eta) => {}
                    _ => {
                        let h = self.sched.schedule_at(eta, NetEvent::Complete(slot));
                        self.flows.hot[si].set_eta(Some(h));
                    }
                }
            } else if let Some(h) = row.take_eta() {
                self.sched.cancel(h);
            }
        } else {
            self.stats.unchanged_writes += 1;
        }
        self.flows.hot[si].cap_bound = new_rate >= cap * (1.0 - CAP_BOUND_SLACK);
    }

    /// Weighted max-min over effective link capacities, incremental and
    /// allocation-local.
    ///
    /// The recompute decomposes into:
    /// 1. a capacity refresh over only the links whose effective capacity
    ///    can have moved: dirty links (membership changed) and turbulent
    ///    links (decay changes the factor). Links that are neither have
    ///    zero turbulence and unchanged occupancy, so their capacity is
    ///    provably unchanged. When a fault plan is installed every link is
    ///    scanned instead, keeping fault-boundary arithmetic exact;
    /// 2. promotion of slow-start flows — but only when a flow's rising
    ///    cap is actually *binding* (`cap_bound`). A link-limited ramping
    ///    flow's cap is monotonically rising yet non-binding, so the
    ///    previous max-min solution is still exact and nothing needs to be
    ///    marked — not even when the ramp finishes;
    /// 3. if nothing is dirty, the previous allocation is provably still
    ///    the max-min solution and the whole recompute is skipped;
    /// 4. otherwise a BFS over the flow↔link bipartite index collects the
    ///    connected component(s) reachable from dirty links, and progressive
    ///    filling re-runs over exactly those flows and links — flows in
    ///    untouched components keep their rates (max-min allocations of
    ///    disjoint components are independent).
    ///
    /// Rates that move by less than [`RATE_EPS`] (relative) keep their old
    /// value *and their pending ETA event*, so numerically-unchanged
    /// allocations cannot cascade queue churn.
    fn recompute_rates(&mut self) {
        if self.full_recompute {
            self.recompute_rates_full();
            return;
        }
        let now = self.now;
        self.stats.recomputes += 1;

        // 1. Refresh effective capacities where they can have moved.
        let have_faults = !self.faults.events().is_empty();
        if have_faults {
            for ix in 0..self.links.len() {
                self.refresh_capacity(ix, now, true);
            }
        } else {
            // `refresh_capacity` may grow `dirty_links`; bound the loop by
            // the count of pre-existing dirt.
            let n_dirty = self.dirty_links.len();
            for i in 0..n_dirty {
                let ix = self.dirty_links[i];
                self.refresh_capacity(ix, now, false);
            }
            for i in 0..self.turb_links.len() {
                let ix = self.turb_links[i];
                self.refresh_capacity(ix, now, false);
            }
        }
        self.prune_turbulent();

        // 2. Ramping flows: caps rise with age, but only a binding cap can
        //    change the allocation — and a cap that was not binding cannot
        //    start binding by rising further, so even the ramp-done settle
        //    is skipped for link-limited flows (their last max-min solution
        //    is still exact). Finished ramps just retire from the set.
        let mut scratch = std::mem::take(&mut self.ramp_scratch);
        scratch.clear();
        scratch.extend(self.ramping.iter().map(|(&id, &s)| (id, s)));
        for &(id, slot) in &scratch {
            let si = slot as usize;
            debug_assert_eq!(self.flows.hot[si].phase, Phase::Active);
            if self
                .model
                .ramp_done(now.since(self.flows.hot[si].activated_at))
            {
                self.ramping.remove(&id);
            }
            if self.flows.hot[si].cap_bound {
                let nlinks = self.flows.cold[si].link_count();
                for k in 0..nlinks {
                    let ix = self.flows.cold[si].link_at(k);
                    self.mark_link_dirty(ix);
                }
            }
        }
        self.ramp_scratch = scratch;

        // 3. Nothing dirty → the previous allocation still stands.
        if self.dirty_links.is_empty() {
            self.stats.skipped += 1;
            self.record_timelines();
            return;
        }

        // 4. Collect the connected component(s) around the dirty links.
        self.comp_flows.clear();
        self.comp_links.clear();
        self.bfs_stack.clear();
        for i in 0..self.dirty_links.len() {
            let seed = self.dirty_links[i];
            if !self.links[seed].seen {
                self.links[seed].seen = true;
                self.bfs_stack.push(seed);
            }
        }
        while let Some(ix) = self.bfs_stack.pop() {
            self.comp_links.push(ix);
            for m in 0..self.links[ix].flow_count() {
                let slot = self.links[ix].flow_at(m);
                let si = slot as usize;
                if !self.flows.hot[si].seen {
                    self.flows.hot[si].seen = true;
                    self.comp_flows.push(slot);
                    let nlinks = self.flows.cold[si].link_count();
                    for k in 0..nlinks {
                        let other = self.flows.cold[si].link_at(k);
                        if !self.links[other].seen {
                            self.links[other].seen = true;
                            self.bfs_stack.push(other);
                        }
                    }
                }
            }
        }
        // Deterministic iteration orders: flows ascending by id (matching
        // the order the full pass uses), links ascending by index.
        {
            let hot = &self.flows.hot;
            self.comp_flows
                .sort_unstable_by_key(|&s| hot[s as usize].id);
        }
        self.comp_links.sort_unstable();
        for i in 0..self.comp_links.len() {
            self.links[self.comp_links[i]].seen = false;
        }
        for i in 0..self.comp_flows.len() {
            self.flows.hot[self.comp_flows[i] as usize].seen = false;
        }

        // 5. Progressive filling over the component only.
        if self.comp_flows.len() == 1 {
            // Single-flow component: by construction every link in the
            // component carries only this flow (a second tenant would have
            // been pulled in by the BFS), so max-min fairness degenerates
            // to `min(flow cap, min link capacity)` — no allocator round.
            // Over half the recomputes in a completion-driven workload are
            // this shape (a cluster draining to its last flow).
            self.stats.component_runs += 1;
            self.stats.flows_allocated += 1;
            self.stats.links_allocated += self.comp_links.len() as u64;
            let slot = self.comp_flows[0];
            let si = slot as usize;
            debug_assert_eq!(self.flows.hot[si].phase, Phase::Active);
            let age = now.since(self.flows.hot[si].activated_at);
            let cold = &self.flows.cold[si];
            let cap = self.model.flow_cap(cold.streams(), age, cold.route_rtt);
            let links = &self.links;
            let rate = RateAllocator::single_flow_rate(
                self.flows.hot[si].weight,
                cap,
                cold.links().iter().map(|&l| links[l as usize].capacity),
            );
            self.apply_rate(slot, now, rate, cap);
            // Same write-back shape as the allocator path: the component
            // can contain dirty links with no flows at all (they zero),
            // not just the flow's own route (which carries the rate).
            let effective = self.flows.hot[si].rate;
            for i in 0..self.comp_links.len() {
                self.links[self.comp_links[i]].throughput = 0.0;
            }
            for k in 0..self.flows.cold[si].link_count() {
                let ix = self.flows.cold[si].link_at(k);
                self.links[ix].throughput += effective;
            }
        } else if !self.comp_flows.is_empty() {
            self.stats.component_runs += 1;
            self.stats.flows_allocated += self.comp_flows.len() as u64;
            self.stats.links_allocated += self.comp_links.len() as u64;
            let mut alloc = std::mem::take(&mut self.alloc);
            let mut caps = std::mem::take(&mut self.comp_caps);
            alloc.begin(self.links.len());
            caps.clear();
            for i in 0..self.comp_flows.len() {
                let si = self.comp_flows[i] as usize;
                debug_assert_eq!(self.flows.hot[si].phase, Phase::Active);
                let age = now.since(self.flows.hot[si].activated_at);
                let cold = &self.flows.cold[si];
                let cap = self.model.flow_cap(cold.streams(), age, cold.route_rtt);
                alloc.push_flow(self.flows.hot[si].weight, cap, cold.links());
                caps.push(cap);
            }
            let links = &self.links;
            let rates = alloc.allocate(|l| links[l].capacity);

            // 6. Write rates back and rebuild the component's running
            //    throughput totals (links outside the component are exact
            //    already — nothing on them changed).
            for i in 0..self.comp_links.len() {
                self.links[self.comp_links[i]].throughput = 0.0;
            }
            for i in 0..self.comp_flows.len() {
                let slot = self.comp_flows[i];
                self.apply_rate(slot, now, rates[i], caps[i]);
                let si = slot as usize;
                let effective = self.flows.hot[si].rate;
                let nlinks = self.flows.cold[si].link_count();
                for k in 0..nlinks {
                    let ix = self.flows.cold[si].link_at(k);
                    self.links[ix].throughput += effective;
                }
            }
            self.comp_caps = caps;
            self.alloc = alloc;
        } else {
            // Dirty links with no remaining flows (e.g. the last flow on a
            // cluster finished): their allocation drops to zero.
            for i in 0..self.comp_links.len() {
                self.links[self.comp_links[i]].throughput = 0.0;
            }
        }

        // 7. Refresh gauges for the touched links only.
        if let Some(o) = &self.obs {
            for &ix in &self.comp_links {
                let (streams_gauge, throughput_gauge) = &o.link_gauges[ix];
                streams_gauge.set(f64::from(self.links[ix].state.streams));
                throughput_gauge.set(self.links[ix].throughput);
            }
        }

        // 8. Consume the dirty set.
        for i in 0..self.dirty_links.len() {
            let ix = self.dirty_links[i];
            self.links[ix].dirty = false;
        }
        self.dirty_links.clear();
        self.record_timelines();
    }

    /// Feed watched timelines from the running per-link totals (O(watched),
    /// with turbulence decayed to `now` non-mutatingly — unwatched state is
    /// never touched).
    fn record_timelines(&mut self) {
        if self.timelines.is_empty() || self.active_count == 0 {
            return;
        }
        let now = self.now;
        for (link, timeline) in self.timelines.iter_mut() {
            let lh = &self.links[link.0 as usize];
            timeline.record(UtilizationSample {
                at: now,
                streams: lh.state.streams,
                turbulence: self
                    .model
                    .decay_turbulence(lh.state.turbulence, now.since(lh.state.updated_at)),
                throughput: lh.throughput,
            });
        }
    }

    /// Write-back for the full path: rates land unconditionally, but the
    /// ETA event and lazy-integration anchor are only disturbed when the
    /// rate's bits actually changed.
    fn write_rate_full(&mut self, slot: u32, now: SimTime, new_rate: f64) {
        let si = slot as usize;
        if new_rate != self.flows.hot[si].rate {
            let rem = self.remaining_at(si, now);
            let row = &mut self.flows.hot[si];
            row.remaining = rem;
            row.rate_since = now;
            row.rate = new_rate;
            if new_rate > 0.0 {
                let eta = now + SimDuration::from_secs_f64(rem / new_rate);
                // Re-key the pending completion in place when one exists;
                // a fresh event is only needed after a zero-rate stall.
                match row.eta() {
                    Some(h) if self.sched.reschedule(h, eta) => {}
                    _ => {
                        let h = self.sched.schedule_at(eta, NetEvent::Complete(slot));
                        self.flows.hot[si].set_eta(Some(h));
                    }
                }
            } else if let Some(h) = row.take_eta() {
                self.sched.cancel(h);
            }
        }
    }

    /// The full recompute: every flow, every link, fresh buffers on each
    /// call. Kept as the benchmark baseline (`netbench --full`) and the
    /// reference side of the equivalence tests.
    fn recompute_rates_full(&mut self) {
        let now = self.now;
        self.stats.recomputes += 1;
        // Fault multipliers first: the state loop below borrows the link
        // rows mutably, and faults depend only on the plan and the clock.
        let fault_factors: Vec<f64> = (0..self.links.len())
            .map(|idx| self.fault_capacity_factor(LinkId(idx as u32), now))
            .collect();
        // Effective capacity per link under current occupancy/turbulence.
        let mut capacities = Vec::with_capacity(self.links.len());
        let model = &self.model;
        for (idx, lh) in self.links.iter_mut().enumerate() {
            lh.state.settle(model, now);
            let factor =
                model.capacity_factor(lh.state.streams as f64, lh.knee, lh.state.turbulence);
            capacities.push(lh.base_capacity * factor * fault_factors[idx]);
        }
        self.prune_turbulent();

        // Full pass consumes all accumulated dirt.
        for i in 0..self.dirty_links.len() {
            let ix = self.dirty_links[i];
            self.links[ix].dirty = false;
        }
        self.dirty_links.clear();

        // Retire finished ramps so `next_wakeup`'s refresh signal converges
        // in full mode too.
        let mut scratch = std::mem::take(&mut self.ramp_scratch);
        scratch.clear();
        scratch.extend(self.ramping.iter().map(|(&id, &s)| (id, s)));
        for &(id, slot) in &scratch {
            if self
                .model
                .ramp_done(now.since(self.flows.hot[slot as usize].activated_at))
            {
                self.ramping.remove(&id);
            }
        }
        self.ramp_scratch = scratch;

        let mut slots: Vec<u32> = Vec::new();
        let mut demands = Vec::new();
        for (_, slot) in self.flows.iter() {
            let si = slot as usize;
            if self.flows.hot[si].phase == Phase::Active {
                let cold = &self.flows.cold[si];
                let rtt = self.topology.route_rtt(cold.spec.src, cold.spec.dst);
                let age = now.since(self.flows.hot[si].activated_at);
                slots.push(slot);
                demands.push(FlowDemand {
                    weight: self.flows.hot[si].weight,
                    cap: self.model.flow_cap(cold.streams(), age, rtt),
                    links: cold.links().iter().map(|&l| l as usize).collect(),
                });
            }
        }
        if slots.is_empty() {
            return;
        }
        self.stats.component_runs += 1;
        self.stats.flows_allocated += slots.len() as u64;
        self.stats.links_allocated += capacities.len() as u64;
        let rates = max_min_rates(&capacities, &demands);
        for (i, &slot) in slots.iter().enumerate() {
            self.write_rate_full(slot, now, rates[i]);
        }
        // Keep the running totals coherent in full mode too, so timelines
        // and gauges read from one source of truth.
        for lh in self.links.iter_mut() {
            lh.throughput = 0.0;
        }
        for (d, r) in demands.iter().zip(rates.iter()) {
            for &ix in &d.links {
                self.links[ix].throughput += *r;
            }
        }
        // Refresh per-link gauges with the fresh allocation.
        if let Some(o) = &self.obs {
            for (ix, (streams_gauge, throughput_gauge)) in o.link_gauges.iter().enumerate() {
                streams_gauge.set(f64::from(self.links[ix].state.streams));
                throughput_gauge.set(self.links[ix].throughput);
            }
        }
        // Feed watched timelines with the fresh rates.
        self.record_timelines();
    }

    /// Run the network by itself until all flows complete or `horizon` is
    /// reached. Convenience for tests and standalone benchmarks; the workflow
    /// executor drives the network manually instead.
    pub fn run_to_completion(&mut self, horizon: SimTime) {
        while self.live_flow_count() > 0 {
            match self.next_wakeup() {
                Some(t) if t <= horizon => self.advance(t),
                _ => break,
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are tweaked per-test
mod tests {
    use super::*;
    use crate::topology::paper_testbed;

    fn lan_pair() -> (Network, crate::HostId, crate::HostId) {
        let mut t = Topology::new();
        let a = t.add_host("a", 100.0e6);
        let b = t.add_host("b", 100.0e6);
        let mut model = StreamModel::default();
        // Simplify physics for unit-level assertions.
        model.setup_base = SimDuration::ZERO;
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        (Network::new(t, model), a, b)
    }

    fn spec(src: crate::HostId, dst: crate::HostId, bytes: f64, streams: u32) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            bytes,
            streams,
            tag: 0,
        }
    }

    #[test]
    fn obs_emits_flow_spans_fault_instants_and_link_gauges() {
        let (mut net, a, b) = lan_pair();
        let obs = pwm_obs::Obs::new();
        net.set_obs(obs.clone());
        net.inject_link_fault(
            SimTime::from_secs(50),
            SimDuration::from_secs(5),
            LinkFault {
                link: LinkId(0),
                kind: LinkFaultKind::Down,
            },
        );
        let id = net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6, 2));
        let parent = obs
            .tracer
            .start_span("transfer", "workflow", None, SimTime::ZERO);
        net.set_flow_span_parent(id, parent);
        net.run_to_completion(SimTime::from_secs(100));
        obs.tracer.end_span(parent, net.now());

        let events = obs.tracer.events();
        let span = events
            .iter()
            .find(|e| e.name == "flow a->b")
            .expect("flow span");
        assert!(span.dur.is_some());
        assert_eq!(span.parent, Some(parent.0));
        assert!(events.iter().any(|e| e.name == "link_fault_start"));
        assert!(events.iter().any(|e| e.name == "link_fault_end"));
        let text = obs.registry.render_prometheus();
        assert!(text.contains("pwm_net_link_streams"), "{text}");
        assert!(text.contains("pwm_net_link_throughput_bps"), "{text}");
    }

    #[test]
    fn single_flow_completes_in_expected_time() {
        let (mut net, a, b) = lan_pair();
        // 2 streams × 64 MB/s/stream (1ms floor) = 128 MB/s cap, but the
        // 100 MB/s NIC binds → 100 MB in 1s.
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6, 2));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 1);
        let dur = recs[0].transfer_duration().as_secs_f64();
        assert!((dur - 1.0).abs() < 0.02, "duration {dur}");
    }

    #[test]
    fn kill_severs_active_flows_and_frees_their_slots() {
        let (mut net, a, b) = lan_pair();
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6, 2));
        // Activate at the first wakeup (drivers always step via next_wakeup).
        net.advance(net.next_wakeup().unwrap());
        let killed = net.kill_flows_touching(SimTime::from_millis(500), a);
        assert_eq!(killed.len(), 1);
        // ~50 MB moved in 0.5 s at 100 MB/s; the rest was unmoved.
        assert!(
            (killed[0].bytes_remaining - 50.0e6).abs() < 2.0e6,
            "remaining {}",
            killed[0].bytes_remaining
        );
        assert!(net.take_completed().is_empty(), "no record for a kill");
        assert_eq!(net.live_flow_count(), 0);
        assert_eq!(net.host_connections(a), 0, "slots released");
        assert_eq!(net.host_connections(b), 0);
        // The engine keeps working: a fresh flow completes normally.
        net.start_flow(SimTime::from_secs(1), spec(a, b, 10.0e6, 2));
        net.run_to_completion(SimTime::from_secs(100));
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn kill_cancels_connecting_flows_pending_event() {
        let (net, a, b) = lan_pair();
        let mut model = net.model().clone();
        model.setup_base = SimDuration::from_secs(2);
        let topo = net.topology().clone();
        let mut net = Network::new(topo, model);
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6, 2));
        let killed = net.kill_flows_touching(SimTime::from_secs(1), b);
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].bytes_remaining, 100.0e6, "never activated");
        // Advancing past the cancelled Connect instant must not resurrect it.
        net.run_to_completion(SimTime::from_secs(100));
        assert!(net.take_completed().is_empty());
        assert_eq!(net.live_flow_count(), 0);
    }

    #[test]
    fn kill_removes_queued_flows_and_spares_other_hosts() {
        let mut t = Topology::new();
        let a = t.add_host("a", 100.0e6);
        let b = t.add_host("b", 100.0e6);
        let c = t.add_host("c", 100.0e6);
        t.set_host_connection_limit(b, 1);
        let mut model = StreamModel::default();
        model.setup_base = SimDuration::ZERO;
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        let mut net = Network::new(t, model);
        net.start_flow(SimTime::ZERO, spec(a, b, 50.0e6, 2));
        net.start_flow(SimTime::ZERO, spec(c, b, 50.0e6, 2));
        net.advance(SimTime::from_millis(1));
        // One flow holds b's single slot; the other is queued behind it.
        let killed = net.kill_flows_touching(SimTime::from_millis(1), c);
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].src, c);
        // An unrelated host kill is a no-op.
        assert!(net
            .kill_flows_touching(SimTime::from_millis(2), crate::HostId(99))
            .is_empty());
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 1, "survivor completes");
        assert_eq!(recs[0].src, a);
    }

    #[test]
    fn one_stream_flow_is_window_limited() {
        let (mut net, a, b) = lan_pair();
        // 1 stream at 1 ms floor → 65.5 MB/s cap < 100 MB/s NIC.
        net.start_flow(SimTime::ZERO, spec(a, b, 65.536e6, 1));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        let dur = recs[0].transfer_duration().as_secs_f64();
        assert!((dur - 1.0).abs() < 0.02, "duration {dur}");
    }

    #[test]
    fn two_flows_share_the_nic_fairly() {
        let (mut net, a, b) = lan_pair();
        net.start_flow(SimTime::ZERO, spec(a, b, 50.0e6, 4));
        net.start_flow(SimTime::ZERO, spec(a, b, 50.0e6, 4));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 2);
        // Equal weights: both finish together at ~1s (100 MB total / 100MB/s).
        for r in &recs {
            let dur = r.transfer_duration().as_secs_f64();
            assert!((dur - 1.0).abs() < 0.05, "duration {dur}");
        }
    }

    #[test]
    fn weighted_flows_finish_proportionally() {
        let (mut net, a, b) = lan_pair();
        // Same size, 3:1 stream weights on a 100 MB/s NIC pair.
        let fast = net.start_flow(SimTime::ZERO, spec(a, b, 60.0e6, 3));
        net.start_flow(SimTime::ZERO, spec(a, b, 60.0e6, 1));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        let fast_rec = recs.iter().find(|r| r.flow == fast).unwrap();
        let slow_rec = recs.iter().find(|r| r.flow != fast).unwrap();
        assert!(
            fast_rec.completed_at < slow_rec.completed_at,
            "3-stream flow should finish first"
        );
    }

    #[test]
    fn setup_time_delays_activation() {
        let (net, a, b) = lan_pair();
        let mut model = StreamModel::default();
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.setup_base = SimDuration::from_secs(1);
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        let topo = net.topology().clone();
        let mut net = Network::new(topo, model);
        net.start_flow(SimTime::ZERO, spec(a, b, 1.0e6, 2));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].activated_at >= SimTime::from_secs(1));
        assert!(recs[0].total_duration() > recs[0].transfer_duration());
    }

    #[test]
    fn wan_transfer_matches_paper_bandwidth() {
        let (topo, gridftp, _apache, nfs) = paper_testbed();
        let mut model = StreamModel::default();
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        let mut net = Network::new(topo, model);
        // 8 streams × 1.63 MB/s > 3.5 MB/s WAN → WAN-limited. 35 MB → ~10 s
        // (plus setup and ramp).
        net.start_flow(SimTime::ZERO, spec(gridftp, nfs, 35.0e6, 8));
        net.run_to_completion(SimTime::from_secs(1000));
        let recs = net.take_completed();
        let goodput = recs[0].goodput();
        assert!(
            goodput > 2.8e6 && goodput <= 3.6e6,
            "goodput {goodput} should approach the 3.5 MB/s WAN cap"
        );
    }

    #[test]
    fn peak_streams_tracked_per_link() {
        let (mut net, a, b) = lan_pair();
        net.start_flow(SimTime::ZERO, spec(a, b, 10.0e6, 4));
        net.start_flow(SimTime::ZERO, spec(a, b, 10.0e6, 6));
        let access = net.topology().host(a).access_link;
        net.run_to_completion(SimTime::from_secs(100));
        assert_eq!(net.peak_streams(access), 10);
        assert_eq!(net.current_streams(access), 0);
        assert_eq!(net.total_flows_completed(), 2);
        assert!((net.total_bytes_completed() - 20.0e6).abs() < 1.0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately_after_setup() {
        let (mut net, a, b) = lan_pair();
        net.start_flow(SimTime::ZERO, spec(a, b, 0.0, 1));
        net.run_to_completion(SimTime::from_secs(10));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn staggered_starts_preserve_causality() {
        let (mut net, a, b) = lan_pair();
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6, 2));
        net.start_flow(SimTime::from_secs(2), spec(a, b, 10.0e6, 2));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 2);
        for r in &recs {
            assert!(r.completed_at > r.requested_at);
            assert!(r.activated_at >= r.requested_at);
        }
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn advance_backwards_panics() {
        let (mut net, _a, _b) = lan_pair();
        net.advance(SimTime::from_secs(5));
        net.advance(SimTime::from_secs(1));
    }

    #[test]
    fn next_wakeup_idle_network_is_none() {
        let (net, _a, _b) = lan_pair();
        assert!(net.next_wakeup().is_none());
    }

    #[test]
    fn oversubscription_slows_aggregate_throughput() {
        // Same total bytes, same flow count; the run whose threshold admits
        // 200+ streams must take longer than the one capped near the knee.
        let run = |streams_per_flow: u32| -> f64 {
            let (topo, gridftp, _apache, nfs) = paper_testbed();
            let mut net = Network::new(topo, StreamModel::default());
            for i in 0..20 {
                net.start_flow(
                    SimTime::ZERO,
                    FlowSpec {
                        src: gridftp,
                        dst: nfs,
                        bytes: 30.0e6,
                        streams: streams_per_flow,
                        tag: i,
                    },
                );
            }
            net.run_to_completion(SimTime::from_secs(100_000));
            let recs = net.take_completed();
            assert_eq!(recs.len(), 20);
            recs.iter()
                .map(|r| r.completed_at.as_secs_f64())
                .fold(0.0, f64::max)
        };
        let healthy = run(3); // 60 total streams ≤ knee
        let thrashing = run(10); // 200 total streams
        assert!(
            thrashing > healthy * 1.1,
            "healthy {healthy}s vs thrashing {thrashing}s"
        );
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod fault_tests {
    use super::*;
    use crate::fault::{LinkFault, LinkFaultKind};

    /// Two hosts joined by their access links with clean physics, so fault
    /// arithmetic is exact.
    fn clean_pair() -> (Network, crate::HostId, crate::HostId) {
        let mut t = Topology::new();
        let a = t.add_host("a", 100.0e6);
        let b = t.add_host("b", 100.0e6);
        let mut model = StreamModel::default();
        model.setup_base = SimDuration::ZERO;
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        (Network::new(t, model), a, b)
    }

    fn spec(src: crate::HostId, dst: crate::HostId, bytes: f64) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            bytes,
            streams: 2,
            tag: 0,
        }
    }

    #[test]
    fn mid_transfer_outage_extends_completion_by_its_duration() {
        let (mut net, a, b) = clean_pair();
        let link = net.topology().host(a).access_link;
        // 100 MB over 100 MB/s finishes at 1s unfaulted. A 2s outage in the
        // middle of the transfer stalls it and shifts completion to ~3s.
        net.inject_link_fault(
            SimTime::from_millis(500),
            SimDuration::from_secs(2),
            LinkFault {
                link,
                kind: LinkFaultKind::Down,
            },
        );
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 1);
        let end = recs[0].completed_at.as_secs_f64();
        assert!(
            (end - 3.0).abs() < 0.02,
            "completed at {end}s, expected ~3s"
        );
    }

    #[test]
    fn degradation_slows_the_window_proportionally() {
        let (mut net, a, b) = clean_pair();
        let link = net.topology().host(a).access_link;
        // Half capacity for the whole transfer: 1s of work takes ~2s.
        net.inject_link_fault(
            SimTime::ZERO,
            SimDuration::from_secs(100),
            LinkFault {
                link,
                kind: LinkFaultKind::Degrade(0.5),
            },
        );
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        let end = recs[0].completed_at.as_secs_f64();
        assert!(
            (end - 2.0).abs() < 0.02,
            "completed at {end}s, expected ~2s"
        );
    }

    #[test]
    fn flap_sequence_is_deterministic_per_plan() {
        let run = || {
            let (mut net, a, b) = clean_pair();
            let link = net.topology().host(a).access_link;
            for i in 0..4u64 {
                net.inject_link_fault(
                    SimTime::from_millis(200 + 400 * i),
                    SimDuration::from_millis(150),
                    LinkFault {
                        link,
                        kind: LinkFaultKind::Down,
                    },
                );
            }
            net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6));
            net.run_to_completion(SimTime::from_secs(100));
            (
                net.fault_plan().describe(),
                net.take_completed()[0].completed_at,
            )
        };
        let (desc1, end1) = run();
        let (desc2, end2) = run();
        assert_eq!(desc1, desc2, "fault fingerprints must match");
        assert_eq!(end1, end2, "same plan must give bit-identical completion");
        // 4 flaps × 150 ms stall the 1s transfer by 600 ms.
        let end = end1.as_secs_f64();
        assert!(
            (end - 1.6).abs() < 0.02,
            "completed at {end}s, expected ~1.6s"
        );
    }

    #[test]
    fn faults_on_other_links_are_harmless() {
        // Fault a link the flow never crosses: a third host's access link.
        let mut t = Topology::new();
        let x = t.add_host("x", 100.0e6);
        let y = t.add_host("y", 100.0e6);
        let z = t.add_host("z", 100.0e6);
        let unused = t.host(z).access_link;
        let mut model = StreamModel::default();
        model.setup_base = SimDuration::ZERO;
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        let mut net = Network::new(t, model);
        net.inject_link_fault(
            SimTime::ZERO,
            SimDuration::from_secs(50),
            LinkFault {
                link: unused,
                kind: LinkFaultKind::Down,
            },
        );
        net.start_flow(SimTime::ZERO, spec(x, y, 100.0e6));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        let end = recs[0].completed_at.as_secs_f64();
        assert!(
            (end - 1.0).abs() < 0.02,
            "unrelated fault changed makespan: {end}s"
        );
    }

    #[test]
    fn in_flight_flows_reshare_when_capacity_drops() {
        let (mut net, a, b) = clean_pair();
        let link = net.topology().host(a).access_link;
        // Two equal flows share 100 MB/s; at t=1s the link degrades to 20%,
        // so the remaining bytes drain 5× slower.
        net.inject_link_fault(
            SimTime::from_secs(1),
            SimDuration::from_secs(100),
            LinkFault {
                link,
                kind: LinkFaultKind::Degrade(0.2),
            },
        );
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6));
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6));
        net.run_to_completion(SimTime::from_secs(1000));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 2);
        // 200 MB total: 100 MB done in the first second, the remaining
        // 100 MB at 20 MB/s → ~6s overall.
        for r in &recs {
            let end = r.completed_at.as_secs_f64();
            assert!((end - 6.0).abs() < 0.1, "completed at {end}s, expected ~6s");
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod timeline_tests {
    use super::*;
    use crate::topology::paper_testbed;

    #[test]
    fn watched_wan_link_records_saturation() {
        let (topo, gridftp, _apache, nfs) = paper_testbed();
        let wan = topo
            .links()
            .find(|(_, l)| l.name == "wan-tacc-isi")
            .map(|(id, _)| id)
            .unwrap();
        let mut net = Network::with_seed(topo, StreamModel::default(), 1);
        net.watch_link(wan);
        for i in 0..10 {
            net.start_flow(
                SimTime::ZERO,
                FlowSpec {
                    src: gridftp,
                    dst: nfs,
                    bytes: 20.0e6,
                    streams: 4,
                    tag: i,
                },
            );
        }
        net.run_to_completion(SimTime::from_secs(10_000));
        let tl = net.timeline(wan).expect("watched");
        assert!(!tl.samples().is_empty());
        assert_eq!(tl.peak_streams(), 40);
        // Mid-run the WAN is saturated near its 3.5 MB/s capacity.
        let peak_throughput = tl
            .samples()
            .iter()
            .map(|s| s.throughput)
            .fold(0.0, f64::max);
        assert!(
            peak_throughput > 3.0e6 && peak_throughput <= 3.6e6,
            "peak throughput {peak_throughput}"
        );
        // Unwatched links stay unrecorded.
        assert!(net.timeline(LinkId(0)).is_none());
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod connection_limit_tests {
    use super::*;
    use crate::topology::Topology;

    fn limited_pair(max: u32) -> (Network, crate::HostId, crate::HostId) {
        let mut t = Topology::new();
        let a = t.add_host("server", 100.0e6);
        let b = t.add_host("client", 100.0e6);
        t.set_host_connection_limit(a, max);
        let mut model = StreamModel::default();
        model.setup_base = SimDuration::ZERO;
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        (Network::new(t, model), a, b)
    }

    fn spec(src: crate::HostId, dst: crate::HostId, bytes: f64, tag: u64) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            bytes,
            streams: 2,
            tag,
        }
    }

    #[test]
    fn connection_limit_serializes_excess_flows() {
        // Server allows 2 concurrent connections; 4 equal flows must run as
        // two consecutive pairs → ~double the unconstrained time.
        let (mut net, server, client) = limited_pair(2);
        for i in 0..4 {
            net.start_flow(SimTime::ZERO, spec(server, client, 50.0e6, i));
        }
        net.run_to_completion(SimTime::from_secs(1000));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 4);
        // First pair finishes ~1s (100 MB over 100 MB/s shared by 2);
        // second pair ~2s.
        let mut ends: Vec<f64> = recs.iter().map(|r| r.completed_at.as_secs_f64()).collect();
        ends.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((ends[1] - 1.0).abs() < 0.1, "first pair at {:?}", ends);
        assert!((ends[3] - 2.0).abs() < 0.1, "second pair at {:?}", ends);
        assert_eq!(net.host_connections(server), 0, "slots drained");
    }

    #[test]
    fn queue_promotes_in_fifo_order() {
        let (mut net, server, client) = limited_pair(1);
        let first = net.start_flow(SimTime::ZERO, spec(server, client, 10.0e6, 0));
        let second = net.start_flow(SimTime::ZERO, spec(server, client, 10.0e6, 1));
        let third = net.start_flow(SimTime::ZERO, spec(server, client, 10.0e6, 2));
        net.run_to_completion(SimTime::from_secs(1000));
        let recs = net.take_completed();
        let order: Vec<FlowId> = {
            let mut r: Vec<_> = recs.iter().map(|r| (r.completed_at, r.flow)).collect();
            r.sort();
            r.into_iter().map(|(_, f)| f).collect()
        };
        assert_eq!(order, vec![first, second, third]);
    }

    #[test]
    fn unlimited_hosts_never_queue() {
        let (mut net, server, client) = {
            let mut t = Topology::new();
            let a = t.add_host("server", 100.0e6);
            let b = t.add_host("client", 100.0e6);
            let mut model = StreamModel::default();
            model.flow_weight_jitter = 0.0;
            (Network::new(t, model), a, b)
        };
        for i in 0..50 {
            net.start_flow(SimTime::ZERO, spec(server, client, 1.0e6, i));
        }
        net.run_to_completion(SimTime::from_secs(1000));
        assert_eq!(net.take_completed().len(), 50);
    }

    #[test]
    fn limit_applies_at_the_destination_too() {
        let (mut net, server, client) = {
            let mut t = Topology::new();
            let a = t.add_host("server", 100.0e6);
            let b = t.add_host("client", 100.0e6);
            t.set_host_connection_limit(b, 1);
            let mut model = StreamModel::default();
            model.setup_base = SimDuration::ZERO;
            model.setup_per_stream = SimDuration::ZERO;
            model.setup_rtts = 0.0;
            model.ramp_tau = SimDuration::ZERO;
            model.turbulence_per_event = 0.0;
            model.flow_weight_jitter = 0.0;
            (Network::new(t, model), a, b)
        };
        net.start_flow(SimTime::ZERO, spec(server, client, 100.0e6, 0));
        net.start_flow(SimTime::ZERO, spec(server, client, 100.0e6, 1));
        net.run_to_completion(SimTime::from_secs(1000));
        let recs = net.take_completed();
        // Serialized: 1s then 2s, not both at 2s.
        let mut ends: Vec<f64> = recs.iter().map(|r| r.completed_at.as_secs_f64()).collect();
        ends.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((ends[0] - 1.0).abs() < 0.05, "{ends:?}");
        assert!((ends[1] - 2.0).abs() < 0.05, "{ends:?}");
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod proptests {
    use super::*;
    use crate::topology::paper_testbed;
    use proptest::prelude::*;

    /// Arbitrary batch of flows on the paper testbed (mix of WAN and LAN).
    fn arb_flows() -> impl Strategy<Value = Vec<(bool, f64, u32, u64)>> {
        proptest::collection::vec(
            (
                any::<bool>(),   // true = WAN (gridftp→nfs), false = LAN (apache→nfs)
                1.0e4..2.0e8f64, // bytes
                1u32..16,        // streams
                0u64..10,        // start delay (seconds)
            ),
            1..24,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every flow eventually completes, exactly once, and the records
        /// are causally consistent.
        #[test]
        fn all_flows_complete_exactly_once(flows in arb_flows()) {
            let (topo, gridftp, apache, nfs) = paper_testbed();
            let mut net = Network::with_seed(topo, StreamModel::default(), 42);
            let n = flows.len();
            for (i, (wan, bytes, streams, delay)) in flows.into_iter().enumerate() {
                let src = if wan { gridftp } else { apache };
                net.advance(net.now().max(SimTime::from_secs(delay)));
                net.start_flow(net.now(), FlowSpec {
                    src,
                    dst: nfs,
                    bytes,
                    streams,
                    tag: i as u64,
                });
            }
            net.run_to_completion(SimTime::from_secs(1_000_000));
            let recs = net.take_completed();
            prop_assert_eq!(recs.len(), n);
            let mut tags: Vec<u64> = recs.iter().map(|r| r.tag).collect();
            tags.sort_unstable();
            let expected: Vec<u64> = (0..n as u64).collect();
            prop_assert_eq!(tags, expected);
            for r in &recs {
                prop_assert!(r.activated_at >= r.requested_at);
                prop_assert!(r.completed_at > r.activated_at || r.bytes < 1.0);
            }
        }

        /// Goodput never exceeds the bottleneck capacity of the route, and
        /// aggregate bytes accounting matches.
        #[test]
        fn goodput_bounded_by_bottleneck(flows in arb_flows()) {
            let (topo, gridftp, apache, nfs) = paper_testbed();
            let mut net = Network::with_seed(topo, StreamModel::default(), 7);
            let mut total = 0.0;
            for (i, (wan, bytes, streams, _)) in flows.iter().enumerate() {
                let src = if *wan { gridftp } else { apache };
                total += bytes;
                net.start_flow(SimTime::ZERO, FlowSpec {
                    src,
                    dst: nfs,
                    bytes: *bytes,
                    streams: *streams,
                    tag: i as u64,
                });
            }
            net.run_to_completion(SimTime::from_secs(1_000_000));
            let recs = net.take_completed();
            prop_assert!((net.total_bytes_completed() - total).abs() < 1.0);
            for r in &recs {
                let cap = if r.src == gridftp { 3.5e6 } else { 110.0e6 };
                // A single flow's goodput can never exceed its bottleneck
                // (small slack for the fluid integrator's microsecond grid).
                prop_assert!(
                    r.goodput() <= cap * 1.01 + 1.0,
                    "flow {} goodput {} over cap {}", r.tag, r.goodput(), cap
                );
            }
        }

        /// Identical inputs + identical seed ⇒ identical completion times.
        #[test]
        fn deterministic_under_fixed_seed(flows in arb_flows()) {
            let run = |seed: u64, flows: &[(bool, f64, u32, u64)]| {
                let (topo, gridftp, apache, nfs) = paper_testbed();
                let mut net = Network::with_seed(topo, StreamModel::default(), seed);
                for (i, (wan, bytes, streams, _)) in flows.iter().enumerate() {
                    let src = if *wan { gridftp } else { apache };
                    net.start_flow(SimTime::ZERO, FlowSpec {
                        src, dst: nfs, bytes: *bytes, streams: *streams, tag: i as u64,
                    });
                }
                net.run_to_completion(SimTime::from_secs(1_000_000));
                net.take_completed()
                    .into_iter()
                    .map(|r| (r.tag, r.completed_at))
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(run(3, &flows), run(3, &flows));
        }

        /// Stream accounting: peaks never exceed the sum of all flows'
        /// streams, and every link ends idle.
        #[test]
        fn stream_accounting_is_conservative(flows in arb_flows()) {
            let (topo, gridftp, apache, nfs) = paper_testbed();
            let total_streams: u32 = flows.iter().map(|(_, _, s, _)| *s.max(&1)).sum();
            let mut net = Network::with_seed(topo, StreamModel::default(), 5);
            for (i, (wan, bytes, streams, _)) in flows.iter().enumerate() {
                let src = if *wan { gridftp } else { apache };
                net.start_flow(SimTime::ZERO, FlowSpec {
                    src, dst: nfs, bytes: *bytes, streams: *streams, tag: i as u64,
                });
            }
            net.run_to_completion(SimTime::from_secs(1_000_000));
            let links: Vec<LinkId> = net.topology().links().map(|(id, _)| id).collect();
            for link in links {
                prop_assert!(net.peak_streams(link) <= total_streams);
                prop_assert_eq!(net.current_streams(link), 0, "link {} not drained", link);
            }
        }
    }
}
