//! The fluid-flow network engine.
//!
//! [`Network`] holds the topology, the [`StreamModel`], and the set of live
//! flows. It is a *passive* component: a driver (the workflow executor, or a
//! test) interleaves its own events with the network's by asking
//! [`Network::next_wakeup`] for the earliest instant anything interesting
//! happens — a connection finishing setup, a flow draining, a turbulence or
//! ramp refresh — and calling [`Network::advance`] to integrate flow progress
//! up to its chosen time. Rates are recomputed (weighted max-min, see
//! [`crate::sharing`]) at every flow membership change and at periodic
//! refresh points while flows ramp or links are turbulent.
//!
//! Determinism: flows live in a `BTreeMap` keyed by monotonically increasing
//! [`FlowId`], so iteration order — and therefore every floating-point
//! reduction — is identical across runs with the same schedule.

use crate::fault::{LinkFault, LinkFaultKind};
use crate::flow::{Flow, FlowId, FlowPhase, FlowSpec, TransferRecord};
use crate::metrics::AllocStats;
use crate::model::{LinkState, StreamModel};
use crate::sharing::{max_min_rates, FlowDemand, RateAllocator};
use crate::timeline::{LinkTimeline, UtilizationSample};
use crate::topology::{LinkId, Topology};
use pwm_obs::{Gauge, Obs, SpanId};
use pwm_sim::{FaultEvent, FaultPlan, SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Completion slop: a flow whose remaining bytes drop below this is done.
const BYTE_EPS: f64 = 0.5;

/// Relative rate-change threshold below which a freshly computed rate is
/// discarded in favor of the flow's current one: sub-epsilon churn would
/// only perturb completion ETAs in their last bits and cascade pointless
/// wakeups through the driver.
const RATE_EPS: f64 = 1e-9;

/// The live network simulation.
pub struct Network {
    topology: Topology,
    model: StreamModel,
    flows: BTreeMap<FlowId, Flow>,
    link_states: Vec<LinkState>,
    next_flow_id: u64,
    now: SimTime,
    completed: Vec<TransferRecord>,
    total_bytes_completed: f64,
    total_flows_completed: u64,
    rng: SimRng,
    /// Active connections per host (enforces per-host connection limits).
    host_active: Vec<u32>,
    /// Opt-in utilization recorders, keyed by watched link.
    timelines: std::collections::BTreeMap<LinkId, LinkTimeline>,
    /// Scheduled link faults; capacities scale while a window is active.
    faults: FaultPlan<LinkFault>,
    /// Opt-in observability sinks (see [`Network::set_obs`]).
    obs: Option<NetObs>,

    // --- Incremental allocation engine ------------------------------------
    // A persistent flow↔link bipartite index plus a dirty-link set lets a
    // membership change re-run progressive filling over only the connected
    // component of links/flows it can actually affect; disjoint host-pair
    // clusters never pay for each other's churn.
    /// Active flows per link, sorted by `FlowId` (the flow side of the
    /// bipartite index is each flow's cached `links` list).
    link_flows: Vec<Vec<FlowId>>,
    /// True iff the link's membership or effective capacity changed since
    /// the last recompute.
    link_dirty: Vec<bool>,
    /// The links with `link_dirty` set (insertion-ordered, deduplicated).
    dirty_links: Vec<usize>,
    /// Effective capacity per link as of the last recompute; a change marks
    /// the link dirty (covers turbulence decay, stream-count knees, and
    /// fault-window boundaries in one comparison).
    capacities: Vec<f64>,
    /// Running per-link allocated throughput, maintained at each component
    /// reallocation — replaces the O(flows × links) sums the gauge and
    /// timeline paths used to pay per recompute.
    link_throughput: Vec<f64>,
    /// Active flows still in slow-start; their caps move every recompute,
    /// so their links stay dirty until the ramp completes.
    ramping: BTreeSet<FlowId>,
    /// Number of flows currently in [`FlowPhase::Active`].
    active_count: usize,
    /// Reusable progressive-filling scratch (see [`RateAllocator`]).
    alloc: RateAllocator,
    /// Scratch: flows of the dirty component(s), sorted before allocation.
    comp_flows: Vec<FlowId>,
    /// Scratch: links of the dirty component(s).
    comp_links: Vec<usize>,
    /// Scratch: per-link BFS visited marker (cleared via `comp_links`).
    link_seen: Vec<bool>,
    /// Scratch: per-flow BFS visited marker (membership checks only).
    flow_seen: HashSet<FlowId>,
    /// Scratch: BFS work stack of link indices.
    bfs_stack: Vec<usize>,
    /// Scratch: ramping-flow ids being examined this recompute.
    ramp_scratch: Vec<FlowId>,
    /// Allocation-work counters (see [`AllocStats`]).
    stats: AllocStats,
    /// Benchmark/testing escape hatch: when true, every recompute takes the
    /// pre-incremental full path (all flows, all links, fresh buffers).
    full_recompute: bool,
}

/// Observability state attached by [`Network::set_obs`]: the shared handle
/// plus per-link gauge handles cached so the rate-recompute hot path never
/// touches the registry's name table.
struct NetObs {
    obs: Obs,
    /// Per-link `(streams, throughput_bps)` gauges, indexed by `LinkId`.
    link_gauges: Vec<(Gauge, Gauge)>,
    /// Trace-span parents for in-flight flows (see
    /// [`Network::set_flow_span_parent`]).
    flow_parents: BTreeMap<FlowId, SpanId>,
}

impl Network {
    /// Build a network over `topology` with the given stream model and the
    /// default seed (0) for per-flow weight jitter.
    pub fn new(topology: Topology, model: StreamModel) -> Self {
        Self::with_seed(topology, model, 0)
    }

    /// Build a network with an explicit seed for per-flow weight jitter.
    pub fn with_seed(topology: Topology, model: StreamModel, seed: u64) -> Self {
        let link_count = topology.link_count();
        let link_states = (0..link_count).map(|_| LinkState::new()).collect();
        let host_active = vec![0; topology.host_count()];
        Network {
            topology,
            model,
            flows: BTreeMap::new(),
            link_states,
            next_flow_id: 0,
            now: SimTime::ZERO,
            completed: Vec::new(),
            total_bytes_completed: 0.0,
            total_flows_completed: 0,
            rng: SimRng::for_component(seed, "network-weights"),
            host_active,
            timelines: std::collections::BTreeMap::new(),
            faults: FaultPlan::new(),
            obs: None,
            link_flows: vec![Vec::new(); link_count],
            link_dirty: vec![false; link_count],
            dirty_links: Vec::new(),
            capacities: vec![0.0; link_count],
            link_throughput: vec![0.0; link_count],
            ramping: BTreeSet::new(),
            active_count: 0,
            alloc: RateAllocator::new(),
            comp_flows: Vec::new(),
            comp_links: Vec::new(),
            link_seen: vec![false; link_count],
            flow_seen: HashSet::new(),
            bfs_stack: Vec::new(),
            ramp_scratch: Vec::new(),
            stats: AllocStats::default(),
            full_recompute: false,
        }
    }

    /// Force every rate recomputation down the pre-incremental full path
    /// (every flow, every link, fresh buffers). Benchmark baseline and
    /// equivalence-testing escape hatch; choose a mode before starting
    /// flows and keep it for the network's lifetime.
    pub fn set_full_recompute(&mut self, on: bool) {
        self.full_recompute = on;
    }

    /// Allocation-work counters accumulated since construction.
    pub fn alloc_stats(&self) -> AllocStats {
        self.stats
    }

    /// Attach observability: completed flows become trace spans (category
    /// `net`, timed `activated_at → completed_at`), link fault windows
    /// become trace instants, and every rate recomputation refreshes
    /// per-link `pwm_net_link_streams` / `pwm_net_link_throughput_bps`
    /// gauges labeled with the link name.
    pub fn set_obs(&mut self, obs: Obs) {
        let link_gauges = (0..self.topology.link_count())
            .map(|ix| {
                let name = self.topology.link(LinkId(ix as u32)).name.clone();
                (
                    obs.registry.gauge(
                        "pwm_net_link_streams",
                        "Concurrent streams currently on the link",
                        &[("link", &name)],
                    ),
                    obs.registry.gauge(
                        "pwm_net_link_throughput_bps",
                        "Aggregate throughput currently allocated across the link, bytes/sec",
                        &[("link", &name)],
                    ),
                )
            })
            .collect();
        let net_obs = NetObs {
            obs,
            link_gauges,
            flow_parents: BTreeMap::new(),
        };
        self.emit_fault_instants(&net_obs, self.faults.events());
        self.obs = Some(net_obs);
    }

    /// Parent the trace span of `flow` (emitted when the flow completes)
    /// under an existing span — typically the workflow executor's transfer
    /// span. No-op without observability attached.
    pub fn set_flow_span_parent(&mut self, flow: FlowId, parent: SpanId) {
        if let Some(o) = &mut self.obs {
            o.flow_parents.insert(flow, parent);
        }
    }

    /// Trace instants marking each scheduled fault window's open and close.
    fn emit_fault_instants(&self, obs: &NetObs, events: &[FaultEvent<LinkFault>]) {
        for ev in events {
            let link = self.topology.link(ev.kind.link).name.clone();
            let kind = match ev.kind.kind {
                LinkFaultKind::Down => "down".to_string(),
                LinkFaultKind::Degrade(f) => format!("degrade:{f}"),
            };
            obs.obs.tracer.instant(
                "link_fault_start",
                "net",
                ev.window.start,
                &[("link", link.clone()), ("kind", kind.clone())],
            );
            obs.obs.tracer.instant(
                "link_fault_end",
                "net",
                ev.window.end(),
                &[("link", link), ("kind", kind)],
            );
        }
    }

    /// Install a full fault plan (replacing any existing one). Must be
    /// called before the affected windows open; fault effects apply from
    /// the next rate recomputation.
    pub fn set_fault_plan(&mut self, plan: FaultPlan<LinkFault>) {
        self.faults = plan;
        if let Some(o) = &self.obs {
            self.emit_fault_instants(o, self.faults.events());
        }
    }

    /// Schedule one link fault active over `[start, start + duration)`.
    pub fn inject_link_fault(&mut self, start: SimTime, duration: SimDuration, fault: LinkFault) {
        self.faults.add(start, duration, fault);
        if let Some(o) = &self.obs {
            // The plan re-sorts on add, so describe the new window directly.
            let added = [FaultEvent {
                window: pwm_sim::FaultWindow::new(start, duration),
                kind: fault,
            }];
            self.emit_fault_instants(o, &added);
        }
    }

    /// The installed fault plan (empty when no faults are scheduled).
    pub fn fault_plan(&self) -> &FaultPlan<LinkFault> {
        &self.faults
    }

    /// Capacity multiplier for `link` at `at` under the active fault
    /// windows (overlapping faults compose multiplicatively; 1.0 when the
    /// link is healthy).
    fn fault_capacity_factor(&self, link: LinkId, at: SimTime) -> f64 {
        self.faults
            .active_at(at)
            .filter(|e| e.kind.link == link)
            .map(|e| e.kind.capacity_factor())
            .product()
    }

    /// Start recording a utilization timeline for `link`.
    pub fn watch_link(&mut self, link: LinkId) {
        self.timelines.entry(link).or_default();
    }

    /// The recorded timeline for `link`, if watched.
    pub fn timeline(&self, link: LinkId) -> Option<&LinkTimeline> {
        self.timelines.get(&link)
    }

    /// Hosts whose connection slots a flow occupies (src and dst, once each).
    fn flow_hosts(spec_src: crate::HostId, spec_dst: crate::HostId) -> Vec<crate::HostId> {
        if spec_src == spec_dst {
            vec![spec_src]
        } else {
            vec![spec_src, spec_dst]
        }
    }

    /// True when both endpoints have a free connection slot.
    fn slots_available(&self, src: crate::HostId, dst: crate::HostId) -> bool {
        Self::flow_hosts(src, dst).into_iter().all(|h| {
            match self.topology.host(h).max_connections {
                Some(max) => self.host_active[h.0 as usize] < max,
                None => true,
            }
        })
    }

    fn occupy_slots(&mut self, src: crate::HostId, dst: crate::HostId, delta: i64) {
        for h in Self::flow_hosts(src, dst) {
            let slot = &mut self.host_active[h.0 as usize];
            *slot = (*slot as i64 + delta).max(0) as u32;
        }
    }

    /// Currently active connections at a host (diagnostic).
    pub fn host_connections(&self, host: crate::HostId) -> u32 {
        self.host_active[host.0 as usize]
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The stream model in force.
    pub fn model(&self) -> &StreamModel {
        &self.model
    }

    /// Current network-local time (last `advance` target).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of flows currently connecting or moving bytes.
    pub fn live_flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Peak concurrent streams ever observed on `link` (Table IV check).
    pub fn peak_streams(&self, link: LinkId) -> u32 {
        self.link_states[link.0 as usize].peak_streams
    }

    /// Current concurrent streams on `link`.
    pub fn current_streams(&self, link: LinkId) -> u32 {
        self.link_states[link.0 as usize].streams
    }

    /// Current turbulence level of `link` (diagnostic).
    pub fn link_turbulence(&self, link: LinkId) -> f64 {
        self.link_states[link.0 as usize].turbulence
    }

    /// Total bytes delivered by completed flows.
    pub fn total_bytes_completed(&self) -> f64 {
        self.total_bytes_completed
    }

    /// Total flows completed.
    pub fn total_flows_completed(&self) -> u64 {
        self.total_flows_completed
    }

    /// Begin a transfer at time `now` (which must not precede the engine's
    /// clock). The flow first spends the model's connection-setup time in
    /// [`FlowPhase::Connecting`], then joins the bandwidth-sharing set.
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        self.advance(now);
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        let route = self.topology.route(spec.src, spec.dst);
        let links: Vec<usize> = route.iter().map(|l| l.0 as usize).collect();
        let rtt = self.topology.route_rtt(spec.src, spec.dst);
        let setup = self.model.setup_time(spec.streams.max(1), rtt);
        let weight_factor = self.rng.jitter(self.model.flow_weight_jitter);
        self.flows.insert(
            id,
            Flow {
                spec,
                phase: FlowPhase::Connecting { until: now + setup },
                route,
                links,
                route_rtt: rtt,
                requested_at: now,
                weight_factor,
            },
        );
        id
    }

    /// Drain the records of flows that finished since the last call.
    pub fn take_completed(&mut self) -> Vec<TransferRecord> {
        std::mem::take(&mut self.completed)
    }

    /// Earliest instant at which the network's state changes discontinuously:
    /// a connection opens, a flow drains at current rates, or a refresh is
    /// due because something is ramping or turbulent. `None` when idle.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        // Wakeups must be strictly in the future: a completion ETA that
        // rounds down to `now` would otherwise make drivers spin forever.
        let floor = self.now + SimDuration::from_micros(1);
        let mut bump = |t: SimTime| {
            let t = t.max(floor);
            earliest = Some(match earliest {
                Some(e) if e <= t => e,
                _ => t,
            });
        };

        let mut needs_refresh = false;
        for flow in self.flows.values() {
            match &flow.phase {
                FlowPhase::Connecting { until } => bump(*until),
                FlowPhase::Active {
                    activated_at,
                    remaining,
                    rate,
                } => {
                    if *rate > 0.0 {
                        let secs = remaining / rate;
                        bump(self.now + SimDuration::from_secs_f64(secs));
                    }
                    if !self.model.ramp_done(self.now.since(*activated_at)) {
                        needs_refresh = true;
                    }
                }
                FlowPhase::Queued => {
                    // Promoted by a completion event; no intrinsic wakeup.
                }
                FlowPhase::Done => {}
            }
        }
        if !needs_refresh && !self.flows.is_empty() {
            // Turbulent links also change effective rates over time.
            needs_refresh = self
                .link_states
                .iter()
                .any(|ls| ls.streams > 0 && ls.turbulence > 0.02);
        }
        if needs_refresh {
            bump(self.now + self.model.refresh_interval);
        }
        // Fault boundaries change effective capacities discontinuously. A
        // flow stalled on a downed link has rate 0 and therefore no ETA, so
        // the fault-clear boundary is the only wakeup that lets it progress.
        if !self.flows.is_empty() {
            if let Some(b) = self.faults.next_boundary_after(self.now) {
                bump(b);
            }
        }
        earliest
    }

    /// Integrate flow progress up to `to`, handling activations and
    /// completions at their exact instants, and leave rates freshly computed.
    ///
    /// # Panics
    /// Panics if `to` precedes the engine clock.
    pub fn advance(&mut self, to: SimTime) {
        assert!(to >= self.now, "network clock cannot move backwards");
        while self.now < to {
            // Next discontinuity within (now, to]: activation or completion.
            let mut seg_end = to;
            for flow in self.flows.values() {
                match &flow.phase {
                    FlowPhase::Connecting { until } => {
                        if *until > self.now && *until < seg_end {
                            seg_end = *until;
                        }
                    }
                    FlowPhase::Active {
                        remaining, rate, ..
                    } => {
                        if *rate > 0.0 {
                            let eta = self.now + SimDuration::from_secs_f64(remaining / rate);
                            if eta > self.now && eta < seg_end {
                                seg_end = eta;
                            }
                        }
                    }
                    FlowPhase::Queued | FlowPhase::Done => {}
                }
            }
            // Capacities change discontinuously at fault boundaries: stop
            // the constant-rate segment there and recompute.
            if let Some(b) = self.faults.next_boundary_after(self.now) {
                if b < seg_end {
                    seg_end = b;
                }
            }

            self.integrate(seg_end);
            self.now = seg_end;
            self.activate_due();
            self.collect_done();
            // Completions free connection slots: promote queued flows now.
            self.activate_due();
            self.recompute_rates();
        }
        // `to` may equal `now` on entry (pure rate refresh): still recompute
        // so callers starting flows see current conditions.
        if self
            .flows
            .values()
            .any(|f| matches!(f.phase, FlowPhase::Active { .. }))
        {
            self.recompute_rates();
        }
    }

    /// Move bytes at the current constant rates until `seg_end`.
    fn integrate(&mut self, seg_end: SimTime) {
        let dt = seg_end.since(self.now).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        for flow in self.flows.values_mut() {
            if let FlowPhase::Active {
                remaining, rate, ..
            } = &mut flow.phase
            {
                *remaining = (*remaining - *rate * dt).max(0.0);
            }
        }
    }

    /// Flip Connecting flows whose setup completed into Active (or Queued
    /// when an endpoint's transfer server is at its connection limit), and
    /// promote Queued flows into freed slots in FIFO order.
    fn activate_due(&mut self) {
        let now = self.now;
        // Candidates in FlowId (FIFO) order: setup-complete and queued flows.
        let candidates: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| match &f.phase {
                FlowPhase::Connecting { until } => *until <= now,
                FlowPhase::Queued => true,
                _ => false,
            })
            .map(|(id, _)| *id)
            .collect();
        let mut joins: Vec<(FlowId, i64)> = Vec::new();
        for id in candidates {
            let (src, dst) = {
                let f = &self.flows[&id];
                (f.spec.src, f.spec.dst)
            };
            if self.slots_available(src, dst) {
                self.occupy_slots(src, dst, 1);
                let flow = self.flows.get_mut(&id).expect("candidate flow");
                flow.phase = FlowPhase::Active {
                    activated_at: now,
                    remaining: flow.spec.bytes.max(0.0),
                    rate: 0.0,
                };
                joins.push((id, flow.streams() as i64));
            } else {
                let flow = self.flows.get_mut(&id).expect("candidate flow");
                flow.phase = FlowPhase::Queued;
            }
        }
        for (id, streams) in joins {
            let route_len = self.flows[&id].links.len();
            for i in 0..route_len {
                let ix = self.flows[&id].links[i];
                let knee = self.knee(LinkId(ix as u32));
                self.link_states[ix].membership_change(&self.model, now, streams, knee);
                let members = &mut self.link_flows[ix];
                if let Err(pos) = members.binary_search(&id) {
                    members.insert(pos, id);
                }
                self.mark_link_dirty(ix);
            }
            self.active_count += 1;
            if !self.model.ramp_done(SimDuration::ZERO) {
                self.ramping.insert(id);
            }
        }
    }

    /// Record that a link's membership or capacity changed since the last
    /// recompute.
    fn mark_link_dirty(&mut self, ix: usize) {
        if !self.link_dirty[ix] {
            self.link_dirty[ix] = true;
            self.dirty_links.push(ix);
        }
    }

    /// Retire drained flows, record them, release their streams.
    fn collect_done(&mut self) {
        let now = self.now;
        let done_ids: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| {
                matches!(&f.phase, FlowPhase::Active { remaining, .. } if *remaining <= BYTE_EPS)
            })
            .map(|(id, _)| *id)
            .collect();
        for id in done_ids {
            let flow = self.flows.remove(&id).expect("flow disappeared");
            self.occupy_slots(flow.spec.src, flow.spec.dst, -1);
            let activated_at = match &flow.phase {
                FlowPhase::Active { activated_at, .. } => *activated_at,
                _ => unreachable!("collect_done only sees active flows"),
            };
            let streams = flow.streams();
            self.active_count -= 1;
            self.ramping.remove(&id);
            for &ix in &flow.links {
                let knee = self.knee(LinkId(ix as u32));
                self.link_states[ix].membership_change(&self.model, now, -(streams as i64), knee);
                if let Ok(pos) = self.link_flows[ix].binary_search(&id) {
                    self.link_flows[ix].remove(pos);
                }
                self.mark_link_dirty(ix);
            }
            self.total_bytes_completed += flow.spec.bytes;
            self.total_flows_completed += 1;
            if let Some(o) = &mut self.obs {
                let parent = o.flow_parents.remove(&id);
                let src = self.topology.host(flow.spec.src).name.clone();
                let dst = self.topology.host(flow.spec.dst).name.clone();
                o.obs.tracer.complete_span(
                    format!("flow {src}->{dst}"),
                    "net",
                    parent,
                    activated_at,
                    now,
                    &[
                        ("bytes", format!("{:.0}", flow.spec.bytes)),
                        ("streams", streams.to_string()),
                        ("tag", flow.spec.tag.to_string()),
                    ],
                );
            }
            self.completed.push(TransferRecord {
                flow: id,
                tag: flow.spec.tag,
                src: flow.spec.src,
                dst: flow.spec.dst,
                bytes: flow.spec.bytes,
                streams,
                requested_at: flow.requested_at,
                activated_at,
                completed_at: now,
            });
        }
    }

    /// Weighted max-min over effective link capacities, incremental and
    /// allocation-local.
    ///
    /// The recompute decomposes into:
    /// 1. an O(links) settle/capacity pass — any link whose effective
    ///    capacity moved (turbulence decay, occupancy knee, fault boundary)
    ///    is marked dirty;
    /// 2. promotion of slow-start flows — a ramping flow's cap changes with
    ///    age, so its links stay dirty until the ramp completes;
    /// 3. if nothing is dirty, the previous allocation is provably still
    ///    the max-min solution and the whole recompute is skipped;
    /// 4. otherwise a BFS over the flow↔link bipartite index collects the
    ///    connected component(s) reachable from dirty links, and progressive
    ///    filling re-runs over exactly those flows and links — flows in
    ///    untouched components keep their rates (max-min allocations of
    ///    disjoint components are independent).
    ///
    /// Rates that move by less than [`RATE_EPS`] (relative) keep their old
    /// value, so numerically-unchanged allocations cannot cascade wakeups.
    fn recompute_rates(&mut self) {
        if self.full_recompute {
            self.recompute_rates_full();
            return;
        }
        let now = self.now;
        self.stats.recomputes += 1;

        // 1. Settle turbulence and refresh effective capacities.
        let have_faults = !self.faults.events().is_empty();
        for ix in 0..self.link_states.len() {
            let fault_factor = if have_faults {
                self.fault_capacity_factor(LinkId(ix as u32), now)
            } else {
                1.0
            };
            let link = self.topology.link(LinkId(ix as u32));
            let knee = link.knee_override.unwrap_or(self.model.knee_streams);
            let ls = &mut self.link_states[ix];
            ls.settle(&self.model, now);
            let factor = self
                .model
                .capacity_factor(ls.streams as f64, knee, ls.turbulence);
            let cap = link.capacity * factor * fault_factor;
            if cap != self.capacities[ix] {
                self.capacities[ix] = cap;
                self.mark_link_dirty(ix);
            }
        }

        // 2. Ramping flows: caps move with age until the ramp is done.
        let mut scratch = std::mem::take(&mut self.ramp_scratch);
        scratch.clear();
        scratch.extend(self.ramping.iter().copied());
        for &id in &scratch {
            let Some(flow) = self.flows.get(&id) else {
                self.ramping.remove(&id);
                continue;
            };
            let FlowPhase::Active { activated_at, .. } = flow.phase else {
                continue; // still queued/connecting: cap not in play yet
            };
            if self.model.ramp_done(now.since(activated_at)) {
                self.ramping.remove(&id);
            }
            // Mark dirty either way: the final recompute settles the flow
            // at its (near-)asymptotic cap.
            let route_len = self.flows[&id].links.len();
            for i in 0..route_len {
                let ix = self.flows[&id].links[i];
                self.mark_link_dirty(ix);
            }
        }
        self.ramp_scratch = scratch;

        // 3. Nothing dirty → the previous allocation still stands.
        if self.dirty_links.is_empty() {
            self.stats.skipped += 1;
            self.record_timelines();
            return;
        }

        // 4. Collect the connected component(s) around the dirty links.
        self.comp_flows.clear();
        self.comp_links.clear();
        self.flow_seen.clear();
        self.bfs_stack.clear();
        for i in 0..self.dirty_links.len() {
            let seed = self.dirty_links[i];
            if !self.link_seen[seed] {
                self.link_seen[seed] = true;
                self.bfs_stack.push(seed);
            }
        }
        while let Some(ix) = self.bfs_stack.pop() {
            self.comp_links.push(ix);
            let members = &self.link_flows[ix];
            for &fid in members {
                if self.flow_seen.insert(fid) {
                    self.comp_flows.push(fid);
                    for &other in &self.flows[&fid].links {
                        if !self.link_seen[other] {
                            self.link_seen[other] = true;
                            self.bfs_stack.push(other);
                        }
                    }
                }
            }
        }
        // Deterministic iteration orders: flows ascending by id (matching
        // the BTreeMap order the full pass uses), links ascending by index.
        self.comp_flows.sort_unstable();
        self.comp_links.sort_unstable();
        for &ix in &self.comp_links {
            self.link_seen[ix] = false;
        }

        // 5. Progressive filling over the component only.
        if !self.comp_flows.is_empty() {
            self.stats.component_runs += 1;
            self.stats.flows_allocated += self.comp_flows.len() as u64;
            self.stats.links_allocated += self.comp_links.len() as u64;
            let mut alloc = std::mem::take(&mut self.alloc);
            alloc.begin(self.capacities.len());
            for &fid in &self.comp_flows {
                let flow = &self.flows[&fid];
                let FlowPhase::Active { activated_at, .. } = flow.phase else {
                    unreachable!("bipartite index only holds active flows");
                };
                let age = now.since(activated_at);
                alloc.push_flow(
                    flow.streams() as f64 * flow.weight_factor,
                    self.model.flow_cap(flow.streams(), age, flow.route_rtt),
                    &flow.links,
                );
            }
            let rates = alloc.allocate(&self.capacities);

            // 6. Write rates back and rebuild the component's running
            //    throughput totals (links outside the component are exact
            //    already — nothing on them changed).
            for &ix in &self.comp_links {
                self.link_throughput[ix] = 0.0;
            }
            for (&fid, &new_rate) in self.comp_flows.iter().zip(rates) {
                let flow = self.flows.get_mut(&fid).expect("component flow");
                if let FlowPhase::Active { rate, .. } = &mut flow.phase {
                    if (new_rate - *rate).abs() > RATE_EPS * rate.abs().max(1.0) {
                        *rate = new_rate;
                    } else {
                        self.stats.unchanged_writes += 1;
                    }
                    let effective = *rate;
                    for &ix in &flow.links {
                        self.link_throughput[ix] += effective;
                    }
                }
            }
            self.alloc = alloc;
        } else {
            // Dirty links with no remaining flows (e.g. the last flow on a
            // cluster finished): their allocation drops to zero.
            for i in 0..self.comp_links.len() {
                let ix = self.comp_links[i];
                self.link_throughput[ix] = 0.0;
            }
        }

        // 7. Refresh gauges for the touched links only.
        if let Some(o) = &self.obs {
            for &ix in &self.comp_links {
                let (streams_gauge, throughput_gauge) = &o.link_gauges[ix];
                streams_gauge.set(f64::from(self.link_states[ix].streams));
                throughput_gauge.set(self.link_throughput[ix]);
            }
        }

        // 8. Consume the dirty set.
        for i in 0..self.dirty_links.len() {
            let ix = self.dirty_links[i];
            self.link_dirty[ix] = false;
        }
        self.dirty_links.clear();
        self.record_timelines();
    }

    /// Feed watched timelines from the running per-link totals (O(watched),
    /// replacing the per-recompute O(flows × links) sums).
    fn record_timelines(&mut self) {
        if self.timelines.is_empty() || self.active_count == 0 {
            return;
        }
        let now = self.now;
        for (link, timeline) in self.timelines.iter_mut() {
            let ix = link.0 as usize;
            timeline.record(UtilizationSample {
                at: now,
                streams: self.link_states[ix].streams,
                turbulence: self.link_states[ix].turbulence,
                throughput: self.link_throughput[ix],
            });
        }
    }

    /// The pre-incremental recompute: every flow, every link, fresh buffers
    /// on each call. Kept verbatim as the benchmark baseline (`netbench
    /// --full`) and the reference side of the equivalence tests.
    fn recompute_rates_full(&mut self) {
        let now = self.now;
        self.stats.recomputes += 1;
        // Fault multipliers first: the state loop below borrows link_states
        // mutably, and faults depend only on the plan and the clock.
        let fault_factors: Vec<f64> = (0..self.link_states.len())
            .map(|idx| self.fault_capacity_factor(LinkId(idx as u32), now))
            .collect();
        // Effective capacity per link under current occupancy/turbulence.
        let mut capacities = Vec::with_capacity(self.link_states.len());
        for (idx, ls) in self.link_states.iter_mut().enumerate() {
            ls.settle(&self.model, now);
            let link = self.topology.link(LinkId(idx as u32));
            let knee = link.knee_override.unwrap_or(self.model.knee_streams);
            let factor = self
                .model
                .capacity_factor(ls.streams as f64, knee, ls.turbulence);
            capacities.push(link.capacity * factor * fault_factors[idx]);
        }

        // Full pass consumes all accumulated dirt.
        for i in 0..self.dirty_links.len() {
            let ix = self.dirty_links[i];
            self.link_dirty[ix] = false;
        }
        self.dirty_links.clear();

        let mut ids = Vec::new();
        let mut demands = Vec::new();
        for (id, flow) in self.flows.iter() {
            if let FlowPhase::Active { activated_at, .. } = &flow.phase {
                let rtt = self.topology.route_rtt(flow.spec.src, flow.spec.dst);
                let age = now.since(*activated_at);
                ids.push(*id);
                demands.push(FlowDemand {
                    weight: flow.streams() as f64 * flow.weight_factor,
                    cap: self.model.flow_cap(flow.streams(), age, rtt),
                    links: flow.route.iter().map(|l| l.0 as usize).collect(),
                });
            }
        }
        if ids.is_empty() {
            return;
        }
        self.stats.component_runs += 1;
        self.stats.flows_allocated += ids.len() as u64;
        self.stats.links_allocated += capacities.len() as u64;
        let rates = max_min_rates(&capacities, &demands);
        for (id, new_rate) in ids.into_iter().zip(rates.iter()) {
            if let Some(flow) = self.flows.get_mut(&id) {
                if let FlowPhase::Active { rate, .. } = &mut flow.phase {
                    *rate = *new_rate;
                }
            }
        }
        // Keep the running totals coherent in full mode too, so timelines
        // and gauges read from one source of truth.
        for t in self.link_throughput.iter_mut() {
            *t = 0.0;
        }
        for (d, r) in demands.iter().zip(rates.iter()) {
            for &ix in &d.links {
                self.link_throughput[ix] += *r;
            }
        }
        // Refresh per-link gauges with the fresh allocation.
        if let Some(o) = &self.obs {
            for (ix, (streams_gauge, throughput_gauge)) in o.link_gauges.iter().enumerate() {
                streams_gauge.set(f64::from(self.link_states[ix].streams));
                throughput_gauge.set(self.link_throughput[ix]);
            }
        }
        // Feed watched timelines with the fresh rates.
        self.record_timelines();
    }

    fn knee(&self, link: LinkId) -> f64 {
        self.topology
            .link(link)
            .knee_override
            .unwrap_or(self.model.knee_streams)
    }

    /// Run the network by itself until all flows complete or `horizon` is
    /// reached. Convenience for tests and standalone benchmarks; the workflow
    /// executor drives the network manually instead.
    pub fn run_to_completion(&mut self, horizon: SimTime) {
        while self.live_flow_count() > 0 {
            match self.next_wakeup() {
                Some(t) if t <= horizon => self.advance(t),
                _ => break,
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are tweaked per-test
mod tests {
    use super::*;
    use crate::topology::paper_testbed;

    fn lan_pair() -> (Network, crate::HostId, crate::HostId) {
        let mut t = Topology::new();
        let a = t.add_host("a", 100.0e6);
        let b = t.add_host("b", 100.0e6);
        let mut model = StreamModel::default();
        // Simplify physics for unit-level assertions.
        model.setup_base = SimDuration::ZERO;
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        (Network::new(t, model), a, b)
    }

    fn spec(src: crate::HostId, dst: crate::HostId, bytes: f64, streams: u32) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            bytes,
            streams,
            tag: 0,
        }
    }

    #[test]
    fn obs_emits_flow_spans_fault_instants_and_link_gauges() {
        let (mut net, a, b) = lan_pair();
        let obs = pwm_obs::Obs::new();
        net.set_obs(obs.clone());
        net.inject_link_fault(
            SimTime::from_secs(50),
            SimDuration::from_secs(5),
            LinkFault {
                link: LinkId(0),
                kind: LinkFaultKind::Down,
            },
        );
        let id = net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6, 2));
        let parent = obs
            .tracer
            .start_span("transfer", "workflow", None, SimTime::ZERO);
        net.set_flow_span_parent(id, parent);
        net.run_to_completion(SimTime::from_secs(100));
        obs.tracer.end_span(parent, net.now());

        let events = obs.tracer.events();
        let span = events
            .iter()
            .find(|e| e.name == "flow a->b")
            .expect("flow span");
        assert!(span.dur.is_some());
        assert_eq!(span.parent, Some(parent.0));
        assert!(events.iter().any(|e| e.name == "link_fault_start"));
        assert!(events.iter().any(|e| e.name == "link_fault_end"));
        let text = obs.registry.render_prometheus();
        assert!(text.contains("pwm_net_link_streams"), "{text}");
        assert!(text.contains("pwm_net_link_throughput_bps"), "{text}");
    }

    #[test]
    fn single_flow_completes_in_expected_time() {
        let (mut net, a, b) = lan_pair();
        // 2 streams × 64 MB/s/stream (1ms floor) = 128 MB/s cap, but the
        // 100 MB/s NIC binds → 100 MB in 1s.
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6, 2));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 1);
        let dur = recs[0].transfer_duration().as_secs_f64();
        assert!((dur - 1.0).abs() < 0.02, "duration {dur}");
    }

    #[test]
    fn one_stream_flow_is_window_limited() {
        let (mut net, a, b) = lan_pair();
        // 1 stream at 1 ms floor → 65.5 MB/s cap < 100 MB/s NIC.
        net.start_flow(SimTime::ZERO, spec(a, b, 65.536e6, 1));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        let dur = recs[0].transfer_duration().as_secs_f64();
        assert!((dur - 1.0).abs() < 0.02, "duration {dur}");
    }

    #[test]
    fn two_flows_share_the_nic_fairly() {
        let (mut net, a, b) = lan_pair();
        net.start_flow(SimTime::ZERO, spec(a, b, 50.0e6, 4));
        net.start_flow(SimTime::ZERO, spec(a, b, 50.0e6, 4));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 2);
        // Equal weights: both finish together at ~1s (100 MB total / 100MB/s).
        for r in &recs {
            let dur = r.transfer_duration().as_secs_f64();
            assert!((dur - 1.0).abs() < 0.05, "duration {dur}");
        }
    }

    #[test]
    fn weighted_flows_finish_proportionally() {
        let (mut net, a, b) = lan_pair();
        // Same size, 3:1 stream weights on a 100 MB/s NIC pair.
        let fast = net.start_flow(SimTime::ZERO, spec(a, b, 60.0e6, 3));
        net.start_flow(SimTime::ZERO, spec(a, b, 60.0e6, 1));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        let fast_rec = recs.iter().find(|r| r.flow == fast).unwrap();
        let slow_rec = recs.iter().find(|r| r.flow != fast).unwrap();
        assert!(
            fast_rec.completed_at < slow_rec.completed_at,
            "3-stream flow should finish first"
        );
    }

    #[test]
    fn setup_time_delays_activation() {
        let (net, a, b) = lan_pair();
        let mut model = StreamModel::default();
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.setup_base = SimDuration::from_secs(1);
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        let topo = net.topology().clone();
        let mut net = Network::new(topo, model);
        net.start_flow(SimTime::ZERO, spec(a, b, 1.0e6, 2));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].activated_at >= SimTime::from_secs(1));
        assert!(recs[0].total_duration() > recs[0].transfer_duration());
    }

    #[test]
    fn wan_transfer_matches_paper_bandwidth() {
        let (topo, gridftp, _apache, nfs) = paper_testbed();
        let mut model = StreamModel::default();
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        let mut net = Network::new(topo, model);
        // 8 streams × 1.63 MB/s > 3.5 MB/s WAN → WAN-limited. 35 MB → ~10 s
        // (plus setup and ramp).
        net.start_flow(SimTime::ZERO, spec(gridftp, nfs, 35.0e6, 8));
        net.run_to_completion(SimTime::from_secs(1000));
        let recs = net.take_completed();
        let goodput = recs[0].goodput();
        assert!(
            goodput > 2.8e6 && goodput <= 3.6e6,
            "goodput {goodput} should approach the 3.5 MB/s WAN cap"
        );
    }

    #[test]
    fn peak_streams_tracked_per_link() {
        let (mut net, a, b) = lan_pair();
        net.start_flow(SimTime::ZERO, spec(a, b, 10.0e6, 4));
        net.start_flow(SimTime::ZERO, spec(a, b, 10.0e6, 6));
        let access = net.topology().host(a).access_link;
        net.run_to_completion(SimTime::from_secs(100));
        assert_eq!(net.peak_streams(access), 10);
        assert_eq!(net.current_streams(access), 0);
        assert_eq!(net.total_flows_completed(), 2);
        assert!((net.total_bytes_completed() - 20.0e6).abs() < 1.0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately_after_setup() {
        let (mut net, a, b) = lan_pair();
        net.start_flow(SimTime::ZERO, spec(a, b, 0.0, 1));
        net.run_to_completion(SimTime::from_secs(10));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn staggered_starts_preserve_causality() {
        let (mut net, a, b) = lan_pair();
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6, 2));
        net.start_flow(SimTime::from_secs(2), spec(a, b, 10.0e6, 2));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 2);
        for r in &recs {
            assert!(r.completed_at > r.requested_at);
            assert!(r.activated_at >= r.requested_at);
        }
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn advance_backwards_panics() {
        let (mut net, _a, _b) = lan_pair();
        net.advance(SimTime::from_secs(5));
        net.advance(SimTime::from_secs(1));
    }

    #[test]
    fn next_wakeup_idle_network_is_none() {
        let (net, _a, _b) = lan_pair();
        assert!(net.next_wakeup().is_none());
    }

    #[test]
    fn oversubscription_slows_aggregate_throughput() {
        // Same total bytes, same flow count; the run whose threshold admits
        // 200+ streams must take longer than the one capped near the knee.
        let run = |streams_per_flow: u32| -> f64 {
            let (topo, gridftp, _apache, nfs) = paper_testbed();
            let mut net = Network::new(topo, StreamModel::default());
            for i in 0..20 {
                net.start_flow(
                    SimTime::ZERO,
                    FlowSpec {
                        src: gridftp,
                        dst: nfs,
                        bytes: 30.0e6,
                        streams: streams_per_flow,
                        tag: i,
                    },
                );
            }
            net.run_to_completion(SimTime::from_secs(100_000));
            let recs = net.take_completed();
            assert_eq!(recs.len(), 20);
            recs.iter()
                .map(|r| r.completed_at.as_secs_f64())
                .fold(0.0, f64::max)
        };
        let healthy = run(3); // 60 total streams ≤ knee
        let thrashing = run(10); // 200 total streams
        assert!(
            thrashing > healthy * 1.1,
            "healthy {healthy}s vs thrashing {thrashing}s"
        );
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod fault_tests {
    use super::*;
    use crate::fault::{LinkFault, LinkFaultKind};

    /// Two hosts joined by their access links with clean physics, so fault
    /// arithmetic is exact.
    fn clean_pair() -> (Network, crate::HostId, crate::HostId) {
        let mut t = Topology::new();
        let a = t.add_host("a", 100.0e6);
        let b = t.add_host("b", 100.0e6);
        let mut model = StreamModel::default();
        model.setup_base = SimDuration::ZERO;
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        (Network::new(t, model), a, b)
    }

    fn spec(src: crate::HostId, dst: crate::HostId, bytes: f64) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            bytes,
            streams: 2,
            tag: 0,
        }
    }

    #[test]
    fn mid_transfer_outage_extends_completion_by_its_duration() {
        let (mut net, a, b) = clean_pair();
        let link = net.topology().host(a).access_link;
        // 100 MB over 100 MB/s finishes at 1s unfaulted. A 2s outage in the
        // middle of the transfer stalls it and shifts completion to ~3s.
        net.inject_link_fault(
            SimTime::from_millis(500),
            SimDuration::from_secs(2),
            LinkFault {
                link,
                kind: LinkFaultKind::Down,
            },
        );
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 1);
        let end = recs[0].completed_at.as_secs_f64();
        assert!(
            (end - 3.0).abs() < 0.02,
            "completed at {end}s, expected ~3s"
        );
    }

    #[test]
    fn degradation_slows_the_window_proportionally() {
        let (mut net, a, b) = clean_pair();
        let link = net.topology().host(a).access_link;
        // Half capacity for the whole transfer: 1s of work takes ~2s.
        net.inject_link_fault(
            SimTime::ZERO,
            SimDuration::from_secs(100),
            LinkFault {
                link,
                kind: LinkFaultKind::Degrade(0.5),
            },
        );
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        let end = recs[0].completed_at.as_secs_f64();
        assert!(
            (end - 2.0).abs() < 0.02,
            "completed at {end}s, expected ~2s"
        );
    }

    #[test]
    fn flap_sequence_is_deterministic_per_plan() {
        let run = || {
            let (mut net, a, b) = clean_pair();
            let link = net.topology().host(a).access_link;
            for i in 0..4u64 {
                net.inject_link_fault(
                    SimTime::from_millis(200 + 400 * i),
                    SimDuration::from_millis(150),
                    LinkFault {
                        link,
                        kind: LinkFaultKind::Down,
                    },
                );
            }
            net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6));
            net.run_to_completion(SimTime::from_secs(100));
            (
                net.fault_plan().describe(),
                net.take_completed()[0].completed_at,
            )
        };
        let (desc1, end1) = run();
        let (desc2, end2) = run();
        assert_eq!(desc1, desc2, "fault fingerprints must match");
        assert_eq!(end1, end2, "same plan must give bit-identical completion");
        // 4 flaps × 150 ms stall the 1s transfer by 600 ms.
        let end = end1.as_secs_f64();
        assert!(
            (end - 1.6).abs() < 0.02,
            "completed at {end}s, expected ~1.6s"
        );
    }

    #[test]
    fn faults_on_other_links_are_harmless() {
        // Fault a link the flow never crosses: a third host's access link.
        let mut t = Topology::new();
        let x = t.add_host("x", 100.0e6);
        let y = t.add_host("y", 100.0e6);
        let z = t.add_host("z", 100.0e6);
        let unused = t.host(z).access_link;
        let mut model = StreamModel::default();
        model.setup_base = SimDuration::ZERO;
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        let mut net = Network::new(t, model);
        net.inject_link_fault(
            SimTime::ZERO,
            SimDuration::from_secs(50),
            LinkFault {
                link: unused,
                kind: LinkFaultKind::Down,
            },
        );
        net.start_flow(SimTime::ZERO, spec(x, y, 100.0e6));
        net.run_to_completion(SimTime::from_secs(100));
        let recs = net.take_completed();
        let end = recs[0].completed_at.as_secs_f64();
        assert!(
            (end - 1.0).abs() < 0.02,
            "unrelated fault changed makespan: {end}s"
        );
    }

    #[test]
    fn in_flight_flows_reshare_when_capacity_drops() {
        let (mut net, a, b) = clean_pair();
        let link = net.topology().host(a).access_link;
        // Two equal flows share 100 MB/s; at t=1s the link degrades to 20%,
        // so the remaining bytes drain 5× slower.
        net.inject_link_fault(
            SimTime::from_secs(1),
            SimDuration::from_secs(100),
            LinkFault {
                link,
                kind: LinkFaultKind::Degrade(0.2),
            },
        );
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6));
        net.start_flow(SimTime::ZERO, spec(a, b, 100.0e6));
        net.run_to_completion(SimTime::from_secs(1000));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 2);
        // 200 MB total: 100 MB done in the first second, the remaining
        // 100 MB at 20 MB/s → ~6s overall.
        for r in &recs {
            let end = r.completed_at.as_secs_f64();
            assert!((end - 6.0).abs() < 0.1, "completed at {end}s, expected ~6s");
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod timeline_tests {
    use super::*;
    use crate::topology::paper_testbed;

    #[test]
    fn watched_wan_link_records_saturation() {
        let (topo, gridftp, _apache, nfs) = paper_testbed();
        let wan = topo
            .links()
            .find(|(_, l)| l.name == "wan-tacc-isi")
            .map(|(id, _)| id)
            .unwrap();
        let mut net = Network::with_seed(topo, StreamModel::default(), 1);
        net.watch_link(wan);
        for i in 0..10 {
            net.start_flow(
                SimTime::ZERO,
                FlowSpec {
                    src: gridftp,
                    dst: nfs,
                    bytes: 20.0e6,
                    streams: 4,
                    tag: i,
                },
            );
        }
        net.run_to_completion(SimTime::from_secs(10_000));
        let tl = net.timeline(wan).expect("watched");
        assert!(!tl.samples().is_empty());
        assert_eq!(tl.peak_streams(), 40);
        // Mid-run the WAN is saturated near its 3.5 MB/s capacity.
        let peak_throughput = tl
            .samples()
            .iter()
            .map(|s| s.throughput)
            .fold(0.0, f64::max);
        assert!(
            peak_throughput > 3.0e6 && peak_throughput <= 3.6e6,
            "peak throughput {peak_throughput}"
        );
        // Unwatched links stay unrecorded.
        assert!(net.timeline(LinkId(0)).is_none());
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod connection_limit_tests {
    use super::*;
    use crate::topology::Topology;

    fn limited_pair(max: u32) -> (Network, crate::HostId, crate::HostId) {
        let mut t = Topology::new();
        let a = t.add_host("server", 100.0e6);
        let b = t.add_host("client", 100.0e6);
        t.set_host_connection_limit(a, max);
        let mut model = StreamModel::default();
        model.setup_base = SimDuration::ZERO;
        model.setup_per_stream = SimDuration::ZERO;
        model.setup_rtts = 0.0;
        model.ramp_tau = SimDuration::ZERO;
        model.turbulence_per_event = 0.0;
        model.flow_weight_jitter = 0.0;
        (Network::new(t, model), a, b)
    }

    fn spec(src: crate::HostId, dst: crate::HostId, bytes: f64, tag: u64) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            bytes,
            streams: 2,
            tag,
        }
    }

    #[test]
    fn connection_limit_serializes_excess_flows() {
        // Server allows 2 concurrent connections; 4 equal flows must run as
        // two consecutive pairs → ~double the unconstrained time.
        let (mut net, server, client) = limited_pair(2);
        for i in 0..4 {
            net.start_flow(SimTime::ZERO, spec(server, client, 50.0e6, i));
        }
        net.run_to_completion(SimTime::from_secs(1000));
        let recs = net.take_completed();
        assert_eq!(recs.len(), 4);
        // First pair finishes ~1s (100 MB over 100 MB/s shared by 2);
        // second pair ~2s.
        let mut ends: Vec<f64> = recs.iter().map(|r| r.completed_at.as_secs_f64()).collect();
        ends.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((ends[1] - 1.0).abs() < 0.1, "first pair at {:?}", ends);
        assert!((ends[3] - 2.0).abs() < 0.1, "second pair at {:?}", ends);
        assert_eq!(net.host_connections(server), 0, "slots drained");
    }

    #[test]
    fn queue_promotes_in_fifo_order() {
        let (mut net, server, client) = limited_pair(1);
        let first = net.start_flow(SimTime::ZERO, spec(server, client, 10.0e6, 0));
        let second = net.start_flow(SimTime::ZERO, spec(server, client, 10.0e6, 1));
        let third = net.start_flow(SimTime::ZERO, spec(server, client, 10.0e6, 2));
        net.run_to_completion(SimTime::from_secs(1000));
        let recs = net.take_completed();
        let order: Vec<FlowId> = {
            let mut r: Vec<_> = recs.iter().map(|r| (r.completed_at, r.flow)).collect();
            r.sort();
            r.into_iter().map(|(_, f)| f).collect()
        };
        assert_eq!(order, vec![first, second, third]);
    }

    #[test]
    fn unlimited_hosts_never_queue() {
        let (mut net, server, client) = {
            let mut t = Topology::new();
            let a = t.add_host("server", 100.0e6);
            let b = t.add_host("client", 100.0e6);
            let mut model = StreamModel::default();
            model.flow_weight_jitter = 0.0;
            (Network::new(t, model), a, b)
        };
        for i in 0..50 {
            net.start_flow(SimTime::ZERO, spec(server, client, 1.0e6, i));
        }
        net.run_to_completion(SimTime::from_secs(1000));
        assert_eq!(net.take_completed().len(), 50);
    }

    #[test]
    fn limit_applies_at_the_destination_too() {
        let (mut net, server, client) = {
            let mut t = Topology::new();
            let a = t.add_host("server", 100.0e6);
            let b = t.add_host("client", 100.0e6);
            t.set_host_connection_limit(b, 1);
            let mut model = StreamModel::default();
            model.setup_base = SimDuration::ZERO;
            model.setup_per_stream = SimDuration::ZERO;
            model.setup_rtts = 0.0;
            model.ramp_tau = SimDuration::ZERO;
            model.turbulence_per_event = 0.0;
            model.flow_weight_jitter = 0.0;
            (Network::new(t, model), a, b)
        };
        net.start_flow(SimTime::ZERO, spec(server, client, 100.0e6, 0));
        net.start_flow(SimTime::ZERO, spec(server, client, 100.0e6, 1));
        net.run_to_completion(SimTime::from_secs(1000));
        let recs = net.take_completed();
        // Serialized: 1s then 2s, not both at 2s.
        let mut ends: Vec<f64> = recs.iter().map(|r| r.completed_at.as_secs_f64()).collect();
        ends.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((ends[0] - 1.0).abs() < 0.05, "{ends:?}");
        assert!((ends[1] - 2.0).abs() < 0.05, "{ends:?}");
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod proptests {
    use super::*;
    use crate::topology::paper_testbed;
    use proptest::prelude::*;

    /// Arbitrary batch of flows on the paper testbed (mix of WAN and LAN).
    fn arb_flows() -> impl Strategy<Value = Vec<(bool, f64, u32, u64)>> {
        proptest::collection::vec(
            (
                any::<bool>(),   // true = WAN (gridftp→nfs), false = LAN (apache→nfs)
                1.0e4..2.0e8f64, // bytes
                1u32..16,        // streams
                0u64..10,        // start delay (seconds)
            ),
            1..24,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every flow eventually completes, exactly once, and the records
        /// are causally consistent.
        #[test]
        fn all_flows_complete_exactly_once(flows in arb_flows()) {
            let (topo, gridftp, apache, nfs) = paper_testbed();
            let mut net = Network::with_seed(topo, StreamModel::default(), 42);
            let n = flows.len();
            for (i, (wan, bytes, streams, delay)) in flows.into_iter().enumerate() {
                let src = if wan { gridftp } else { apache };
                net.advance(net.now().max(SimTime::from_secs(delay)));
                net.start_flow(net.now(), FlowSpec {
                    src,
                    dst: nfs,
                    bytes,
                    streams,
                    tag: i as u64,
                });
            }
            net.run_to_completion(SimTime::from_secs(1_000_000));
            let recs = net.take_completed();
            prop_assert_eq!(recs.len(), n);
            let mut tags: Vec<u64> = recs.iter().map(|r| r.tag).collect();
            tags.sort_unstable();
            let expected: Vec<u64> = (0..n as u64).collect();
            prop_assert_eq!(tags, expected);
            for r in &recs {
                prop_assert!(r.activated_at >= r.requested_at);
                prop_assert!(r.completed_at > r.activated_at || r.bytes < 1.0);
            }
        }

        /// Goodput never exceeds the bottleneck capacity of the route, and
        /// aggregate bytes accounting matches.
        #[test]
        fn goodput_bounded_by_bottleneck(flows in arb_flows()) {
            let (topo, gridftp, apache, nfs) = paper_testbed();
            let mut net = Network::with_seed(topo, StreamModel::default(), 7);
            let mut total = 0.0;
            for (i, (wan, bytes, streams, _)) in flows.iter().enumerate() {
                let src = if *wan { gridftp } else { apache };
                total += bytes;
                net.start_flow(SimTime::ZERO, FlowSpec {
                    src,
                    dst: nfs,
                    bytes: *bytes,
                    streams: *streams,
                    tag: i as u64,
                });
            }
            net.run_to_completion(SimTime::from_secs(1_000_000));
            let recs = net.take_completed();
            prop_assert!((net.total_bytes_completed() - total).abs() < 1.0);
            for r in &recs {
                let cap = if r.src == gridftp { 3.5e6 } else { 110.0e6 };
                // A single flow's goodput can never exceed its bottleneck
                // (small slack for the fluid integrator's microsecond grid).
                prop_assert!(
                    r.goodput() <= cap * 1.01 + 1.0,
                    "flow {} goodput {} over cap {}", r.tag, r.goodput(), cap
                );
            }
        }

        /// Identical inputs + identical seed ⇒ identical completion times.
        #[test]
        fn deterministic_under_fixed_seed(flows in arb_flows()) {
            let run = |seed: u64, flows: &[(bool, f64, u32, u64)]| {
                let (topo, gridftp, apache, nfs) = paper_testbed();
                let mut net = Network::with_seed(topo, StreamModel::default(), seed);
                for (i, (wan, bytes, streams, _)) in flows.iter().enumerate() {
                    let src = if *wan { gridftp } else { apache };
                    net.start_flow(SimTime::ZERO, FlowSpec {
                        src, dst: nfs, bytes: *bytes, streams: *streams, tag: i as u64,
                    });
                }
                net.run_to_completion(SimTime::from_secs(1_000_000));
                net.take_completed()
                    .into_iter()
                    .map(|r| (r.tag, r.completed_at))
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(run(3, &flows), run(3, &flows));
        }

        /// Stream accounting: peaks never exceed the sum of all flows'
        /// streams, and every link ends idle.
        #[test]
        fn stream_accounting_is_conservative(flows in arb_flows()) {
            let (topo, gridftp, apache, nfs) = paper_testbed();
            let total_streams: u32 = flows.iter().map(|(_, _, s, _)| *s.max(&1)).sum();
            let mut net = Network::with_seed(topo, StreamModel::default(), 5);
            for (i, (wan, bytes, streams, _)) in flows.iter().enumerate() {
                let src = if *wan { gridftp } else { apache };
                net.start_flow(SimTime::ZERO, FlowSpec {
                    src, dst: nfs, bytes: *bytes, streams: *streams, tag: i as u64,
                });
            }
            net.run_to_completion(SimTime::from_secs(1_000_000));
            let links: Vec<LinkId> = net.topology().links().map(|(id, _)| id).collect();
            for link in links {
                prop_assert!(net.peak_streams(link) <= total_streams);
                prop_assert_eq!(net.current_streams(link), 0, "link {} not drained", link);
            }
        }
    }
}
