//! Start a policy REST server on an ephemeral loopback port and serve until
//! killed. Handy for poking the wire API with curl:
//!
//! ```text
//! cargo run -p pwm-rest --example serve
//! curl http://127.0.0.1:<port>/sessions/default/status
//! ```

use pwm_core::{PolicyConfig, PolicyController};
use pwm_rest::PolicyRestServer;

fn main() {
    let controller = PolicyController::new(PolicyConfig::default());
    let server = PolicyRestServer::start(controller).expect("bind loopback listener");
    println!("listening on http://{}", server.addr());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
