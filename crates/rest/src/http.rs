//! A minimal HTTP/1.1 implementation over `std::net`.
//!
//! Exactly what the loopback REST interface needs and nothing more:
//! `Content-Length` bodies, keep-alive and pipelining (HTTP/1.1 defaults),
//! no chunked encoding, no TLS. Stands in for the paper's Apache Tomcat
//! container.
//!
//! Two API styles share one grammar:
//!
//! * **Blocking readers** ([`read_request`], [`read_response`]) pull from a
//!   stream until one message is complete — the original one-message-per-
//!   connection path.
//! * **Pure incremental parsers** ([`try_parse_request`],
//!   [`try_parse_response`]) inspect a byte buffer and either yield a
//!   complete message plus its consumed length, report "incomplete", or
//!   reject. The event-driven server and the pipelining client run these
//!   over per-connection accumulation buffers, so several pipelined
//!   messages parse out of one buffer back to back.

use bytes::BytesMut;
use std::io::{Read, Write};

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read-only retrieval.
    Get,
    /// Submit a request list or report.
    Post,
    /// Replace configuration.
    Put,
    /// Remove a session.
    Delete,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        }
    }
}

/// Body encodings the API speaks — the paper: "using XML or JSON data
/// structures".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// `application/json` (the default).
    #[default]
    Json,
    /// `application/xml`.
    Xml,
    /// `text/plain` — Prometheus exposition format (`/metrics` responses
    /// only; request bodies are never parsed as text).
    Text,
}

impl WireFormat {
    /// The Content-Type header value.
    pub fn content_type(self) -> &'static str {
        match self {
            WireFormat::Json => "application/json",
            WireFormat::Xml => "application/xml",
            WireFormat::Text => "text/plain; version=0.0.4; charset=utf-8",
        }
    }

    fn from_content_type(value: &str) -> WireFormat {
        if value.trim().starts_with("application/xml") || value.trim().starts_with("text/xml") {
            WireFormat::Xml
        } else {
            WireFormat::Json
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path component (no query parsing; the API doesn't use queries).
    pub path: String,
    /// Body bytes (JSON or XML per `format`).
    pub body: Vec<u8>,
    /// Negotiated body encoding (from the Content-Type header).
    pub format: WireFormat,
    /// Whether the client wants the connection kept open after the
    /// response (HTTP/1.1 default unless `Connection: close`; HTTP/1.0
    /// default unless `Connection: keep-alive`).
    pub keep_alive: bool,
}

/// An HTTP response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 400, 404, 500...).
    pub status: u16,
    /// Body bytes (JSON or XML per `format`).
    pub body: Vec<u8>,
    /// Body encoding (sets the Content-Type header).
    pub format: WireFormat,
}

impl Response {
    /// 200 with a JSON body.
    pub fn ok_json(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            format: WireFormat::Json,
        }
    }

    /// 200 with a body in the given format.
    pub fn ok(format: WireFormat, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            format,
        }
    }

    /// 200 with a plain-text body (Prometheus exposition format).
    pub fn ok_text(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            body: body.into(),
            format: WireFormat::Text,
        }
    }

    /// An error status with an error envelope in the given format.
    pub fn error_in(format: WireFormat, status: u16, message: &str) -> Response {
        let body = match format {
            WireFormat::Json => serde_json::to_vec(&crate::wire::ErrorEnvelope {
                error: message.to_string(),
            })
            .unwrap_or_else(|_| b"{\"error\":\"internal\"}".to_vec()),
            WireFormat::Xml => crate::xml::error_xml(message).into_bytes(),
            WireFormat::Text => message.as_bytes().to_vec(),
        };
        Response {
            status,
            body,
            format,
        }
    }

    /// An error status with a JSON error envelope.
    pub fn error(status: u16, message: &str) -> Response {
        Self::error_in(WireFormat::Json, status, message)
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Errors reading or parsing a request.
#[derive(Debug)]
pub enum HttpError {
    /// Socket error.
    Io(std::io::Error),
    /// Malformed request line/headers/body.
    Malformed(String),
    /// Declared or observed size exceeds the configured cap (HTTP 413).
    /// Raised before the body is read, so an attacker cannot make the
    /// server buffer it.
    TooLarge(String),
    /// The peer stalled past the socket read deadline (HTTP 408). This is
    /// the slow-loris guard: without a deadline a client trickling one
    /// byte per minute pins a server thread forever.
    Timeout,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http io error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed http: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::Timeout => write!(f, "read timed out"),
        }
    }
}
impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        // `set_read_timeout` expiry surfaces as WouldBlock on Unix and
        // TimedOut on Windows; both mean "peer too slow", not "socket bad".
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

/// Upper bound on header + body size (sanity guard, 64 MiB).
const MAX_REQUEST: usize = 64 << 20;

/// Read one request from a stream with the default 64 MiB cap.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    read_request_limited(stream, MAX_REQUEST)
}

/// Read one request, rejecting bodies over `max_body` bytes with
/// [`HttpError::TooLarge`] *before* reading them (the declared
/// Content-Length is checked first).
pub fn read_request_limited(stream: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    let mut buf = BytesMut::with_capacity(4096);
    loop {
        if let Some((request, _consumed)) = try_parse_request(&buf, max_body)? {
            return Ok(request);
        }
        let mut chunk = [0u8; 8192];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-request".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Try to parse one complete request off the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, `Ok(Some((request,
/// consumed)))` when a full request (head + declared body) is present —
/// `consumed` is how many bytes the caller must drop from the buffer — and
/// an error for malformed or oversized input. A declared Content-Length
/// over `max_body` is rejected as soon as the head is complete, before any
/// body bytes are waited for.
pub fn try_parse_request(
    buf: &[u8],
    max_body: usize,
) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_end) = find_separator(buf) else {
        if buf.len() > MAX_REQUEST {
            return Err(HttpError::TooLarge("headers too large".into()));
        }
        return Ok(None);
    };
    let head_text = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-utf8 header block".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| HttpError::Malformed(format!("bad method in {request_line:?}")))?;
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".into()))?
        .to_string();
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; the Connection
    // header overrides either way.
    let mut keep_alive = parts.next() != Some("HTTP/1.0");

    let mut content_length = 0usize;
    let mut format = WireFormat::Json;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed("bad content-length".into()))?;
            } else if name.eq_ignore_ascii_case("content-type") {
                format = WireFormat::from_content_type(value);
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    if content_length > max_body.min(MAX_REQUEST) {
        return Err(HttpError::TooLarge(format!(
            "content-length {content_length} exceeds cap {}",
            max_body.min(MAX_REQUEST)
        )));
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method,
            path,
            body: buf[body_start..body_start + content_length].to_vec(),
            format,
            keep_alive,
        },
        body_start + content_length,
    )))
}

/// Try to parse one complete response off the front of `buf` (client side
/// of a keep-alive/pipelined connection).
///
/// Returns `Ok(None)` when more bytes are needed and `Ok(Some((status,
/// body, consumed)))` for a full response. Responses must carry a
/// Content-Length (every response this server writes does); connection-
/// close framing is only supported by the blocking [`read_response`].
pub fn try_parse_response(buf: &[u8]) -> Result<Option<(u16, Vec<u8>, usize)>, HttpError> {
    let Some(head_end) = find_separator(buf) else {
        if buf.len() > MAX_REQUEST {
            return Err(HttpError::Malformed("response head too large".into()));
        }
        return Ok(None);
    };
    let head_text = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-utf8 response head".into()))?;
    let mut lines = head_text.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty response".into()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut content_length = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let len = content_length
        .ok_or_else(|| HttpError::Malformed("pipelined response without content-length".into()))?;
    if len > MAX_REQUEST {
        return Err(HttpError::Malformed("response too large".into()));
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + len {
        return Ok(None);
    }
    Ok(Some((
        status,
        buf[body_start..body_start + len].to_vec(),
        body_start + len,
    )))
}

/// Read until the header/body separator; returns (head bytes, extra body
/// bytes already read).
fn read_head(stream: &mut impl Read) -> Result<(Vec<u8>, BytesMut), HttpError> {
    let mut buf = BytesMut::with_capacity(4096);
    loop {
        if let Some(pos) = find_separator(&buf) {
            let body = buf.split_off(pos + 4);
            let mut head = buf.to_vec();
            head.truncate(pos);
            return Ok((head, body));
        }
        if buf.len() > MAX_REQUEST {
            return Err(HttpError::TooLarge("headers too large".into()));
        }
        let mut chunk = [0u8; 8192];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-headers".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_separator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write one request to a stream (client side), JSON-encoded.
pub fn write_request(
    stream: &mut impl Write,
    method: Method,
    path: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_request_in(stream, WireFormat::Json, method, path, body)
}

/// Write one request with an explicit body format (single-shot,
/// `Connection: close`).
pub fn write_request_in(
    stream: &mut impl Write,
    format: WireFormat,
    method: Method,
    path: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let wire = render_request(format, method, path, body, false);
    stream.write_all(&wire)?;
    stream.flush()
}

/// Serialize one request to bytes. `keep_alive` selects the Connection
/// header; pipelining clients render several keep-alive requests into one
/// buffer and write them with a single syscall.
pub fn render_request(
    format: WireFormat,
    method: Method,
    path: &str,
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let mut wire = Vec::with_capacity(160 + body.len());
    let _ = write!(
        wire,
        "{} {} HTTP/1.1\r\nHost: localhost\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        method.as_str(),
        path,
        format.content_type(),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    wire.extend_from_slice(body);
    wire
}

/// Write one response to a stream (server side, `Connection: close`).
pub fn write_response(stream: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let wire = render_response(response, false);
    stream.write_all(&wire)?;
    stream.flush()
}

/// Serialize one response to bytes. The event-driven server appends these
/// to a connection's write buffer, so pipelined responses flush in one
/// write.
pub fn render_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut wire = Vec::with_capacity(128 + response.body.len());
    let _ = write!(
        wire,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        response.status_text(),
        response.format.content_type(),
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    wire.extend_from_slice(&response.body);
    wire
}

/// Read one response from a stream (client side). Returns (status, body).
pub fn read_response(stream: &mut impl Read) -> Result<(u16, Vec<u8>), HttpError> {
    let (head, mut buffered_body) = read_head(stream)?;
    let head_text = String::from_utf8(head)
        .map_err(|_| HttpError::Malformed("non-utf8 response head".into()))?;
    let mut lines = head_text.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty response".into()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut content_length = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    match content_length {
        Some(len) => {
            if len > MAX_REQUEST {
                return Err(HttpError::Malformed("response too large".into()));
            }
            while buffered_body.len() < len {
                let mut chunk = [0u8; 8192];
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(HttpError::Malformed("truncated response".into()));
                }
                buffered_body.extend_from_slice(&chunk[..n]);
            }
            buffered_body.truncate(len);
            Ok((status, buffered_body.to_vec()))
        }
        None => {
            // Connection-close framing: read to EOF.
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest)?;
            let mut body = buffered_body.to_vec();
            body.extend_from_slice(&rest);
            Ok((status, body))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(method: Method, path: &str, body: &[u8]) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, method, path, body).unwrap();
        read_request(&mut Cursor::new(wire)).unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let r = roundtrip_request(Method::Post, "/sessions/default/transfers", b"{\"x\":1}");
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.path, "/sessions/default/transfers");
        assert_eq!(r.body, b"{\"x\":1}");
    }

    #[test]
    fn empty_body_request() {
        let r = roundtrip_request(Method::Get, "/health", b"");
        assert_eq!(r.method, Method::Get);
        assert!(r.body.is_empty());
    }

    #[test]
    fn large_body_roundtrip() {
        let body = vec![b'a'; 100_000];
        let r = roundtrip_request(Method::Put, "/config", &body);
        assert_eq!(r.body.len(), 100_000);
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        write_response(&mut wire, &Response::ok_json(b"[1,2,3]".to_vec())).unwrap();
        let (status, body) = read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"[1,2,3]");
    }

    #[test]
    fn error_response_has_json_envelope() {
        let mut wire = Vec::new();
        write_response(&mut wire, &Response::error(404, "nope")).unwrap();
        let (status, body) = read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(status, 404);
        let e: crate::wire::ErrorEnvelope = serde_json::from_slice(&body).unwrap();
        assert_eq!(e.error, "nope");
    }

    #[test]
    fn malformed_method_rejected() {
        let wire = b"BREW /coffee HTTP/1.1\r\n\r\n".to_vec();
        assert!(read_request(&mut Cursor::new(wire)).is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc".to_vec();
        assert!(read_request(&mut Cursor::new(wire)).is_err());
    }

    #[test]
    fn missing_separator_rejected() {
        let wire = b"GET /x HTTP/1.1\r\nHeader: v".to_vec();
        assert!(read_request(&mut Cursor::new(wire)).is_err());
    }

    #[test]
    fn oversized_content_length_rejected() {
        let wire = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            1usize << 40
        );
        assert!(matches!(
            read_request(&mut Cursor::new(wire.into_bytes())),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn body_cap_rejects_before_reading_the_body() {
        // A reader that panics if the parser tries to pull body bytes: the
        // declared Content-Length alone must trigger the rejection.
        struct HeadOnly(Option<Vec<u8>>);
        impl Read for HeadOnly {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.take() {
                    Some(head) => {
                        buf[..head.len()].copy_from_slice(&head);
                        Ok(head.len())
                    }
                    None => panic!("body was read despite oversized Content-Length"),
                }
            }
        }
        let head = b"POST /x HTTP/1.1\r\nContent-Length: 2048\r\n\r\n".to_vec();
        let err = read_request_limited(&mut HeadOnly(Some(head)), 1024).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge(_)));
    }

    #[test]
    fn body_cap_allows_requests_under_the_limit() {
        let mut wire = Vec::new();
        write_request(&mut wire, Method::Post, "/x", b"small").unwrap();
        let r = read_request_limited(&mut Cursor::new(wire), 1024).unwrap();
        assert_eq!(r.body, b"small");
    }

    #[test]
    fn stalled_socket_classifies_as_timeout() {
        struct Stalled;
        impl Read for Stalled {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        assert!(matches!(
            read_request(&mut Stalled),
            Err(HttpError::Timeout)
        ));
        struct TimedOut;
        impl Read for TimedOut {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::TimedOut))
            }
        }
        assert!(matches!(
            read_request(&mut TimedOut),
            Err(HttpError::Timeout)
        ));
    }

    #[test]
    fn timeout_status_lines_render() {
        for (status, text) in [(408u16, "Request Timeout"), (413, "Payload Too Large")] {
            let mut wire = Vec::new();
            write_response(&mut wire, &Response::error(status, "x")).unwrap();
            let head = String::from_utf8_lossy(&wire).to_string();
            assert!(head.starts_with(&format!("HTTP/1.1 {status} {text}\r\n")));
        }
    }

    #[test]
    fn body_split_across_reads() {
        // Simulate a stream delivering the head and body in separate reads.
        struct TwoPart(Vec<Vec<u8>>, usize);
        impl Read for TwoPart {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                let chunk = &self.0[self.1];
                buf[..chunk.len()].copy_from_slice(chunk);
                self.1 += 1;
                Ok(chunk.len())
            }
        }
        let mut stream = TwoPart(
            vec![
                b"POST /x HTTP/1.1\r\nContent-Length: 6\r\n\r\nab".to_vec(),
                b"cdef".to_vec(),
            ],
            0,
        );
        let r = read_request(&mut stream).unwrap();
        assert_eq!(r.body, b"abcdef");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    proptest! {
        /// The parser must never panic on arbitrary bytes — it either
        /// produces a request or an error.
        #[test]
        fn parser_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let _ = read_request(&mut Cursor::new(bytes.clone()));
            let _ = read_response(&mut Cursor::new(bytes));
        }

        /// Any method/path/body combination round-trips through the wire
        /// format losslessly.
        #[test]
        fn request_roundtrip_lossless(
            method_ix in 0usize..4,
            path in "/[a-z0-9/_-]{0,64}",
            body in proptest::collection::vec(any::<u8>(), 0..4096),
        ) {
            let method = [Method::Get, Method::Post, Method::Put, Method::Delete][method_ix];
            let mut wire = Vec::new();
            write_request(&mut wire, method, &path, &body).unwrap();
            let parsed = read_request(&mut Cursor::new(wire)).unwrap();
            prop_assert_eq!(parsed.method, method);
            prop_assert_eq!(parsed.path, path);
            prop_assert_eq!(parsed.body, body);
        }

        /// Responses round-trip for every status the server emits.
        #[test]
        fn response_roundtrip_lossless(
            status_ix in 0usize..5,
            body in proptest::collection::vec(any::<u8>(), 0..4096),
        ) {
            let status = [200u16, 400, 404, 405, 500][status_ix];
            let mut wire = Vec::new();
            write_response(&mut wire, &Response { status, body: body.clone(), format: WireFormat::Json }).unwrap();
            let (s, b) = read_response(&mut Cursor::new(wire)).unwrap();
            prop_assert_eq!(s, status);
            prop_assert_eq!(b, body);
        }

        /// A valid request with the body delivered in arbitrary chunk sizes
        /// parses identically (stream reassembly).
        #[test]
        fn chunked_delivery_is_equivalent(
            body in proptest::collection::vec(any::<u8>(), 1..512),
            chunk in 1usize..64,
        ) {
            let mut wire = Vec::new();
            write_request(&mut wire, Method::Post, "/x", &body).unwrap();
            struct Chunked(Vec<u8>, usize, usize);
            impl std::io::Read for Chunked {
                fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                    if self.1 >= self.0.len() { return Ok(0); }
                    let n = self.2.min(buf.len()).min(self.0.len() - self.1);
                    buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                    self.1 += n;
                    Ok(n)
                }
            }
            let parsed = read_request(&mut Chunked(wire, 0, chunk)).unwrap();
            prop_assert_eq!(parsed.body, body);
        }
    }
}
