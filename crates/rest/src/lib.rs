//! # pwm-rest — the RESTful web interface of the Policy Service
//!
//! The paper's Fig. 1 puts the Policy Service behind "an Apache Tomcat
//! Container ... [and] a RESTful Web Interface [that] allows access to the
//! policy service over the web using XML or JSON data structures". This
//! crate is that layer, built from scratch on `std::net`:
//!
//! * [`wire`] — the JSON envelopes of the API,
//! * [`fastjson`] — a hand-rolled codec for the hot transfer-advice
//!   envelopes (strict-subset parser with serde fallback, byte-identical
//!   renderer),
//! * [`xml`] — the XML wire encoding (the paper: "XML or JSON"), selected
//!   per request by the Content-Type header,
//! * [`http`] — a minimal HTTP/1.1 reader/writer with incremental parsers
//!   for keep-alive pipelining (the Tomcat substitute),
//! * [`poller`] — the `poll(2)` readiness shim and self-pipe waker behind
//!   the event loop,
//! * [`server`] — [`PolicyRestServer`], a nonblocking event-driven loopback
//!   TCP server delegating to a `pwm_core::PolicyController`; pipelined
//!   same-session transfer requests collapse into one batched rules pass,
//! * [`client`] — [`PolicyRestClient`], the blocking keep-alive client the
//!   modified Pegasus Transfer Tool uses; it implements
//!   `pwm_core::transport::PolicyTransport` so the workflow substrate can
//!   switch between in-process and over-the-wire callouts, and offers a
//!   pipelined batch API for high-throughput callers.
//!
//! ```
//! use pwm_core::{PolicyConfig, PolicyController, PolicyTransport, DEFAULT_SESSION};
//! use pwm_rest::{PolicyRestClient, PolicyRestServer};
//!
//! let controller = PolicyController::new(PolicyConfig::default());
//! let server = PolicyRestServer::start(controller).unwrap();
//! let client = PolicyRestClient::new(server.addr(), DEFAULT_SESSION);
//! assert!(client.health());
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod fastjson;
pub mod http;
pub mod poller;
pub mod server;
pub mod wire;
pub mod xml;

pub use client::PolicyRestClient;
pub use http::HttpError;
pub use http::{Method, Request, Response, WireFormat};
pub use server::{PolicyRestServer, ServerLimits};
pub use wire::{
    AckEnvelope, CleanupCompletionEnvelope, CleanupRequestEnvelope, CleanupResponseEnvelope,
    ErrorEnvelope, StatusEnvelope, TransferCompletionEnvelope, TransferRequestEnvelope,
    TransferResponseEnvelope,
};
