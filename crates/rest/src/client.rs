//! The RESTful web interface (client side).
//!
//! [`PolicyRestClient`] is the blocking HTTP client the modified Pegasus
//! Transfer Tool uses: it serializes request lists to JSON, POSTs them to
//! the Policy Service, and deserializes the advice. It also implements
//! [`PolicyTransport`], so the workflow substrate can swap between
//! in-process and over-the-wire policy callouts without code changes.
//!
//! The client keeps one HTTP/1.1 connection alive across calls and
//! reconnects transparently when the server has closed it (one retry).
//! [`PolicyRestClient::evaluate_transfers_pipelined`] writes a whole window
//! of requests before reading any response — the server batches such a
//! window into a single rules pass, which is the mechanism svcbench
//! measures.

use crate::http::{render_request, try_parse_response, HttpError, Method, WireFormat};
use crate::wire::*;
use pwm_core::transport::{PolicyTransport, TransportError};
use pwm_core::{
    CleanupAdvice, CleanupOutcome, CleanupSpec, PolicyConfig, TransferAdvice, TransferOutcome,
    TransferSpec,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// A keep-alive connection with a buffered reader: pipelined responses may
/// arrive packed into one segment, so leftovers after one parsed response
/// must carry over to the next.
struct ClientConn {
    stream: TcpStream,
    leftover: Vec<u8>,
}

impl ClientConn {
    fn connect(addr: SocketAddr, timeout: Duration) -> Result<ClientConn, TransportError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| TransportError::Io(format!("connect {addr}: {e}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|_| stream.set_write_timeout(Some(timeout)))
            .and_then(|_| stream.set_nodelay(true))
            .map_err(|e| TransportError::Io(format!("socket setup: {e}")))?;
        Ok(ClientConn {
            stream,
            leftover: Vec::new(),
        })
    }

    fn send(&mut self, wire: &[u8]) -> Result<(), TransportError> {
        self.stream
            .write_all(wire)
            .and_then(|_| self.stream.flush())
            .map_err(|e| TransportError::Io(format!("send: {e}")))
    }

    /// Read one response, preserving any bytes of the next pipelined
    /// response that arrived in the same segment.
    fn read_one(&mut self) -> Result<(u16, Vec<u8>), TransportError> {
        loop {
            match try_parse_response(&self.leftover) {
                Ok(Some((status, body, consumed))) => {
                    self.leftover.drain(..consumed);
                    return Ok((status, body));
                }
                Ok(None) => {}
                Err(e) => return Err(TransportError::Io(format!("recv: {e}"))),
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|e| TransportError::Io(format!("recv: {}", HttpError::from(e))))?;
            if n == 0 {
                return Err(TransportError::Io("recv: connection closed".into()));
            }
            self.leftover.extend_from_slice(&chunk[..n]);
        }
    }
}

/// A blocking JSON-over-HTTP client for the policy API with a persistent
/// keep-alive connection.
pub struct PolicyRestClient {
    addr: SocketAddr,
    session: String,
    timeout: Duration,
    format: WireFormat,
    conn: Mutex<Option<ClientConn>>,
}

impl std::fmt::Debug for PolicyRestClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyRestClient")
            .field("addr", &self.addr)
            .field("session", &self.session)
            .field("timeout", &self.timeout)
            .field("format", &self.format)
            .finish()
    }
}

impl Clone for PolicyRestClient {
    /// Clones share configuration but not the connection — each clone
    /// opens its own keep-alive socket on first use (connections are not
    /// safely shareable across threads interleaving requests).
    fn clone(&self) -> Self {
        PolicyRestClient {
            addr: self.addr,
            session: self.session.clone(),
            timeout: self.timeout,
            format: self.format,
            conn: Mutex::new(None),
        }
    }
}

impl PolicyRestClient {
    /// Client for `session` on the server at `addr`.
    pub fn new(addr: SocketAddr, session: impl Into<String>) -> Self {
        PolicyRestClient {
            addr,
            session: session.into(),
            timeout: Duration::from_secs(10),
            format: WireFormat::Json,
            conn: Mutex::new(None),
        }
    }

    /// Choose the wire encoding (the paper's interface speaks "XML or JSON
    /// data structures"; JSON is the default).
    pub fn with_format(mut self, format: WireFormat) -> Self {
        self.format = format;
        self
    }

    /// Override the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Run `op` against the persistent connection. A reused connection may
    /// be stale (the server timed it out between calls), so an I/O failure
    /// on a reused connection is retried once on a fresh one.
    fn with_conn<R>(
        &self,
        op: impl Fn(&mut ClientConn) -> Result<R, TransportError>,
    ) -> Result<R, TransportError> {
        let mut slot = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let reused = slot.is_some();
        if slot.is_none() {
            *slot = Some(ClientConn::connect(self.addr, self.timeout)?);
        }
        match op(slot.as_mut().expect("connection just ensured")) {
            Ok(r) => Ok(r),
            Err(e) => {
                *slot = None;
                if !reused {
                    return Err(e);
                }
                // Stale keep-alive connection: reconnect and retry once.
                let mut fresh = ClientConn::connect(self.addr, self.timeout)?;
                let result = op(&mut fresh);
                if result.is_ok() {
                    *slot = Some(fresh);
                }
                result
            }
        }
    }

    /// Raw round-trip in a specific wire format over the persistent
    /// connection.
    fn call_raw(
        &self,
        format: WireFormat,
        method: Method,
        path: &str,
        body: &[u8],
    ) -> Result<Vec<u8>, TransportError> {
        let wire = render_request(format, method, path, body, true);
        let (status, response_body) = self.with_conn(|conn| {
            conn.send(&wire)?;
            conn.read_one()
        })?;
        if status != 200 {
            let message = serde_json::from_slice::<ErrorEnvelope>(&response_body)
                .map(|e| e.error)
                .unwrap_or_else(|_| String::from_utf8_lossy(&response_body).to_string());
            return Err(TransportError::Service(message));
        }
        Ok(response_body)
    }

    /// Evaluate several request groups in one pipelined window: all
    /// requests are written back to back before any response is read, so
    /// the event-driven server drains them into a single batched rules
    /// pass. Returns one advice list per group, in order.
    pub fn evaluate_transfers_pipelined(
        &self,
        groups: &[Vec<TransferSpec>],
    ) -> Result<Vec<Vec<TransferAdvice>>, TransportError> {
        if groups.is_empty() {
            return Ok(Vec::new());
        }
        let path = format!("/sessions/{}/transfers", self.session);
        let mut wire = Vec::new();
        for group in groups {
            let body = serde_json::to_vec(&TransferRequestEnvelope {
                transfers: group.clone(),
            })
            .map_err(|e| TransportError::Io(format!("encode: {e}")))?;
            wire.extend_from_slice(&render_request(
                WireFormat::Json,
                Method::Post,
                &path,
                &body,
                true,
            ));
        }
        let responses = self.with_conn(|conn| {
            conn.send(&wire)?;
            let mut responses = Vec::with_capacity(groups.len());
            for _ in groups {
                responses.push(conn.read_one()?);
            }
            Ok(responses)
        })?;
        responses
            .into_iter()
            .map(|(status, body)| {
                if status != 200 {
                    let message = serde_json::from_slice::<ErrorEnvelope>(&body)
                        .map(|e| e.error)
                        .unwrap_or_else(|_| String::from_utf8_lossy(&body).to_string());
                    return Err(TransportError::Service(message));
                }
                serde_json::from_slice::<TransferResponseEnvelope>(&body)
                    .map(|env| env.advice)
                    .map_err(|e| TransportError::Io(format!("decode: {e}")))
            })
            .collect()
    }

    fn call<Req: serde::Serialize, Resp: serde::de::DeserializeOwned>(
        &self,
        method: Method,
        path: &str,
        payload: &Req,
    ) -> Result<Resp, TransportError> {
        let body =
            serde_json::to_vec(payload).map_err(|e| TransportError::Io(format!("encode: {e}")))?;
        let response_body = self.call_raw(WireFormat::Json, method, path, &body)?;
        serde_json::from_slice(&response_body)
            .map_err(|e| TransportError::Io(format!("decode: {e}")))
    }

    fn call_xml<T>(
        &self,
        method: Method,
        path: &str,
        body: String,
        decode: impl FnOnce(&str) -> Result<T, crate::xml::XmlError>,
    ) -> Result<T, TransportError> {
        let response_body = self.call_raw(WireFormat::Xml, method, path, body.as_bytes())?;
        let text = std::str::from_utf8(&response_body)
            .map_err(|e| TransportError::Io(format!("non-utf8 xml response: {e}")))?;
        decode(text).map_err(|e| TransportError::Io(format!("decode: {e}")))
    }

    /// GET `/health`; true when the service answers.
    pub fn health(&self) -> bool {
        #[derive(serde::Deserialize)]
        struct Health {
            status: String,
        }
        // health takes no payload; send an empty tuple which serializes to null.
        let result: Result<Health, _> = self.call(Method::Get, "/health", &());
        matches!(result, Ok(h) if h.status == "ok")
    }

    /// PUT the session's policy configuration (creates the session if new).
    pub fn put_config(&self, config: &PolicyConfig) -> Result<(), TransportError> {
        let _: AckEnvelope = self.call(
            Method::Put,
            &format!("/sessions/{}/config", self.session),
            config,
        )?;
        Ok(())
    }

    /// GET `/metrics` — the Prometheus text exposition covering every
    /// session on the server.
    pub fn metrics(&self) -> Result<String, TransportError> {
        let body = self.call_raw(WireFormat::Json, Method::Get, "/metrics", b"")?;
        String::from_utf8(body).map_err(|e| TransportError::Io(format!("non-utf8 metrics: {e}")))
    }

    /// GET the session's span trace as Chrome-trace JSON (viewable in
    /// Perfetto / `chrome://tracing`).
    pub fn trace(&self) -> Result<String, TransportError> {
        let path = format!("/sessions/{}/trace", self.session);
        let body = self.call_raw(WireFormat::Json, Method::Get, &path, b"")?;
        String::from_utf8(body).map_err(|e| TransportError::Io(format!("non-utf8 trace: {e}")))
    }

    /// GET the session's status (snapshot + stats).
    pub fn status(&self) -> Result<StatusEnvelope, TransportError> {
        self.call(
            Method::Get,
            &format!("/sessions/{}/status", self.session),
            &(),
        )
    }
}

impl PolicyTransport for PolicyRestClient {
    fn evaluate_transfers(
        &mut self,
        batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, TransportError> {
        let path = format!("/sessions/{}/transfers", self.session);
        match self.format {
            WireFormat::Json | WireFormat::Text => {
                let resp: TransferResponseEnvelope = self.call(
                    Method::Post,
                    &path,
                    &TransferRequestEnvelope { transfers: batch },
                )?;
                Ok(resp.advice)
            }
            WireFormat::Xml => self.call_xml(
                Method::Post,
                &path,
                crate::xml::transfer_request_to_xml(&batch),
                crate::xml::transfer_response_from_xml,
            ),
        }
    }

    fn report_transfers(&mut self, outcomes: Vec<TransferOutcome>) -> Result<(), TransportError> {
        let path = format!("/sessions/{}/transfers/complete", self.session);
        match self.format {
            WireFormat::Json | WireFormat::Text => {
                let _: AckEnvelope = self.call(
                    Method::Post,
                    &path,
                    &TransferCompletionEnvelope { outcomes },
                )?;
            }
            WireFormat::Xml => {
                self.call_xml(
                    Method::Post,
                    &path,
                    crate::xml::transfer_completion_to_xml(&outcomes),
                    |_ack| Ok(()),
                )?;
            }
        }
        Ok(())
    }

    fn evaluate_cleanups(
        &mut self,
        batch: Vec<CleanupSpec>,
    ) -> Result<Vec<CleanupAdvice>, TransportError> {
        let path = format!("/sessions/{}/cleanups", self.session);
        match self.format {
            WireFormat::Json | WireFormat::Text => {
                let resp: CleanupResponseEnvelope = self.call(
                    Method::Post,
                    &path,
                    &CleanupRequestEnvelope { cleanups: batch },
                )?;
                Ok(resp.advice)
            }
            WireFormat::Xml => self.call_xml(
                Method::Post,
                &path,
                crate::xml::cleanup_request_to_xml(&batch),
                crate::xml::cleanup_response_from_xml,
            ),
        }
    }

    fn report_cleanups(&mut self, outcomes: Vec<CleanupOutcome>) -> Result<(), TransportError> {
        let path = format!("/sessions/{}/cleanups/complete", self.session);
        match self.format {
            WireFormat::Json | WireFormat::Text => {
                let _: AckEnvelope =
                    self.call(Method::Post, &path, &CleanupCompletionEnvelope { outcomes })?;
            }
            WireFormat::Xml => {
                self.call_xml(
                    Method::Post,
                    &path,
                    crate::xml::cleanup_completion_to_xml(&outcomes),
                    |_ack| Ok(()),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::PolicyRestServer;
    use pwm_core::{PolicyController, Url, WorkflowId, DEFAULT_SESSION};

    fn start() -> (PolicyRestServer, PolicyRestClient) {
        let controller = PolicyController::new(PolicyConfig::default());
        let server = PolicyRestServer::start(controller).unwrap();
        let client = PolicyRestClient::new(server.addr(), DEFAULT_SESSION);
        (server, client)
    }

    fn spec(n: u32) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "tacc", format!("/data/f{n}.dat")),
            dest: Url::new("file", "isi", format!("/scratch/f{n}.dat")),
            bytes: 1_000_000,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        }
    }

    #[test]
    fn health_check() {
        let (_server, client) = start();
        assert!(client.health());
    }

    #[test]
    fn transfer_round_trip_over_http() {
        let (_server, mut client) = start();
        let advice = client.evaluate_transfers(vec![spec(1), spec(2)]).unwrap();
        assert_eq!(advice.len(), 2);
        assert!(advice.iter().all(|a| a.should_execute()));
        assert_eq!(advice[0].streams, 4);

        client
            .report_transfers(
                advice
                    .iter()
                    .map(|a| TransferOutcome {
                        id: a.id,
                        success: true,
                    })
                    .collect(),
            )
            .unwrap();
        let status = client.status().unwrap();
        assert_eq!(status.stats.transfers_completed, 2);
        assert_eq!(status.snapshot.staged_files, 2);
    }

    #[test]
    fn dedup_works_over_http() {
        let (_server, mut client) = start();
        let first = client.evaluate_transfers(vec![spec(1)]).unwrap();
        assert!(first[0].should_execute());
        let second = client.evaluate_transfers(vec![spec(1)]).unwrap();
        assert!(!second[0].should_execute());
    }

    #[test]
    fn cleanup_round_trip_over_http() {
        let (_server, mut client) = start();
        let advice = client.evaluate_transfers(vec![spec(1)]).unwrap();
        client
            .report_transfers(vec![TransferOutcome {
                id: advice[0].id,
                success: true,
            }])
            .unwrap();
        let cleanups = client
            .evaluate_cleanups(vec![CleanupSpec {
                file: Url::new("file", "isi", "/scratch/f1.dat"),
                workflow: WorkflowId(1),
            }])
            .unwrap();
        assert!(cleanups[0].should_execute());
        client
            .report_cleanups(vec![CleanupOutcome {
                id: cleanups[0].id,
                success: true,
            }])
            .unwrap();
        assert_eq!(client.status().unwrap().snapshot.staged_files, 0);
    }

    #[test]
    fn missing_session_is_a_service_error() {
        let (server, _client) = start();
        let mut client = PolicyRestClient::new(server.addr(), "missing");
        let err = client.evaluate_transfers(vec![spec(1)]).unwrap_err();
        assert!(matches!(err, TransportError::Service(_)), "{err:?}");
    }

    #[test]
    fn connection_refused_is_an_io_error() {
        let (mut server, _client) = start();
        let addr = server.addr();
        server.shutdown();
        let mut client =
            PolicyRestClient::new(addr, DEFAULT_SESSION).with_timeout(Duration::from_millis(500));
        let err = client.evaluate_transfers(vec![spec(1)]);
        assert!(err.is_err());
    }

    #[test]
    fn put_config_then_use_new_session() {
        let (_server, client) = start();
        let client = PolicyRestClient::new(client.addr, "exp-42");
        client
            .put_config(&PolicyConfig::default().with_default_streams(12))
            .unwrap();
        let mut client = client;
        let advice = client.evaluate_transfers(vec![spec(1)]).unwrap();
        assert_eq!(advice[0].streams, 12);
    }

    #[test]
    fn xml_transport_round_trips_and_matches_json() {
        let (_server, json_client) = start();
        let mut xml_client = json_client.clone().with_format(WireFormat::Xml);
        let advice = xml_client
            .evaluate_transfers(vec![spec(1), spec(1)])
            .unwrap();
        assert_eq!(advice.len(), 2);
        assert!(advice[0].should_execute());
        assert!(!advice[1].should_execute(), "dedup works over XML too");
        xml_client
            .report_transfers(vec![TransferOutcome {
                id: advice[0].id,
                success: true,
            }])
            .unwrap();
        let cleanups = xml_client
            .evaluate_cleanups(vec![CleanupSpec {
                file: Url::new("file", "isi", "/scratch/f1.dat"),
                workflow: WorkflowId(1),
            }])
            .unwrap();
        assert!(cleanups[0].should_execute());
        xml_client
            .report_cleanups(vec![pwm_core::CleanupOutcome {
                id: cleanups[0].id,
                success: true,
            }])
            .unwrap();
        // Status (JSON endpoint) reflects the XML-driven lifecycle.
        let status = json_client.status().unwrap();
        assert_eq!(status.stats.transfers_completed, 1);
        assert_eq!(status.snapshot.staged_files, 0);
    }

    #[test]
    fn xml_errors_surface_as_service_errors() {
        let (server, _c) = start();
        let mut client =
            PolicyRestClient::new(server.addr(), "missing").with_format(WireFormat::Xml);
        let err = client.evaluate_transfers(vec![spec(1)]).unwrap_err();
        assert!(matches!(err, TransportError::Service(_)), "{err:?}");
    }

    #[test]
    fn keep_alive_connection_is_reused_across_calls() {
        let (_server, mut client) = start();
        // Several sequential calls over one client: all ride the same
        // keep-alive socket (reconnect-on-stale covers the rest).
        for n in 0..5 {
            client.evaluate_transfers(vec![spec(n)]).unwrap();
        }
        assert_eq!(client.status().unwrap().stats.transfer_requests, 5);
    }

    #[test]
    fn pipelined_evaluate_returns_group_aligned_advice() {
        let (_server, client) = start();
        let groups: Vec<Vec<TransferSpec>> = (0..8).map(|n| vec![spec(n)]).collect();
        let advice = client.evaluate_transfers_pipelined(&groups).unwrap();
        assert_eq!(advice.len(), 8);
        assert!(advice.iter().all(|g| g.len() == 1 && g[0].should_execute()));
        // A second pipelined window: every transfer is now a duplicate.
        let advice = client.evaluate_transfers_pipelined(&groups).unwrap();
        assert!(advice.iter().all(|g| !g[0].should_execute()));
        assert_eq!(client.status().unwrap().stats.transfer_requests, 16);
    }

    #[test]
    fn pipelined_window_deduplicates_within_itself() {
        let (_server, client) = start();
        let groups = vec![vec![spec(1)], vec![spec(1)], vec![spec(1)]];
        let advice = client.evaluate_transfers_pipelined(&groups).unwrap();
        let executed = advice.iter().filter(|g| g[0].should_execute()).count();
        assert_eq!(executed, 1, "same file three times in one window");
    }

    #[test]
    fn concurrent_clients_share_the_session() {
        let (_server, client) = start();
        let mut threads = Vec::new();
        for t in 0..4 {
            let mut c = client.clone();
            threads.push(std::thread::spawn(move || {
                for i in 0..10 {
                    c.evaluate_transfers(vec![spec(t * 100 + i)]).unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(client.status().unwrap().stats.transfer_requests, 40);
    }
}
