//! The RESTful web interface (client side).
//!
//! [`PolicyRestClient`] is the blocking HTTP client the modified Pegasus
//! Transfer Tool uses: it serializes request lists to JSON, POSTs them to
//! the Policy Service, and deserializes the advice. It also implements
//! [`PolicyTransport`], so the workflow substrate can swap between
//! in-process and over-the-wire policy callouts without code changes.

use crate::http::{read_response, write_request_in, Method, WireFormat};
use crate::wire::*;
use pwm_core::transport::{PolicyTransport, TransportError};
use pwm_core::{
    CleanupAdvice, CleanupOutcome, CleanupSpec, PolicyConfig, TransferAdvice, TransferOutcome,
    TransferSpec,
};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking JSON-over-HTTP client for the policy API.
#[derive(Debug, Clone)]
pub struct PolicyRestClient {
    addr: SocketAddr,
    session: String,
    timeout: Duration,
    format: WireFormat,
}

impl PolicyRestClient {
    /// Client for `session` on the server at `addr`.
    pub fn new(addr: SocketAddr, session: impl Into<String>) -> Self {
        PolicyRestClient {
            addr,
            session: session.into(),
            timeout: Duration::from_secs(10),
            format: WireFormat::Json,
        }
    }

    /// Choose the wire encoding (the paper's interface speaks "XML or JSON
    /// data structures"; JSON is the default).
    pub fn with_format(mut self, format: WireFormat) -> Self {
        self.format = format;
        self
    }

    /// Override the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Raw round-trip in a specific wire format.
    fn call_raw(
        &self,
        format: WireFormat,
        method: Method,
        path: &str,
        body: &[u8],
    ) -> Result<Vec<u8>, TransportError> {
        let mut stream = TcpStream::connect(self.addr)
            .map_err(|e| TransportError::Io(format!("connect {}: {e}", self.addr)))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|_| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|e| TransportError::Io(format!("timeout setup: {e}")))?;
        write_request_in(&mut stream, format, method, path, body)
            .map_err(|e| TransportError::Io(format!("send: {e}")))?;
        let (status, response_body) =
            read_response(&mut stream).map_err(|e| TransportError::Io(format!("recv: {e}")))?;
        if status != 200 {
            let message = serde_json::from_slice::<ErrorEnvelope>(&response_body)
                .map(|e| e.error)
                .unwrap_or_else(|_| String::from_utf8_lossy(&response_body).to_string());
            return Err(TransportError::Service(message));
        }
        Ok(response_body)
    }

    fn call<Req: serde::Serialize, Resp: serde::de::DeserializeOwned>(
        &self,
        method: Method,
        path: &str,
        payload: &Req,
    ) -> Result<Resp, TransportError> {
        let body =
            serde_json::to_vec(payload).map_err(|e| TransportError::Io(format!("encode: {e}")))?;
        let response_body = self.call_raw(WireFormat::Json, method, path, &body)?;
        serde_json::from_slice(&response_body)
            .map_err(|e| TransportError::Io(format!("decode: {e}")))
    }

    fn call_xml<T>(
        &self,
        method: Method,
        path: &str,
        body: String,
        decode: impl FnOnce(&str) -> Result<T, crate::xml::XmlError>,
    ) -> Result<T, TransportError> {
        let response_body = self.call_raw(WireFormat::Xml, method, path, body.as_bytes())?;
        let text = std::str::from_utf8(&response_body)
            .map_err(|e| TransportError::Io(format!("non-utf8 xml response: {e}")))?;
        decode(text).map_err(|e| TransportError::Io(format!("decode: {e}")))
    }

    /// GET `/health`; true when the service answers.
    pub fn health(&self) -> bool {
        #[derive(serde::Deserialize)]
        struct Health {
            status: String,
        }
        // health takes no payload; send an empty tuple which serializes to null.
        let result: Result<Health, _> = self.call(Method::Get, "/health", &());
        matches!(result, Ok(h) if h.status == "ok")
    }

    /// PUT the session's policy configuration (creates the session if new).
    pub fn put_config(&self, config: &PolicyConfig) -> Result<(), TransportError> {
        let _: AckEnvelope = self.call(
            Method::Put,
            &format!("/sessions/{}/config", self.session),
            config,
        )?;
        Ok(())
    }

    /// GET `/metrics` — the Prometheus text exposition covering every
    /// session on the server.
    pub fn metrics(&self) -> Result<String, TransportError> {
        let body = self.call_raw(WireFormat::Json, Method::Get, "/metrics", b"")?;
        String::from_utf8(body).map_err(|e| TransportError::Io(format!("non-utf8 metrics: {e}")))
    }

    /// GET the session's span trace as Chrome-trace JSON (viewable in
    /// Perfetto / `chrome://tracing`).
    pub fn trace(&self) -> Result<String, TransportError> {
        let path = format!("/sessions/{}/trace", self.session);
        let body = self.call_raw(WireFormat::Json, Method::Get, &path, b"")?;
        String::from_utf8(body).map_err(|e| TransportError::Io(format!("non-utf8 trace: {e}")))
    }

    /// GET the session's status (snapshot + stats).
    pub fn status(&self) -> Result<StatusEnvelope, TransportError> {
        self.call(
            Method::Get,
            &format!("/sessions/{}/status", self.session),
            &(),
        )
    }
}

impl PolicyTransport for PolicyRestClient {
    fn evaluate_transfers(
        &mut self,
        batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, TransportError> {
        let path = format!("/sessions/{}/transfers", self.session);
        match self.format {
            WireFormat::Json | WireFormat::Text => {
                let resp: TransferResponseEnvelope = self.call(
                    Method::Post,
                    &path,
                    &TransferRequestEnvelope { transfers: batch },
                )?;
                Ok(resp.advice)
            }
            WireFormat::Xml => self.call_xml(
                Method::Post,
                &path,
                crate::xml::transfer_request_to_xml(&batch),
                crate::xml::transfer_response_from_xml,
            ),
        }
    }

    fn report_transfers(&mut self, outcomes: Vec<TransferOutcome>) -> Result<(), TransportError> {
        let path = format!("/sessions/{}/transfers/complete", self.session);
        match self.format {
            WireFormat::Json | WireFormat::Text => {
                let _: AckEnvelope = self.call(
                    Method::Post,
                    &path,
                    &TransferCompletionEnvelope { outcomes },
                )?;
            }
            WireFormat::Xml => {
                self.call_xml(
                    Method::Post,
                    &path,
                    crate::xml::transfer_completion_to_xml(&outcomes),
                    |_ack| Ok(()),
                )?;
            }
        }
        Ok(())
    }

    fn evaluate_cleanups(
        &mut self,
        batch: Vec<CleanupSpec>,
    ) -> Result<Vec<CleanupAdvice>, TransportError> {
        let path = format!("/sessions/{}/cleanups", self.session);
        match self.format {
            WireFormat::Json | WireFormat::Text => {
                let resp: CleanupResponseEnvelope = self.call(
                    Method::Post,
                    &path,
                    &CleanupRequestEnvelope { cleanups: batch },
                )?;
                Ok(resp.advice)
            }
            WireFormat::Xml => self.call_xml(
                Method::Post,
                &path,
                crate::xml::cleanup_request_to_xml(&batch),
                crate::xml::cleanup_response_from_xml,
            ),
        }
    }

    fn report_cleanups(&mut self, outcomes: Vec<CleanupOutcome>) -> Result<(), TransportError> {
        let path = format!("/sessions/{}/cleanups/complete", self.session);
        match self.format {
            WireFormat::Json | WireFormat::Text => {
                let _: AckEnvelope =
                    self.call(Method::Post, &path, &CleanupCompletionEnvelope { outcomes })?;
            }
            WireFormat::Xml => {
                self.call_xml(
                    Method::Post,
                    &path,
                    crate::xml::cleanup_completion_to_xml(&outcomes),
                    |_ack| Ok(()),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::PolicyRestServer;
    use pwm_core::{PolicyController, Url, WorkflowId, DEFAULT_SESSION};

    fn start() -> (PolicyRestServer, PolicyRestClient) {
        let controller = PolicyController::new(PolicyConfig::default());
        let server = PolicyRestServer::start(controller).unwrap();
        let client = PolicyRestClient::new(server.addr(), DEFAULT_SESSION);
        (server, client)
    }

    fn spec(n: u32) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "tacc", format!("/data/f{n}.dat")),
            dest: Url::new("file", "isi", format!("/scratch/f{n}.dat")),
            bytes: 1_000_000,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        }
    }

    #[test]
    fn health_check() {
        let (_server, client) = start();
        assert!(client.health());
    }

    #[test]
    fn transfer_round_trip_over_http() {
        let (_server, mut client) = start();
        let advice = client.evaluate_transfers(vec![spec(1), spec(2)]).unwrap();
        assert_eq!(advice.len(), 2);
        assert!(advice.iter().all(|a| a.should_execute()));
        assert_eq!(advice[0].streams, 4);

        client
            .report_transfers(
                advice
                    .iter()
                    .map(|a| TransferOutcome {
                        id: a.id,
                        success: true,
                    })
                    .collect(),
            )
            .unwrap();
        let status = client.status().unwrap();
        assert_eq!(status.stats.transfers_completed, 2);
        assert_eq!(status.snapshot.staged_files, 2);
    }

    #[test]
    fn dedup_works_over_http() {
        let (_server, mut client) = start();
        let first = client.evaluate_transfers(vec![spec(1)]).unwrap();
        assert!(first[0].should_execute());
        let second = client.evaluate_transfers(vec![spec(1)]).unwrap();
        assert!(!second[0].should_execute());
    }

    #[test]
    fn cleanup_round_trip_over_http() {
        let (_server, mut client) = start();
        let advice = client.evaluate_transfers(vec![spec(1)]).unwrap();
        client
            .report_transfers(vec![TransferOutcome {
                id: advice[0].id,
                success: true,
            }])
            .unwrap();
        let cleanups = client
            .evaluate_cleanups(vec![CleanupSpec {
                file: Url::new("file", "isi", "/scratch/f1.dat"),
                workflow: WorkflowId(1),
            }])
            .unwrap();
        assert!(cleanups[0].should_execute());
        client
            .report_cleanups(vec![CleanupOutcome {
                id: cleanups[0].id,
                success: true,
            }])
            .unwrap();
        assert_eq!(client.status().unwrap().snapshot.staged_files, 0);
    }

    #[test]
    fn missing_session_is_a_service_error() {
        let (server, _client) = start();
        let mut client = PolicyRestClient::new(server.addr(), "missing");
        let err = client.evaluate_transfers(vec![spec(1)]).unwrap_err();
        assert!(matches!(err, TransportError::Service(_)), "{err:?}");
    }

    #[test]
    fn connection_refused_is_an_io_error() {
        let (mut server, _client) = start();
        let addr = server.addr();
        server.shutdown();
        let mut client =
            PolicyRestClient::new(addr, DEFAULT_SESSION).with_timeout(Duration::from_millis(500));
        let err = client.evaluate_transfers(vec![spec(1)]);
        assert!(err.is_err());
    }

    #[test]
    fn put_config_then_use_new_session() {
        let (_server, client) = start();
        let client = PolicyRestClient::new(client.addr, "exp-42");
        client
            .put_config(&PolicyConfig::default().with_default_streams(12))
            .unwrap();
        let mut client = client;
        let advice = client.evaluate_transfers(vec![spec(1)]).unwrap();
        assert_eq!(advice[0].streams, 12);
    }

    #[test]
    fn xml_transport_round_trips_and_matches_json() {
        let (_server, json_client) = start();
        let mut xml_client = json_client.clone().with_format(WireFormat::Xml);
        let advice = xml_client
            .evaluate_transfers(vec![spec(1), spec(1)])
            .unwrap();
        assert_eq!(advice.len(), 2);
        assert!(advice[0].should_execute());
        assert!(!advice[1].should_execute(), "dedup works over XML too");
        xml_client
            .report_transfers(vec![TransferOutcome {
                id: advice[0].id,
                success: true,
            }])
            .unwrap();
        let cleanups = xml_client
            .evaluate_cleanups(vec![CleanupSpec {
                file: Url::new("file", "isi", "/scratch/f1.dat"),
                workflow: WorkflowId(1),
            }])
            .unwrap();
        assert!(cleanups[0].should_execute());
        xml_client
            .report_cleanups(vec![pwm_core::CleanupOutcome {
                id: cleanups[0].id,
                success: true,
            }])
            .unwrap();
        // Status (JSON endpoint) reflects the XML-driven lifecycle.
        let status = json_client.status().unwrap();
        assert_eq!(status.stats.transfers_completed, 1);
        assert_eq!(status.snapshot.staged_files, 0);
    }

    #[test]
    fn xml_errors_surface_as_service_errors() {
        let (server, _c) = start();
        let mut client =
            PolicyRestClient::new(server.addr(), "missing").with_format(WireFormat::Xml);
        let err = client.evaluate_transfers(vec![spec(1)]).unwrap_err();
        assert!(matches!(err, TransportError::Service(_)), "{err:?}");
    }

    #[test]
    fn concurrent_clients_share_the_session() {
        let (_server, client) = start();
        let mut threads = Vec::new();
        for t in 0..4 {
            let mut c = client.clone();
            threads.push(std::thread::spawn(move || {
                for i in 0..10 {
                    c.evaluate_transfers(vec![spec(t * 100 + i)]).unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(client.status().unwrap().stats.transfer_requests, 40);
    }
}
