//! JSON wire envelopes exchanged over the RESTful interface.
//!
//! The paper: "A RESTful Web Interface allows access to the policy service
//! over the web using XML or JSON data structures." We implement the JSON
//! form with explicit envelope types so the wire format is versionable and
//! testable independently of the in-memory types.

use pwm_core::{
    CleanupAdvice, CleanupOutcome, CleanupSpec, MemorySnapshot, RuleCounters, ServiceStats,
    TransferAdvice, TransferOutcome, TransferSpec,
};
use serde::{Deserialize, Serialize};

/// POST `/sessions/{name}/transfers` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRequestEnvelope {
    /// The transfers the client wants to perform.
    pub transfers: Vec<TransferSpec>,
}

/// POST `/sessions/{name}/transfers` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferResponseEnvelope {
    /// The modified list, in advised execution order.
    pub advice: Vec<TransferAdvice>,
}

/// POST `/sessions/{name}/transfers/complete` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferCompletionEnvelope {
    /// Outcomes of executed transfers.
    pub outcomes: Vec<TransferOutcome>,
}

/// POST `/sessions/{name}/cleanups` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanupRequestEnvelope {
    /// The files the cleanup job wants to delete.
    pub cleanups: Vec<CleanupSpec>,
}

/// POST `/sessions/{name}/cleanups` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanupResponseEnvelope {
    /// The modified cleanup list.
    pub advice: Vec<CleanupAdvice>,
}

/// POST `/sessions/{name}/cleanups/complete` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanupCompletionEnvelope {
    /// Outcomes of executed cleanups.
    pub outcomes: Vec<CleanupOutcome>,
}

/// GET `/sessions/{name}/status` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusEnvelope {
    /// Policy memory snapshot.
    pub snapshot: MemorySnapshot,
    /// Service counters.
    pub stats: ServiceStats,
    /// Per-rule engine counters (evaluations, matches, firings, eval time).
    /// `default` keeps old clients' payloads parseable.
    #[serde(default)]
    pub rules: Vec<RuleCounters>,
}

/// Generic acknowledgement for report endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckEnvelope {
    /// Always "ok" on success.
    pub status: String,
}

impl AckEnvelope {
    /// The canonical success acknowledgement.
    pub fn ok() -> Self {
        AckEnvelope {
            status: "ok".to_string(),
        }
    }
}

/// Error payload returned with 4xx/5xx statuses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorEnvelope {
    /// Human-readable description.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwm_core::{Url, WorkflowId};

    #[test]
    fn transfer_envelope_roundtrip() {
        let env = TransferRequestEnvelope {
            transfers: vec![TransferSpec {
                source: Url::parse("gsiftp://src/a").unwrap(),
                dest: Url::parse("file:///dst/a").unwrap(),
                bytes: 42,
                requested_streams: None,
                workflow: WorkflowId(7),
                cluster: None,
                priority: None,
            }],
        };
        let json = serde_json::to_string(&env).unwrap();
        let back: TransferRequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn ack_is_ok() {
        let json = serde_json::to_string(&AckEnvelope::ok()).unwrap();
        assert_eq!(json, r#"{"status":"ok"}"#);
    }

    #[test]
    fn error_envelope_roundtrip() {
        let e = ErrorEnvelope {
            error: "no such policy session: x".into(),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: ErrorEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn malformed_json_is_an_error() {
        let r: Result<TransferRequestEnvelope, _> = serde_json::from_str("{not json");
        assert!(r.is_err());
        let r: Result<TransferRequestEnvelope, _> = serde_json::from_str(r#"{"wrong":[]}"#);
        assert!(r.is_err());
    }
}
