//! Readiness polling for the event-driven server.
//!
//! A thin safe wrapper over `poll(2)` — the one syscall the nonblocking
//! server needs that `std::net` does not expose — plus a self-pipe wake
//! channel so other threads can interrupt a sleeping `poll` (the classic
//! self-pipe trick; it replaces the old dummy-connection shutdown hack).
//! No external event-loop crate: the FFI surface is a single function on a
//! `#[repr(C)]` struct that matches `struct pollfd` exactly.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

/// Readable readiness (`POLLIN`).
pub const POLL_IN: i16 = 0x001;
/// Writable readiness (`POLLOUT`).
pub const POLL_OUT: i16 = 0x004;
/// Error condition (`POLLERR`, always polled, only returned in revents).
pub const POLL_ERR: i16 = 0x008;
/// Peer hung up (`POLLHUP`, always polled, only returned in revents).
pub const POLL_HUP: i16 = 0x010;

/// One entry of a `poll(2)` set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLL_IN`] / [`POLL_OUT`]).
    pub events: i16,
    /// Returned events (filled in by the kernel).
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for the given events.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the descriptor is readable (or the peer closed/errored —
    /// those also surface via a read attempt).
    pub fn readable(&self) -> bool {
        self.revents & (POLL_IN | POLL_ERR | POLL_HUP) != 0
    }

    /// Whether the descriptor accepts writes.
    pub fn writable(&self) -> bool {
        self.revents & (POLL_OUT | POLL_ERR | POLL_HUP) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Block until at least one descriptor in `fds` is ready or `timeout`
/// elapses (`None` = wait forever). Returns the number of ready
/// descriptors (0 on timeout). EINTR is treated as a zero-ready wakeup —
/// the event loop re-evaluates and re-polls regardless.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> std::io::Result<usize> {
    let timeout_ms: std::ffi::c_int = match timeout {
        // Round up so a 0<t<1ms deadline does not busy-spin.
        Some(t) => {
            t.as_millis().min(i32::MAX as u128) as i32
                + i32::from(t.subsec_nanos() % 1_000_000 != 0)
        }
        None => -1,
    };
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
    if rc < 0 {
        let err = std::io::Error::last_os_error();
        if err.kind() == std::io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// A wake channel: the event loop polls the receive end alongside its
/// sockets; any thread holding a [`Waker`] can make `poll` return
/// immediately. Built from a loopback TCP pair so it stays inside
/// `std::net` (a pipe would need two more FFI calls for no benefit).
#[derive(Debug)]
pub struct WakePipe {
    rx: TcpStream,
}

/// The sending half of a [`WakePipe`]; cheap to clone across threads.
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
}

impl Clone for Waker {
    fn clone(&self) -> Waker {
        Waker {
            tx: self.tx.try_clone().expect("clone waker socket"),
        }
    }
}

impl WakePipe {
    /// Create a connected (receiver, waker) pair.
    pub fn new() -> std::io::Result<(WakePipe, Waker)> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        rx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        Ok((WakePipe { rx }, Waker { tx }))
    }

    /// The descriptor to include in the poll set (watch [`POLL_IN`]).
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Discard all pending wake bytes (call after the poll reports the
    /// wake fd readable; the *reason* for the wake lives elsewhere, e.g.
    /// an atomic shutdown flag).
    pub fn drain(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.rx.read(&mut sink), Ok(n) if n > 0) {}
    }
}

impl Waker {
    /// Make the receiving poll loop wake up. Never blocks meaningfully (a
    /// loopback socket buffer absorbs the byte); errors are ignored — if
    /// the receiver is gone there is nobody left to wake.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_times_out_on_quiet_fd() {
        let (pipe, _waker) = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.fd(), POLL_IN)];
        let ready = poll_fds(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(ready, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn waker_interrupts_poll() {
        let (mut pipe, waker) = WakePipe::new().unwrap();
        // Keep the original waker alive: dropping the last sender closes
        // the channel, which reads as permanent readiness (EOF).
        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake();
        });
        let mut fds = [PollFd::new(pipe.fd(), POLL_IN)];
        let ready = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].readable());
        pipe.drain();
        // Drained: the next poll times out instead of spinning.
        let mut fds = [PollFd::new(pipe.fd(), POLL_IN)];
        let ready = poll_fds(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(ready, 0);
        t.join().unwrap();
    }

    #[test]
    fn cloned_wakers_share_the_channel() {
        let (mut pipe, waker) = WakePipe::new().unwrap();
        let w2 = waker.clone();
        w2.wake();
        let mut fds = [PollFd::new(pipe.fd(), POLL_IN)];
        assert_eq!(poll_fds(&mut fds, Some(Duration::from_secs(1))).unwrap(), 1);
        pipe.drain();
    }
}
