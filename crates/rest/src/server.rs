//! The RESTful web interface (server side).
//!
//! [`PolicyRestServer`] binds a loopback TCP listener and serves the policy
//! API, delegating every request to a [`PolicyController`] exactly as the
//! paper's web interface delegates to the Policy Controller. One thread per
//! connection (requests are short and the policy engine itself is serialized
//! behind the controller lock, so fancier concurrency buys nothing).
//!
//! Routes:
//!
//! | Method | Path | Body → Response |
//! |--------|------|-----------------|
//! | GET    | `/health` | — → `{"status":"ok"}` |
//! | POST   | `/sessions/{s}/transfers` | TransferRequestEnvelope → TransferResponseEnvelope |
//! | POST   | `/sessions/{s}/transfers/complete` | TransferCompletionEnvelope → Ack |
//! | POST   | `/sessions/{s}/cleanups` | CleanupRequestEnvelope → CleanupResponseEnvelope |
//! | POST   | `/sessions/{s}/cleanups/complete` | CleanupCompletionEnvelope → Ack |
//! | GET    | `/sessions/{s}/status` | — → StatusEnvelope |
//! | GET    | `/sessions/{s}/log` | — → `[AuditRecord]` (the monitoring log) |
//! | GET    | `/sessions/{s}/trace` | — → Chrome-trace JSON (load in Perfetto) |
//! | GET    | `/metrics` | — → Prometheus text exposition (all sessions) |
//! | PUT    | `/sessions/{s}/config` | PolicyConfig → Ack (creates the session if absent) |

use crate::http::{
    read_request_limited, write_response, HttpError, Method, Request, Response, WireFormat,
};
use crate::wire::*;
use crate::xml;
use pwm_core::{ControllerError, PolicyConfig, PolicyController};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection resource limits (slow-loris and memory-bomb guards).
#[derive(Debug, Clone, Copy)]
pub struct ServerLimits {
    /// Socket read deadline: a client that stalls past this gets 408 and
    /// the connection thread is reclaimed.
    pub read_timeout: Duration,
    /// Maximum request-body size: a larger declared Content-Length gets
    /// 413 without the body ever being read.
    pub max_body: usize,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            read_timeout: Duration::from_secs(5),
            max_body: 16 << 20,
        }
    }
}

/// A running policy REST server.
pub struct PolicyRestServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl PolicyRestServer {
    /// Bind `127.0.0.1:0` (ephemeral port) and start serving `controller`
    /// with default [`ServerLimits`].
    pub fn start(controller: PolicyController) -> std::io::Result<PolicyRestServer> {
        Self::start_with_limits(controller, ServerLimits::default())
    }

    /// Bind `127.0.0.1:0` and start serving with explicit limits.
    pub fn start_with_limits(
        controller: PolicyController,
        limits: ServerLimits,
    ) -> std::io::Result<PolicyRestServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = shutdown.clone();
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept_connections = connections.clone();
        let accept_thread = std::thread::Builder::new()
            .name("policy-rest-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let controller = controller.clone();
                            // One thread per connection; connections are
                            // single-request (Connection: close).
                            let handle = std::thread::Builder::new()
                                .name("policy-rest-conn".into())
                                .spawn(move || handle_connection(stream, controller, limits));
                            if let Ok(handle) = handle {
                                let mut conns = accept_connections.lock().unwrap();
                                // Prune finished threads so the list does
                                // not grow with server lifetime.
                                conns.retain(|h: &JoinHandle<()>| !h.is_finished());
                                conns.push(handle);
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })?;
        Ok(PolicyRestServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting connections, join the accept
    /// thread, then drain in-flight connection threads (each finishes its
    /// one request or hits the read deadline). After this returns, no
    /// request is mid-flight — safe to recover the controller's state
    /// elsewhere (see `recover_session` / `resume_durable_session`).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for PolicyRestServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, controller: PolicyController, limits: ServerLimits) {
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let response = match read_request_limited(&mut stream, limits.max_body) {
        Ok(request) => route(&request, &controller),
        Err(HttpError::Timeout) => Response::error(408, "request read timed out"),
        Err(e @ HttpError::TooLarge(_)) => Response::error(413, &e.to_string()),
        Err(e) => Response::error(400, &format!("bad request: {e}")),
    };
    let _ = write_response(&mut stream, &response);
}

fn route(request: &Request, controller: &PolicyController) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method, segments.as_slice()) {
        (Method::Get, ["health"]) => Response::ok_json(br#"{"status":"ok"}"#.to_vec()),
        (Method::Get, ["metrics"]) => Response::ok_text(controller.render_metrics().into_bytes()),
        (Method::Get, ["sessions", session, "trace"]) => {
            match controller.trace_chrome_json(session) {
                Ok(json) => Response::ok_json(json.into_bytes()),
                Err(e) => controller_error(e),
            }
        }
        (Method::Post, ["sessions", session, "transfers"]) => match request.format {
            WireFormat::Json | WireFormat::Text => {
                with_body::<TransferRequestEnvelope>(request, |env| {
                    let advice = controller.evaluate_transfers(session, env.transfers)?;
                    Ok(json_response(&TransferResponseEnvelope { advice }))
                })
            }
            WireFormat::Xml => {
                with_xml_body(request, xml::transfer_request_from_xml, |transfers| {
                    let advice = controller.evaluate_transfers(session, transfers)?;
                    Ok(xml::transfer_response_to_xml(&advice))
                })
            }
        },
        (Method::Post, ["sessions", session, "transfers", "complete"]) => match request.format {
            WireFormat::Json | WireFormat::Text => {
                with_body::<TransferCompletionEnvelope>(request, |env| {
                    controller.report_transfers(session, env.outcomes)?;
                    Ok(json_response(&AckEnvelope::ok()))
                })
            }
            WireFormat::Xml => {
                with_xml_body(request, xml::transfer_completion_from_xml, |outcomes| {
                    controller.report_transfers(session, outcomes)?;
                    Ok(xml::ack_xml())
                })
            }
        },
        (Method::Post, ["sessions", session, "cleanups"]) => match request.format {
            WireFormat::Json | WireFormat::Text => {
                with_body::<CleanupRequestEnvelope>(request, |env| {
                    let advice = controller.evaluate_cleanups(session, env.cleanups)?;
                    Ok(json_response(&CleanupResponseEnvelope { advice }))
                })
            }
            WireFormat::Xml => with_xml_body(request, xml::cleanup_request_from_xml, |cleanups| {
                let advice = controller.evaluate_cleanups(session, cleanups)?;
                Ok(xml::cleanup_response_to_xml(&advice))
            }),
        },
        (Method::Post, ["sessions", session, "cleanups", "complete"]) => match request.format {
            WireFormat::Json | WireFormat::Text => {
                with_body::<CleanupCompletionEnvelope>(request, |env| {
                    controller.report_cleanups(session, env.outcomes)?;
                    Ok(json_response(&AckEnvelope::ok()))
                })
            }
            WireFormat::Xml => {
                with_xml_body(request, xml::cleanup_completion_from_xml, |outcomes| {
                    controller.report_cleanups(session, outcomes)?;
                    Ok(xml::ack_xml())
                })
            }
        },
        (Method::Get, ["sessions", session, "log"]) => match controller.audit_since(session, 0) {
            Ok(records) => json_response(&records),
            Err(e) => controller_error(e),
        },
        (Method::Get, ["sessions", session, "status"]) => {
            match (
                controller.snapshot(session),
                controller.stats(session),
                controller.rule_stats(session),
            ) {
                (Ok(snapshot), Ok(stats), Ok(rules)) => json_response(&StatusEnvelope {
                    snapshot,
                    stats,
                    rules,
                }),
                (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => controller_error(e),
            }
        }
        (Method::Put, ["sessions", session, "config"]) => {
            with_body::<PolicyConfig>(request, |config| {
                // PUT is an upsert: reconfigure or create.
                if controller.set_config(session, config.clone()).is_err() {
                    controller.create_session(*session, config);
                }
                Ok(json_response(&AckEnvelope::ok()))
            })
        }
        (Method::Delete, ["sessions", session]) => {
            if controller.drop_session(session) {
                json_response(&AckEnvelope::ok())
            } else {
                Response::error(404, &format!("no such policy session: {session}"))
            }
        }
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

/// Decode an XML body, run the handler, and answer in XML.
fn with_xml_body<T>(
    request: &Request,
    decode: impl FnOnce(&str) -> Result<T, crate::xml::XmlError>,
    f: impl FnOnce(T) -> Result<String, ControllerError>,
) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return Response::error_in(WireFormat::Xml, 400, "body is not utf-8"),
    };
    match decode(text) {
        Ok(value) => match f(value) {
            Ok(body) => Response::ok(WireFormat::Xml, body.into_bytes()),
            Err(e) => match e {
                ControllerError::NoSuchSession(_) => {
                    Response::error_in(WireFormat::Xml, 404, &e.to_string())
                }
            },
        },
        Err(e) => Response::error_in(WireFormat::Xml, 400, &e.to_string()),
    }
}

fn with_body<T: serde::de::DeserializeOwned>(
    request: &Request,
    f: impl FnOnce(T) -> Result<Response, ControllerError>,
) -> Response {
    match serde_json::from_slice::<T>(&request.body) {
        Ok(value) => match f(value) {
            Ok(resp) => resp,
            Err(e) => controller_error(e),
        },
        Err(e) => Response::error(400, &format!("bad json: {e}")),
    }
}

fn controller_error(e: ControllerError) -> Response {
    match e {
        ControllerError::NoSuchSession(_) => Response::error(404, &e.to_string()),
    }
}

fn json_response<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_vec(value) {
        Ok(body) => Response::ok_json(body),
        Err(e) => Response::error(500, &format!("serialization failure: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_response, write_request};

    fn start() -> (PolicyRestServer, SocketAddr) {
        let controller = PolicyController::new(PolicyConfig::default());
        let server = PolicyRestServer::start(controller).unwrap();
        let addr = server.addr();
        (server, addr)
    }

    fn call(addr: SocketAddr, method: Method, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_request(&mut stream, method, path, body).unwrap();
        read_response(&mut stream).unwrap()
    }

    #[test]
    fn health_endpoint() {
        let (_server, addr) = start();
        let (status, body) = call(addr, Method::Get, "/health", b"");
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"ok"}"#);
    }

    #[test]
    fn unknown_route_is_404() {
        let (_server, addr) = start();
        let (status, _) = call(addr, Method::Get, "/nope", b"");
        assert_eq!(status, 404);
    }

    #[test]
    fn bad_json_is_400() {
        let (_server, addr) = start();
        let (status, _) = call(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            b"{broken",
        );
        assert_eq!(status, 400);
    }

    fn call_xml(addr: SocketAddr, method: Method, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
        use crate::http::{write_request_in, WireFormat};
        let mut stream = TcpStream::connect(addr).unwrap();
        write_request_in(&mut stream, WireFormat::Xml, method, path, body).unwrap();
        read_response(&mut stream).unwrap()
    }

    #[test]
    fn malformed_xml_bodies_are_400() {
        let (_server, addr) = start();
        for body in [
            &b"not xml at all"[..],
            b"<transferRequest>",
            b"<wrongRoot></wrongRoot>",
            b"<transferRequest><transfer source=\"x\"/></transferRequest>",
            b"<transferRequest><bogus/></transferRequest>",
        ] {
            let (status, _) = call_xml(addr, Method::Post, "/sessions/default/transfers", body);
            assert_eq!(status, 400, "body {:?} must be rejected", body);
        }
        let (status, _) = call_xml(
            addr,
            Method::Post,
            "/sessions/default/cleanups",
            b"<cleanupRequest><cleanup/></cleanupRequest>",
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn non_utf8_xml_body_is_400() {
        let (_server, addr) = start();
        let (status, _) = call_xml(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            &[0xff, 0xfe, 0x80, 0x00, 0x12],
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn unknown_session_is_404() {
        let (_server, addr) = start();
        let env = TransferRequestEnvelope { transfers: vec![] };
        let (status, _) = call(
            addr,
            Method::Post,
            "/sessions/missing/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        assert_eq!(status, 404);
    }

    #[test]
    fn status_endpoint_returns_snapshot() {
        let (_server, addr) = start();
        let (status, body) = call(addr, Method::Get, "/sessions/default/status", b"");
        assert_eq!(status, 200);
        let env: StatusEnvelope = serde_json::from_slice(&body).unwrap();
        assert_eq!(env.stats.transfer_requests, 0);
        assert!(
            !env.rules.is_empty(),
            "status must expose per-rule engine counters"
        );
        assert!(env.rules.iter().all(|r| !r.name.is_empty()));
    }

    #[test]
    fn audit_log_endpoint_reports_decisions() {
        let (_server, addr) = start();
        let env = TransferRequestEnvelope {
            transfers: vec![pwm_core::TransferSpec {
                source: pwm_core::Url::new("gsiftp", "s", "/f1"),
                dest: pwm_core::Url::new("file", "d", "/f1"),
                bytes: 1,
                requested_streams: None,
                workflow: pwm_core::WorkflowId(1),
                cluster: None,
                priority: None,
            }],
        };
        call(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        let (status, body) = call(addr, Method::Get, "/sessions/default/log", b"");
        assert_eq!(status, 200);
        let records: Vec<pwm_core::AuditRecord> = serde_json::from_slice(&body).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            records[0].event,
            pwm_core::PolicyEvent::TransferEvaluated { .. }
        ));
        let (status, _) = call(addr, Method::Get, "/sessions/missing/log", b"");
        assert_eq!(status, 404);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (_server, addr) = start();
        let env = TransferRequestEnvelope {
            transfers: vec![pwm_core::TransferSpec {
                source: pwm_core::Url::new("gsiftp", "s", "/f1"),
                dest: pwm_core::Url::new("file", "d", "/f1"),
                bytes: 1,
                requested_streams: None,
                workflow: pwm_core::WorkflowId(1),
                cluster: None,
                priority: None,
            }],
        };
        call(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        let (status, body) = call(addr, Method::Get, "/metrics", b"");
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("# TYPE pwm_policy_transfer_requests_total counter"));
        assert!(
            text.contains("pwm_policy_transfer_requests_total{session=\"default\"} 1"),
            "scrape missing session counter:\n{text}"
        );
    }

    #[test]
    fn trace_endpoint_serves_chrome_trace_json() {
        let controller = PolicyController::new(PolicyConfig::default());
        // A sim clock makes evaluations emit trace instants.
        controller
            .set_sim_clock(
                pwm_core::DEFAULT_SESSION,
                pwm_core::SharedSimClock::default(),
            )
            .unwrap();
        let server = PolicyRestServer::start(controller).unwrap();
        let addr = server.addr();
        let env = TransferRequestEnvelope {
            transfers: vec![pwm_core::TransferSpec {
                source: pwm_core::Url::new("gsiftp", "s", "/f1"),
                dest: pwm_core::Url::new("file", "d", "/f1"),
                bytes: 1,
                requested_streams: None,
                workflow: pwm_core::WorkflowId(1),
                cluster: None,
                priority: None,
            }],
        };
        call(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        let (status, body) = call(addr, Method::Get, "/sessions/default/trace", b"");
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        pwm_obs::validate_chrome_trace(&text).expect("trace must be valid Chrome-trace JSON");
        let (status, _) = call(addr, Method::Get, "/sessions/missing/trace", b"");
        assert_eq!(status, 404);
    }

    #[test]
    fn put_config_creates_session() {
        let (_server, addr) = start();
        let cfg = PolicyConfig::default().with_threshold(123);
        let (status, _) = call(
            addr,
            Method::Put,
            "/sessions/new-session/config",
            &serde_json::to_vec(&cfg).unwrap(),
        );
        assert_eq!(status, 200);
        let (status, _) = call(addr, Method::Get, "/sessions/new-session/status", b"");
        assert_eq!(status, 200);
    }

    #[test]
    fn delete_session() {
        let (_server, addr) = start();
        let cfg = PolicyConfig::default();
        call(
            addr,
            Method::Put,
            "/sessions/temp/config",
            &serde_json::to_vec(&cfg).unwrap(),
        );
        let (status, _) = call(addr, Method::Delete, "/sessions/temp", b"");
        assert_eq!(status, 200);
        let (status, _) = call(addr, Method::Delete, "/sessions/temp", b"");
        assert_eq!(status, 404);
    }

    #[test]
    fn oversized_body_is_rejected_with_413() {
        let controller = PolicyController::new(PolicyConfig::default());
        let server = PolicyRestServer::start_with_limits(
            controller,
            ServerLimits {
                read_timeout: Duration::from_secs(5),
                max_body: 64,
            },
        )
        .unwrap();
        let (status, _) = call(
            server.addr(),
            Method::Post,
            "/sessions/default/transfers",
            &vec![b'x'; 4096],
        );
        assert_eq!(status, 413);
    }

    #[test]
    fn stalled_client_gets_408() {
        let controller = PolicyController::new(PolicyConfig::default());
        let server = PolicyRestServer::start_with_limits(
            controller,
            ServerLimits {
                read_timeout: Duration::from_millis(200),
                max_body: 16 << 20,
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        // Headers never finish: the slow-loris pattern.
        stream.write_all(b"GET /health HTTP/1.1\r\n").unwrap();
        let (status, _) = read_response(&mut stream).unwrap();
        assert_eq!(status, 408);
    }

    #[test]
    fn shutdown_drains_inflight_connections() {
        let controller = PolicyController::new(PolicyConfig::default());
        let mut server = PolicyRestServer::start_with_limits(
            controller,
            ServerLimits {
                read_timeout: Duration::from_millis(200),
                max_body: 16 << 20,
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        stream.write_all(b"POST /x HTTP/1.1\r\n").unwrap();
        // Let the accept loop hand the connection to a worker thread.
        std::thread::sleep(Duration::from_millis(100));
        server.shutdown();
        // Shutdown joined the worker, which answered 408 before exiting
        // (or the connection was never accepted under scheduling races).
        if let Ok((status, _)) = read_response(&mut stream) {
            assert_eq!(status, 408);
        }
    }

    #[test]
    fn server_restarts_from_log_with_state_preserved() {
        let dir = std::env::temp_dir().join(format!(
            "pwm-rest-restart-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = PolicyConfig::default();
        let controller = PolicyController::new(cfg.clone());
        controller
            .create_durable_session(
                pwm_core::DEFAULT_SESSION,
                cfg.clone(),
                pwm_core::DurabilityConfig::new(&dir),
            )
            .unwrap();
        let mut server = PolicyRestServer::start(controller).unwrap();
        let addr = server.addr();
        let env = TransferRequestEnvelope {
            transfers: vec![pwm_core::TransferSpec {
                source: pwm_core::Url::new("gsiftp", "s", "/f1"),
                dest: pwm_core::Url::new("file", "d", "/f1"),
                bytes: 1,
                requested_streams: None,
                workflow: pwm_core::WorkflowId(1),
                cluster: None,
                priority: None,
            }],
        };
        // Stage f1 to completion over the socket, then stop the server.
        let (status, body) = call(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        assert_eq!(status, 200);
        let resp: TransferResponseEnvelope = serde_json::from_slice(&body).unwrap();
        let done = TransferCompletionEnvelope {
            outcomes: vec![pwm_core::TransferOutcome {
                id: resp.advice[0].id,
                success: true,
            }],
        };
        let (status, _) = call(
            addr,
            Method::Post,
            "/sessions/default/transfers/complete",
            &serde_json::to_vec(&done).unwrap(),
        );
        assert_eq!(status, 200);
        server.shutdown();

        // "New process": a fresh controller resumes from the log and a new
        // server binds a new port. The staged file must still be known.
        let controller2 = PolicyController::new(cfg.clone());
        controller2
            .resume_durable_session(
                pwm_core::DEFAULT_SESSION,
                pwm_core::DurabilityConfig::new(&dir),
            )
            .unwrap();
        let server2 = PolicyRestServer::start(controller2).unwrap();
        let (status, body) = call(
            server2.addr(),
            Method::Post,
            "/sessions/default/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        assert_eq!(status, 200);
        let again: TransferResponseEnvelope = serde_json::from_slice(&body).unwrap();
        assert!(
            !again.advice[0].should_execute(),
            "restarted server must remember the staged file"
        );
        let (status, body) = call(server2.addr(), Method::Get, "/sessions/default/status", b"");
        assert_eq!(status, 200);
        let status_env: StatusEnvelope = serde_json::from_slice(&body).unwrap();
        assert_eq!(
            status_env.stats.transfer_requests, 2,
            "pre-restart traffic counts in post-restart stats"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (mut server, addr) = start();
        server.shutdown();
        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly; a request must at least fail.
                let mut s = TcpStream::connect(addr).unwrap();
                write_request(&mut s, Method::Get, "/health", b"").ok();
                read_response(&mut s).is_err()
            }
        );
    }
}
