//! The RESTful web interface (server side).
//!
//! [`PolicyRestServer`] binds a loopback TCP listener and serves the policy
//! API, delegating every request to a [`PolicyController`] exactly as the
//! paper's web interface delegates to the Policy Controller.
//!
//! The server is a single-threaded nonblocking event loop driven by
//! `poll(2)` (see [`crate::poller`]): every connection is a small state
//! machine with a read buffer, a write buffer, and a deadline. HTTP/1.1
//! keep-alive and pipelining are supported, and consecutive pipelined
//! transfer-evaluate requests for the same session are drained into one
//! batched `evaluate_transfer_groups` call — one rules pass serves a whole
//! pipeline window, which is where the svcbench throughput comes from.
//! Graceful shutdown uses the poller's self-pipe: requests fully received
//! before shutdown are answered, partial requests get a clean 503.
//!
//! Routes:
//!
//! | Method | Path | Body → Response |
//! |--------|------|-----------------|
//! | GET    | `/health` | — → `{"status":"ok"}` |
//! | POST   | `/sessions/{s}/transfers` | TransferRequestEnvelope → TransferResponseEnvelope |
//! | POST   | `/sessions/{s}/transfers/complete` | TransferCompletionEnvelope → Ack |
//! | POST   | `/sessions/{s}/cleanups` | CleanupRequestEnvelope → CleanupResponseEnvelope |
//! | POST   | `/sessions/{s}/cleanups/complete` | CleanupCompletionEnvelope → Ack |
//! | GET    | `/sessions/{s}/status` | — → StatusEnvelope |
//! | GET    | `/sessions/{s}/log` | — → `[AuditRecord]` (the monitoring log) |
//! | GET    | `/sessions/{s}/trace` | — → Chrome-trace JSON (load in Perfetto) |
//! | GET    | `/metrics` | — → Prometheus text exposition (all sessions) |
//! | PUT    | `/sessions/{s}/config` | PolicyConfig → Ack (creates the session if absent) |

use crate::http::{
    render_response, try_parse_request, HttpError, Method, Request, Response, WireFormat,
};
use crate::poller::{poll_fds, PollFd, WakePipe, Waker, POLL_IN, POLL_OUT};
use crate::wire::*;
use crate::xml;
use pwm_core::{ControllerError, PolicyConfig, PolicyController, TransferSpec};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection resource limits (slow-loris and memory-bomb guards).
#[derive(Debug, Clone, Copy)]
pub struct ServerLimits {
    /// Read deadline: a connection with an unfinished request that stalls
    /// past this gets 408 and is closed. (Idle keep-alive connections that
    /// already served a request are closed silently.) Also the grace
    /// period a graceful shutdown allows for flushing responses.
    pub read_timeout: Duration,
    /// Maximum request-body size: a larger declared Content-Length gets
    /// 413 without the body ever being read.
    pub max_body: usize,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            read_timeout: Duration::from_secs(5),
            max_body: 16 << 20,
        }
    }
}

/// A running policy REST server (event-driven, single loop thread).
pub struct PolicyRestServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    loop_thread: Option<JoinHandle<()>>,
}

impl PolicyRestServer {
    /// Bind `127.0.0.1:0` (ephemeral port) and start serving `controller`
    /// with default [`ServerLimits`].
    pub fn start(controller: PolicyController) -> std::io::Result<PolicyRestServer> {
        Self::start_with_limits(controller, ServerLimits::default())
    }

    /// Bind `127.0.0.1:0` and start serving with explicit limits.
    pub fn start_with_limits(
        controller: PolicyController,
        limits: ServerLimits,
    ) -> std::io::Result<PolicyRestServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let (wake, waker) = WakePipe::new()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let loop_shutdown = shutdown.clone();
        let loop_thread = std::thread::Builder::new()
            .name("policy-rest-loop".into())
            .spawn(move || event_loop(listener, wake, controller, limits, loop_shutdown))?;
        Ok(PolicyRestServer {
            addr,
            shutdown,
            waker,
            loop_thread: Some(loop_thread),
        })
    }

    /// The bound address (ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: wake the event loop via the self-pipe, stop
    /// accepting, answer every request that was fully received, 503 the
    /// partial ones, flush, and join the loop thread. After this returns,
    /// no request is mid-flight — safe to recover the controller's state
    /// elsewhere (see `recover_session` / `resume_durable_session`).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for PolicyRestServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Event-loop counters and gauges, published on the controller's shared
/// `/metrics` registry alongside the per-session policy metrics.
struct LoopMetrics {
    wakeups: pwm_obs::Counter,
    requests: pwm_obs::Counter,
    batched: pwm_obs::Counter,
    open_connections: pwm_obs::Gauge,
    write_backlog: pwm_obs::Gauge,
}

impl LoopMetrics {
    fn register(controller: &PolicyController) -> LoopMetrics {
        let r = &controller.obs().registry;
        LoopMetrics {
            wakeups: r.counter(
                "pwm_rest_event_loop_wakeups_total",
                "Times the server's poll loop woke up (readiness, timeout, or self-pipe)",
                &[],
            ),
            requests: r.counter(
                "pwm_rest_requests_total",
                "HTTP requests parsed by the event loop",
                &[],
            ),
            batched: r.counter(
                "pwm_rest_batched_requests_total",
                "Requests answered via a batched evaluate_transfer_groups rules pass",
                &[],
            ),
            open_connections: r.gauge(
                "pwm_rest_open_connections",
                "Connections currently registered with the event loop",
                &[],
            ),
            write_backlog: r.gauge(
                "pwm_rest_write_backlog_bytes",
                "Response bytes queued across all connections (event-loop queue depth)",
                &[],
            ),
        }
    }
}

enum ConnState {
    /// Reading and serving requests.
    Open,
    /// No more reads; flush the write buffer, then close.
    Closing,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    rbuf: Vec<u8>,
    /// Unflushed response bytes.
    wbuf: Vec<u8>,
    /// Requests answered on this connection (distinguishes a never-spoke
    /// stall, which deserves 408, from an idle keep-alive connection,
    /// which is closed silently).
    served: u64,
    deadline: Instant,
    state: ConnState,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant, limits: &ServerLimits) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            served: 0,
            deadline: now + limits.read_timeout,
            state: ConnState::Open,
        }
    }

    fn push_response(&mut self, response: &Response, keep_alive: bool) {
        self.wbuf
            .extend_from_slice(&render_response(response, keep_alive));
        if !keep_alive {
            self.state = ConnState::Closing;
        }
    }

    /// Read until `WouldBlock`; true when the peer closed its write side.
    fn drain_read(&mut self) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return true,
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }

    /// Write as much of `wbuf` as the socket accepts.
    fn drain_write(&mut self) {
        let mut written = 0;
        while written < self.wbuf.len() {
            match self.stream.write(&self.wbuf[written..]) {
                Ok(0) => break,
                Ok(n) => written += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Peer is gone; nothing left to flush.
                    written = self.wbuf.len();
                    self.state = ConnState::Closing;
                    break;
                }
            }
        }
        self.wbuf.drain(..written);
    }

    fn finished(&self) -> bool {
        matches!(self.state, ConnState::Closing) && self.wbuf.is_empty()
    }
}

fn event_loop(
    listener: TcpListener,
    mut wake: WakePipe,
    controller: PolicyController,
    limits: ServerLimits,
    shutdown: Arc<AtomicBool>,
) {
    let metrics = LoopMetrics::register(&controller);
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut conns: Vec<Conn> = Vec::new();
    let mut draining = false;
    let mut drain_deadline = Instant::now();

    loop {
        // Poll set: [wake, listener?, conns...]. Indices into `fds` for
        // the connection entries start at `conn_base`.
        let mut fds = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd::new(wake.fd(), POLL_IN));
        let listener_slot = (!draining).then(|| {
            fds.push(PollFd::new(listener.as_raw_fd(), POLL_IN));
            fds.len() - 1
        });
        let conn_base = fds.len();
        for c in &conns {
            let mut events = 0i16;
            if matches!(c.state, ConnState::Open) {
                events |= POLL_IN;
            }
            if !c.wbuf.is_empty() {
                events |= POLL_OUT;
            }
            fds.push(PollFd::new(c.stream.as_raw_fd(), events));
        }

        // Sleep until the nearest deadline (connection read deadlines, or
        // the drain grace deadline), capped so gauge refreshes stay live.
        let now = Instant::now();
        let mut next_deadline = now + Duration::from_secs(1);
        for c in &conns {
            if matches!(c.state, ConnState::Open) {
                next_deadline = next_deadline.min(c.deadline);
            }
        }
        if draining {
            next_deadline = next_deadline.min(drain_deadline);
        }
        let timeout = next_deadline.saturating_duration_since(now);
        let _ = poll_fds(&mut fds, Some(timeout));
        metrics.wakeups.inc();
        let now = Instant::now();

        if fds[0].readable() {
            wake.drain();
        }

        // Serve readable connections (indices still aligned with `fds`;
        // new connections are accepted after this pass).
        if !draining {
            for (i, c) in conns.iter_mut().enumerate() {
                if matches!(c.state, ConnState::Open) && fds[conn_base + i].readable() {
                    let eof = c.drain_read();
                    c.deadline = now + limits.read_timeout;
                    serve_buffered(c, &controller, &limits, &metrics);
                    if eof {
                        c.state = ConnState::Closing;
                    }
                }
            }
        }

        // Accept new connections.
        if let Some(slot) = listener_slot {
            if fds[slot].readable() {
                while let Ok((stream, _)) = listener.accept() {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    conns.push(Conn::new(stream, now, &limits));
                }
            }
        }

        // Shutdown requested: stop reading, answer everything already on
        // the wire, 503 the partials, then flush within the grace period.
        if shutdown.load(Ordering::SeqCst) && !draining {
            draining = true;
            drain_deadline = now + limits.read_timeout;
            for c in conns.iter_mut() {
                if matches!(c.state, ConnState::Open) {
                    c.drain_read();
                    serve_buffered(c, &controller, &limits, &metrics);
                    if !c.rbuf.is_empty() {
                        c.push_response(&Response::error(503, "server shutting down"), false);
                        c.rbuf.clear();
                    }
                    c.state = ConnState::Closing;
                }
            }
        }

        // Read-deadline enforcement.
        for c in conns.iter_mut() {
            if matches!(c.state, ConnState::Open) && now >= c.deadline {
                if !c.rbuf.is_empty() || c.served == 0 {
                    // Mid-request stall (slow loris) or a connection that
                    // never spoke: answer 408 and close.
                    c.push_response(&Response::error(408, "request read timed out"), false);
                } else {
                    // Idle keep-alive connection: close silently.
                    c.state = ConnState::Closing;
                }
            }
        }

        // Flush pending writes, then reap finished connections.
        for c in conns.iter_mut() {
            if !c.wbuf.is_empty() {
                c.drain_write();
            }
        }
        conns.retain(|c| !c.finished());

        metrics.open_connections.set(conns.len() as f64);
        metrics
            .write_backlog
            .set(conns.iter().map(|c| c.wbuf.len()).sum::<usize>() as f64);

        if draining && (conns.is_empty() || now >= drain_deadline) {
            metrics.open_connections.set(0.0);
            metrics.write_backlog.set(0.0);
            break;
        }
    }
}

/// Parse every complete request out of a connection's read buffer and
/// queue the responses. Runs of ≥ 2 consecutive pipelined JSON
/// transfer-evaluate requests for the same session collapse into one
/// batched `evaluate_transfer_groups` controller call.
fn serve_buffered(
    c: &mut Conn,
    controller: &PolicyController,
    limits: &ServerLimits,
    metrics: &LoopMetrics,
) {
    let mut parsed: Vec<Request> = Vec::new();
    let mut fatal: Option<Response> = None;
    loop {
        match try_parse_request(&c.rbuf, limits.max_body) {
            Ok(Some((request, consumed))) => {
                c.rbuf.drain(..consumed);
                parsed.push(request);
            }
            Ok(None) => break,
            Err(e @ HttpError::TooLarge(_)) => {
                fatal = Some(Response::error(413, &e.to_string()));
                break;
            }
            Err(e) => {
                fatal = Some(Response::error(400, &format!("bad request: {e}")));
                break;
            }
        }
    }

    metrics.requests.add(parsed.len() as u64);
    let mut i = 0;
    while i < parsed.len() {
        // A pipelined run: maximal stretch of batchable transfer-evaluate
        // requests addressed to one session.
        if let Some(session) = batchable_session(&parsed[i]) {
            let mut j = i + 1;
            while j < parsed.len() && batchable_session(&parsed[j]).as_deref() == Some(&session) {
                j += 1;
            }
            if j - i >= 2 {
                serve_batched(c, &parsed[i..j], &session, controller, metrics);
                c.served += (j - i) as u64;
                i = j;
                continue;
            }
        }
        let request = &parsed[i];
        let response = route(request, controller);
        c.push_response(&response, request.keep_alive);
        c.served += 1;
        i += 1;
        if !request.keep_alive {
            // Pipelined bytes after an explicit close are undefined
            // behavior per HTTP; drop them.
            c.rbuf.clear();
            return;
        }
    }

    if let Some(response) = fatal {
        c.push_response(&response, false);
        c.rbuf.clear();
    }
}

/// Is this request eligible for the batched advice path? JSON POSTs to
/// `/sessions/{s}/transfers` on a keep-alive connection; returns the
/// session name.
fn batchable_session(request: &Request) -> Option<String> {
    if request.method != Method::Post || !request.keep_alive {
        return None;
    }
    if !matches!(request.format, WireFormat::Json | WireFormat::Text) {
        return None;
    }
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["sessions", session, "transfers"] => Some(session.to_string()),
        _ => None,
    }
}

/// Answer a run of pipelined transfer-evaluate requests with one batched
/// rules pass. Requests whose bodies fail to decode get their own 400
/// without disturbing the rest of the run; response order matches request
/// order (HTTP pipelining contract).
fn serve_batched(
    c: &mut Conn,
    run: &[Request],
    session: &str,
    controller: &PolicyController,
    metrics: &LoopMetrics,
) {
    let decoded: Vec<Result<Vec<TransferSpec>, String>> = run
        .iter()
        .map(|r| {
            // The fast codec only accepts the canonical envelope shape; any
            // unusual body falls back to the reference decoder (and its
            // error messages).
            if let Some(transfers) = crate::fastjson::parse_transfer_request(&r.body) {
                return Ok(transfers);
            }
            serde_json::from_slice::<TransferRequestEnvelope>(&r.body)
                .map(|env| env.transfers)
                .map_err(|e| format!("bad json: {e}"))
        })
        .collect();
    let groups: Vec<Vec<TransferSpec>> = decoded
        .iter()
        .filter_map(|d| d.as_ref().ok().cloned())
        .collect();
    let mut advice_groups = match controller.evaluate_transfer_groups(session, groups) {
        Ok(groups) => groups.into_iter(),
        Err(e) => {
            let response = controller_error(e);
            for _ in run {
                c.push_response(&response, true);
            }
            return;
        }
    };
    metrics.batched.add(run.len() as u64);
    for d in decoded {
        let response = match d {
            Ok(_) => {
                let advice = advice_groups.next().unwrap_or_default();
                Response::ok_json(crate::fastjson::render_transfer_response(&advice))
            }
            Err(message) => Response::error(400, &message),
        };
        c.push_response(&response, true);
    }
}

fn route(request: &Request, controller: &PolicyController) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method, segments.as_slice()) {
        (Method::Get, ["health"]) => Response::ok_json(br#"{"status":"ok"}"#.to_vec()),
        (Method::Get, ["metrics"]) => Response::ok_text(controller.render_metrics().into_bytes()),
        (Method::Get, ["sessions", session, "trace"]) => {
            match controller.trace_chrome_json(session) {
                Ok(json) => Response::ok_json(json.into_bytes()),
                Err(e) => controller_error(e),
            }
        }
        (Method::Post, ["sessions", session, "transfers"]) => match request.format {
            WireFormat::Json | WireFormat::Text => {
                // Canonical bodies take the allocation-light codec; anything
                // else falls back to the reference serde path.
                if let Some(transfers) = crate::fastjson::parse_transfer_request(&request.body) {
                    match controller.evaluate_transfers(session, transfers) {
                        Ok(advice) => {
                            Response::ok_json(crate::fastjson::render_transfer_response(&advice))
                        }
                        Err(e) => controller_error(e),
                    }
                } else {
                    with_body::<TransferRequestEnvelope>(request, |env| {
                        let advice = controller.evaluate_transfers(session, env.transfers)?;
                        Ok(json_response(&TransferResponseEnvelope { advice }))
                    })
                }
            }
            WireFormat::Xml => {
                with_xml_body(request, xml::transfer_request_from_xml, |transfers| {
                    let advice = controller.evaluate_transfers(session, transfers)?;
                    Ok(xml::transfer_response_to_xml(&advice))
                })
            }
        },
        (Method::Post, ["sessions", session, "transfers", "complete"]) => match request.format {
            WireFormat::Json | WireFormat::Text => {
                with_body::<TransferCompletionEnvelope>(request, |env| {
                    controller.report_transfers(session, env.outcomes)?;
                    Ok(json_response(&AckEnvelope::ok()))
                })
            }
            WireFormat::Xml => {
                with_xml_body(request, xml::transfer_completion_from_xml, |outcomes| {
                    controller.report_transfers(session, outcomes)?;
                    Ok(xml::ack_xml())
                })
            }
        },
        (Method::Post, ["sessions", session, "cleanups"]) => match request.format {
            WireFormat::Json | WireFormat::Text => {
                with_body::<CleanupRequestEnvelope>(request, |env| {
                    let advice = controller.evaluate_cleanups(session, env.cleanups)?;
                    Ok(json_response(&CleanupResponseEnvelope { advice }))
                })
            }
            WireFormat::Xml => with_xml_body(request, xml::cleanup_request_from_xml, |cleanups| {
                let advice = controller.evaluate_cleanups(session, cleanups)?;
                Ok(xml::cleanup_response_to_xml(&advice))
            }),
        },
        (Method::Post, ["sessions", session, "cleanups", "complete"]) => match request.format {
            WireFormat::Json | WireFormat::Text => {
                with_body::<CleanupCompletionEnvelope>(request, |env| {
                    controller.report_cleanups(session, env.outcomes)?;
                    Ok(json_response(&AckEnvelope::ok()))
                })
            }
            WireFormat::Xml => {
                with_xml_body(request, xml::cleanup_completion_from_xml, |outcomes| {
                    controller.report_cleanups(session, outcomes)?;
                    Ok(xml::ack_xml())
                })
            }
        },
        (Method::Get, ["sessions", session, "log"]) => match controller.audit_since(session, 0) {
            Ok(records) => json_response(&records),
            Err(e) => controller_error(e),
        },
        (Method::Get, ["sessions", session, "status"]) => {
            match (
                controller.snapshot(session),
                controller.stats(session),
                controller.rule_stats(session),
            ) {
                (Ok(snapshot), Ok(stats), Ok(rules)) => json_response(&StatusEnvelope {
                    snapshot,
                    stats,
                    rules,
                }),
                (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => controller_error(e),
            }
        }
        (Method::Put, ["sessions", session, "config"]) => {
            with_body::<PolicyConfig>(request, |config| {
                // PUT is an upsert: reconfigure or create.
                if controller.set_config(session, config.clone()).is_err() {
                    controller.create_session(*session, config);
                }
                Ok(json_response(&AckEnvelope::ok()))
            })
        }
        (Method::Delete, ["sessions", session]) => {
            if controller.drop_session(session) {
                json_response(&AckEnvelope::ok())
            } else {
                Response::error(404, &format!("no such policy session: {session}"))
            }
        }
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

/// Decode an XML body, run the handler, and answer in XML.
fn with_xml_body<T>(
    request: &Request,
    decode: impl FnOnce(&str) -> Result<T, crate::xml::XmlError>,
    f: impl FnOnce(T) -> Result<String, ControllerError>,
) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(t) => t,
        Err(_) => return Response::error_in(WireFormat::Xml, 400, "body is not utf-8"),
    };
    match decode(text) {
        Ok(value) => match f(value) {
            Ok(body) => Response::ok(WireFormat::Xml, body.into_bytes()),
            Err(e) => match e {
                ControllerError::NoSuchSession(_) => {
                    Response::error_in(WireFormat::Xml, 404, &e.to_string())
                }
            },
        },
        Err(e) => Response::error_in(WireFormat::Xml, 400, &e.to_string()),
    }
}

fn with_body<T: serde::de::DeserializeOwned>(
    request: &Request,
    f: impl FnOnce(T) -> Result<Response, ControllerError>,
) -> Response {
    match serde_json::from_slice::<T>(&request.body) {
        Ok(value) => match f(value) {
            Ok(resp) => resp,
            Err(e) => controller_error(e),
        },
        Err(e) => Response::error(400, &format!("bad json: {e}")),
    }
}

fn controller_error(e: ControllerError) -> Response {
    match e {
        ControllerError::NoSuchSession(_) => Response::error(404, &e.to_string()),
    }
}

fn json_response<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_vec(value) {
        Ok(body) => Response::ok_json(body),
        Err(e) => Response::error(500, &format!("serialization failure: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_response, write_request};

    fn start() -> (PolicyRestServer, SocketAddr) {
        let controller = PolicyController::new(PolicyConfig::default());
        let server = PolicyRestServer::start(controller).unwrap();
        let addr = server.addr();
        (server, addr)
    }

    fn call(addr: SocketAddr, method: Method, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_request(&mut stream, method, path, body).unwrap();
        read_response(&mut stream).unwrap()
    }

    /// Read `n` pipelined responses off one stream. The blocking
    /// `read_response` would discard bytes of the next response that
    /// arrive in the same segment, so this accumulates and parses
    /// incrementally like a real pipelining client.
    fn read_pipelined(stream: &mut TcpStream, n: usize) -> Vec<(u16, Vec<u8>)> {
        let mut buf = Vec::new();
        let mut out = Vec::new();
        while out.len() < n {
            if let Some((status, body, consumed)) = crate::http::try_parse_response(&buf).unwrap() {
                buf.drain(..consumed);
                out.push((status, body));
                continue;
            }
            let mut chunk = [0u8; 8192];
            let got = stream.read(&mut chunk).unwrap();
            assert!(got > 0, "server closed mid-pipeline");
            buf.extend_from_slice(&chunk[..got]);
        }
        out
    }

    #[test]
    fn health_endpoint() {
        let (_server, addr) = start();
        let (status, body) = call(addr, Method::Get, "/health", b"");
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"status":"ok"}"#);
    }

    #[test]
    fn unknown_route_is_404() {
        let (_server, addr) = start();
        let (status, _) = call(addr, Method::Get, "/nope", b"");
        assert_eq!(status, 404);
    }

    #[test]
    fn bad_json_is_400() {
        let (_server, addr) = start();
        let (status, _) = call(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            b"{broken",
        );
        assert_eq!(status, 400);
    }

    fn call_xml(addr: SocketAddr, method: Method, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
        use crate::http::{write_request_in, WireFormat};
        let mut stream = TcpStream::connect(addr).unwrap();
        write_request_in(&mut stream, WireFormat::Xml, method, path, body).unwrap();
        read_response(&mut stream).unwrap()
    }

    #[test]
    fn malformed_xml_bodies_are_400() {
        let (_server, addr) = start();
        for body in [
            &b"not xml at all"[..],
            b"<transferRequest>",
            b"<wrongRoot></wrongRoot>",
            b"<transferRequest><transfer source=\"x\"/></transferRequest>",
            b"<transferRequest><bogus/></transferRequest>",
        ] {
            let (status, _) = call_xml(addr, Method::Post, "/sessions/default/transfers", body);
            assert_eq!(status, 400, "body {:?} must be rejected", body);
        }
        let (status, _) = call_xml(
            addr,
            Method::Post,
            "/sessions/default/cleanups",
            b"<cleanupRequest><cleanup/></cleanupRequest>",
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn non_utf8_xml_body_is_400() {
        let (_server, addr) = start();
        let (status, _) = call_xml(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            &[0xff, 0xfe, 0x80, 0x00, 0x12],
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn unknown_session_is_404() {
        let (_server, addr) = start();
        let env = TransferRequestEnvelope { transfers: vec![] };
        let (status, _) = call(
            addr,
            Method::Post,
            "/sessions/missing/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        assert_eq!(status, 404);
    }

    #[test]
    fn status_endpoint_returns_snapshot() {
        let (_server, addr) = start();
        let (status, body) = call(addr, Method::Get, "/sessions/default/status", b"");
        assert_eq!(status, 200);
        let env: StatusEnvelope = serde_json::from_slice(&body).unwrap();
        assert_eq!(env.stats.transfer_requests, 0);
        assert!(
            !env.rules.is_empty(),
            "status must expose per-rule engine counters"
        );
        assert!(env.rules.iter().all(|r| !r.name.is_empty()));
    }

    #[test]
    fn audit_log_endpoint_reports_decisions() {
        let (_server, addr) = start();
        let env = TransferRequestEnvelope {
            transfers: vec![pwm_core::TransferSpec {
                source: pwm_core::Url::new("gsiftp", "s", "/f1"),
                dest: pwm_core::Url::new("file", "d", "/f1"),
                bytes: 1,
                requested_streams: None,
                workflow: pwm_core::WorkflowId(1),
                cluster: None,
                priority: None,
            }],
        };
        call(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        let (status, body) = call(addr, Method::Get, "/sessions/default/log", b"");
        assert_eq!(status, 200);
        let records: Vec<pwm_core::AuditRecord> = serde_json::from_slice(&body).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(
            records[0].event,
            pwm_core::PolicyEvent::TransferEvaluated { .. }
        ));
        let (status, _) = call(addr, Method::Get, "/sessions/missing/log", b"");
        assert_eq!(status, 404);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (_server, addr) = start();
        let env = TransferRequestEnvelope {
            transfers: vec![pwm_core::TransferSpec {
                source: pwm_core::Url::new("gsiftp", "s", "/f1"),
                dest: pwm_core::Url::new("file", "d", "/f1"),
                bytes: 1,
                requested_streams: None,
                workflow: pwm_core::WorkflowId(1),
                cluster: None,
                priority: None,
            }],
        };
        call(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        let (status, body) = call(addr, Method::Get, "/metrics", b"");
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("# TYPE pwm_policy_transfer_requests_total counter"));
        assert!(
            text.contains("pwm_policy_transfer_requests_total{session=\"default\"} 1"),
            "scrape missing session counter:\n{text}"
        );
    }

    #[test]
    fn trace_endpoint_serves_chrome_trace_json() {
        let controller = PolicyController::new(PolicyConfig::default());
        // A sim clock makes evaluations emit trace instants.
        controller
            .set_sim_clock(
                pwm_core::DEFAULT_SESSION,
                pwm_core::SharedSimClock::default(),
            )
            .unwrap();
        let server = PolicyRestServer::start(controller).unwrap();
        let addr = server.addr();
        let env = TransferRequestEnvelope {
            transfers: vec![pwm_core::TransferSpec {
                source: pwm_core::Url::new("gsiftp", "s", "/f1"),
                dest: pwm_core::Url::new("file", "d", "/f1"),
                bytes: 1,
                requested_streams: None,
                workflow: pwm_core::WorkflowId(1),
                cluster: None,
                priority: None,
            }],
        };
        call(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        let (status, body) = call(addr, Method::Get, "/sessions/default/trace", b"");
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        pwm_obs::validate_chrome_trace(&text).expect("trace must be valid Chrome-trace JSON");
        let (status, _) = call(addr, Method::Get, "/sessions/missing/trace", b"");
        assert_eq!(status, 404);
    }

    #[test]
    fn put_config_creates_session() {
        let (_server, addr) = start();
        let cfg = PolicyConfig::default().with_threshold(123);
        let (status, _) = call(
            addr,
            Method::Put,
            "/sessions/new-session/config",
            &serde_json::to_vec(&cfg).unwrap(),
        );
        assert_eq!(status, 200);
        let (status, _) = call(addr, Method::Get, "/sessions/new-session/status", b"");
        assert_eq!(status, 200);
    }

    #[test]
    fn delete_session() {
        let (_server, addr) = start();
        let cfg = PolicyConfig::default();
        call(
            addr,
            Method::Put,
            "/sessions/temp/config",
            &serde_json::to_vec(&cfg).unwrap(),
        );
        let (status, _) = call(addr, Method::Delete, "/sessions/temp", b"");
        assert_eq!(status, 200);
        let (status, _) = call(addr, Method::Delete, "/sessions/temp", b"");
        assert_eq!(status, 404);
    }

    #[test]
    fn oversized_body_is_rejected_with_413() {
        let controller = PolicyController::new(PolicyConfig::default());
        let server = PolicyRestServer::start_with_limits(
            controller,
            ServerLimits {
                read_timeout: Duration::from_secs(5),
                max_body: 64,
            },
        )
        .unwrap();
        let (status, _) = call(
            server.addr(),
            Method::Post,
            "/sessions/default/transfers",
            &vec![b'x'; 4096],
        );
        assert_eq!(status, 413);
    }

    #[test]
    fn stalled_client_gets_408() {
        let controller = PolicyController::new(PolicyConfig::default());
        let server = PolicyRestServer::start_with_limits(
            controller,
            ServerLimits {
                read_timeout: Duration::from_millis(200),
                max_body: 16 << 20,
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        use std::io::Write;
        // Headers never finish: the slow-loris pattern.
        stream.write_all(b"GET /health HTTP/1.1\r\n").unwrap();
        let (status, _) = read_response(&mut stream).unwrap();
        assert_eq!(status, 408);
    }

    #[test]
    fn shutdown_drains_inflight_connections() {
        let controller = PolicyController::new(PolicyConfig::default());
        let mut server = PolicyRestServer::start_with_limits(
            controller,
            ServerLimits {
                read_timeout: Duration::from_millis(200),
                max_body: 16 << 20,
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"POST /x HTTP/1.1\r\n").unwrap();
        // Let the event loop register the connection and its partial bytes.
        std::thread::sleep(Duration::from_millis(100));
        server.shutdown();
        // The drain answered the partial request with a clean 503 before
        // closing (or the connection was never registered under scheduling
        // races).
        if let Ok((status, _)) = read_response(&mut stream) {
            assert_eq!(status, 503);
        }
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let (_server, addr) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Three pipelined keep-alive requests in one write: two JSON
        // transfer-evaluates (the batched path) and a health check.
        let env = TransferRequestEnvelope {
            transfers: vec![pwm_core::TransferSpec {
                source: pwm_core::Url::new("gsiftp", "s", "/f1"),
                dest: pwm_core::Url::new("file", "d", "/f1"),
                bytes: 1,
                requested_streams: None,
                workflow: pwm_core::WorkflowId(1),
                cluster: None,
                priority: None,
            }],
        };
        let body = serde_json::to_vec(&env).unwrap();
        let mut wire = Vec::new();
        for _ in 0..2 {
            wire.extend_from_slice(&crate::http::render_request(
                WireFormat::Json,
                Method::Post,
                "/sessions/default/transfers",
                &body,
                true,
            ));
        }
        wire.extend_from_slice(&crate::http::render_request(
            WireFormat::Json,
            Method::Get,
            "/health",
            b"",
            true,
        ));
        stream.write_all(&wire).unwrap();
        stream.flush().unwrap();

        let responses = read_pipelined(&mut stream, 3);
        assert!(responses.iter().all(|(status, _)| *status == 200));
        let first: TransferResponseEnvelope = serde_json::from_slice(&responses[0].1).unwrap();
        assert!(first.advice[0].should_execute());
        let second: TransferResponseEnvelope = serde_json::from_slice(&responses[1].1).unwrap();
        assert!(
            !second.advice[0].should_execute(),
            "duplicate in the same pipeline window must still be suppressed"
        );
        assert_eq!(responses[2].1, br#"{"status":"ok"}"#);
    }

    #[test]
    fn bad_json_mid_pipeline_gets_its_own_400() {
        let (_server, addr) = start();
        let mut stream = TcpStream::connect(addr).unwrap();
        let env = TransferRequestEnvelope {
            transfers: vec![pwm_core::TransferSpec {
                source: pwm_core::Url::new("gsiftp", "s", "/f9"),
                dest: pwm_core::Url::new("file", "d", "/f9"),
                bytes: 1,
                requested_streams: None,
                workflow: pwm_core::WorkflowId(1),
                cluster: None,
                priority: None,
            }],
        };
        let good = serde_json::to_vec(&env).unwrap();
        let mut wire = Vec::new();
        wire.extend_from_slice(&crate::http::render_request(
            WireFormat::Json,
            Method::Post,
            "/sessions/default/transfers",
            &good,
            true,
        ));
        wire.extend_from_slice(&crate::http::render_request(
            WireFormat::Json,
            Method::Post,
            "/sessions/default/transfers",
            b"{broken",
            true,
        ));
        wire.extend_from_slice(&crate::http::render_request(
            WireFormat::Json,
            Method::Post,
            "/sessions/default/transfers",
            &good,
            true,
        ));
        stream.write_all(&wire).unwrap();
        let responses = read_pipelined(&mut stream, 3);
        let statuses: Vec<u16> = responses.iter().map(|(s, _)| *s).collect();
        assert_eq!(statuses, [200, 400, 200]);
        let third: TransferResponseEnvelope = serde_json::from_slice(&responses[2].1).unwrap();
        assert!(!third.advice[0].should_execute(), "dedup across the batch");
    }

    #[test]
    fn server_restarts_from_log_with_state_preserved() {
        let dir = std::env::temp_dir().join(format!(
            "pwm-rest-restart-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = PolicyConfig::default();
        let controller = PolicyController::new(cfg.clone());
        controller
            .create_durable_session(
                pwm_core::DEFAULT_SESSION,
                cfg.clone(),
                pwm_core::DurabilityConfig::new(&dir),
            )
            .unwrap();
        let mut server = PolicyRestServer::start(controller).unwrap();
        let addr = server.addr();
        let env = TransferRequestEnvelope {
            transfers: vec![pwm_core::TransferSpec {
                source: pwm_core::Url::new("gsiftp", "s", "/f1"),
                dest: pwm_core::Url::new("file", "d", "/f1"),
                bytes: 1,
                requested_streams: None,
                workflow: pwm_core::WorkflowId(1),
                cluster: None,
                priority: None,
            }],
        };
        // Stage f1 to completion over the socket, then stop the server.
        let (status, body) = call(
            addr,
            Method::Post,
            "/sessions/default/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        assert_eq!(status, 200);
        let resp: TransferResponseEnvelope = serde_json::from_slice(&body).unwrap();
        let done = TransferCompletionEnvelope {
            outcomes: vec![pwm_core::TransferOutcome {
                id: resp.advice[0].id,
                success: true,
            }],
        };
        let (status, _) = call(
            addr,
            Method::Post,
            "/sessions/default/transfers/complete",
            &serde_json::to_vec(&done).unwrap(),
        );
        assert_eq!(status, 200);
        server.shutdown();

        // "New process": a fresh controller resumes from the log and a new
        // server binds a new port. The staged file must still be known.
        let controller2 = PolicyController::new(cfg.clone());
        controller2
            .resume_durable_session(
                pwm_core::DEFAULT_SESSION,
                pwm_core::DurabilityConfig::new(&dir),
            )
            .unwrap();
        let server2 = PolicyRestServer::start(controller2).unwrap();
        let (status, body) = call(
            server2.addr(),
            Method::Post,
            "/sessions/default/transfers",
            &serde_json::to_vec(&env).unwrap(),
        );
        assert_eq!(status, 200);
        let again: TransferResponseEnvelope = serde_json::from_slice(&body).unwrap();
        assert!(
            !again.advice[0].should_execute(),
            "restarted server must remember the staged file"
        );
        let (status, body) = call(server2.addr(), Method::Get, "/sessions/default/status", b"");
        assert_eq!(status, 200);
        let status_env: StatusEnvelope = serde_json::from_slice(&body).unwrap();
        assert_eq!(
            status_env.stats.transfer_requests, 2,
            "pre-restart traffic counts in post-restart stats"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (mut server, addr) = start();
        server.shutdown();
        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly; a request must at least fail.
                let mut s = TcpStream::connect(addr).unwrap();
                write_request(&mut s, Method::Get, "/health", b"").ok();
                read_response(&mut s).is_err()
            }
        );
    }
}
