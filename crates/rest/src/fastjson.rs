//! Hand-rolled JSON codec for the hot transfer-advice wire envelopes.
//!
//! The vendored `serde_json` round-trips every document through a `Value`
//! tree (parse → tree → `from_value`, and `to_value` → tree → render), which
//! costs roughly half the Policy Service's per-request CPU on the advice
//! path. This module short-circuits the two envelopes the event loop
//! serves at rate:
//!
//! * [`parse_transfer_request`] decodes the canonical
//!   `{"transfers":[...]}` request body directly from bytes. It accepts a
//!   **strict subset** of JSON — the shapes the stock clients actually
//!   produce — and returns `None` on anything unusual (escape sequences,
//!   unknown fields, missing fields, duplicate keys, exotic number forms)
//!   so the caller can fall back to the full `serde_json` path. The fast
//!   path is therefore an invisible optimization: every body is either
//!   decoded identically or handed to the reference decoder.
//! * [`render_transfer_response`] writes the `{"advice":[...]}` response
//!   body directly. It is total (handles every advice value, including
//!   strings that need escaping) and produces bytes **identical** to
//!   `serde_json::to_vec(&TransferResponseEnvelope { advice })`, so clients
//!   decoding with the serde path see no difference.
//!
//! Equivalence with the serde codec is enforced by the property tests at
//! the bottom of this file.

use pwm_core::{
    ClusterId, GroupId, SuppressReason, TransferAction, TransferAdvice, TransferId, TransferSpec,
    Url, WorkflowId,
};

// ---------------------------------------------------------------------------
// Request parser (strict subset, fallback on None)
// ---------------------------------------------------------------------------

/// Decode a canonical `{"transfers":[...]}` request body.
///
/// Returns `None` — **not** an error — whenever the body strays from the
/// canonical shape; the caller must then retry with
/// `serde_json::from_slice::<TransferRequestEnvelope>` so malformed bodies
/// keep producing the reference decoder's diagnostics.
pub fn parse_transfer_request(bytes: &[u8]) -> Option<Vec<TransferSpec>> {
    let mut p = Cursor { b: bytes, i: 0 };
    p.ws();
    p.eat(b'{')?;
    p.ws();
    if p.string()? != "transfers" {
        return None;
    }
    p.ws();
    p.eat(b':')?;
    p.ws();
    p.eat(b'[')?;
    p.ws();
    let mut transfers = Vec::new();
    if p.peek()? == b']' {
        p.i += 1;
    } else {
        loop {
            transfers.push(p.spec()?);
            p.ws();
            match p.next()? {
                b',' => p.ws(),
                b']' => break,
                _ => return None,
            }
        }
    }
    p.ws();
    p.eat(b'}')?;
    p.ws();
    if p.i == p.b.len() {
        Some(transfers)
    } else {
        None
    }
}

/// Byte cursor over the request body. Every method returns `None` on any
/// deviation from the canonical subset; nothing here reports *why* —
/// diagnostics are the fallback path's job.
struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn eat(&mut self, want: u8) -> Option<()> {
        if self.peek()? == want {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    /// A string without escapes: `"` ... `"` where the body contains no
    /// backslash, no quote, and no control byte. Escaped strings bail to
    /// the reference decoder.
    fn string(&mut self) -> Option<&'a str> {
        self.eat(b'"')?;
        let start = self.i;
        loop {
            match self.next()? {
                b'"' => break,
                b'\\' | 0x00..=0x1f => return None,
                _ => {}
            }
        }
        std::str::from_utf8(&self.b[start..self.i - 1]).ok()
    }

    /// A plain decimal integer (no sign, no fraction, no exponent).
    fn u64(&mut self) -> Option<u64> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse()
            .ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.u64()?.try_into().ok()
    }

    fn i32(&mut self) -> Option<i32> {
        let neg = self.peek()? == b'-';
        if neg {
            self.i += 1;
        }
        let n = i64::try_from(self.u64()?).ok()?;
        i32::try_from(if neg { -n } else { n }).ok()
    }

    fn null(&mut self) -> Option<()> {
        if self.b[self.i..].starts_with(b"null") {
            self.i += 4;
            Some(())
        } else {
            None
        }
    }

    fn opt_u32(&mut self) -> Option<Option<u32>> {
        if self.peek()? == b'n' {
            self.null()?;
            Some(None)
        } else {
            Some(Some(self.u32()?))
        }
    }

    fn opt_i32(&mut self) -> Option<Option<i32>> {
        if self.peek()? == b'n' {
            self.null()?;
            Some(None)
        } else {
            Some(Some(self.i32()?))
        }
    }

    /// `{"scheme":S,"host":S,"path":S}` with the three keys in any order,
    /// each exactly once.
    fn url(&mut self) -> Option<Url> {
        self.eat(b'{')?;
        let (mut scheme, mut host, mut path) = (None, None, None);
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let slot = match key {
                "scheme" => &mut scheme,
                "host" => &mut host,
                "path" => &mut path,
                _ => return None,
            };
            if slot.is_some() {
                return None;
            }
            *slot = Some(self.string()?.to_string());
            self.ws();
            match self.next()? {
                b',' => {}
                b'}' => break,
                _ => return None,
            }
        }
        Some(Url {
            scheme: scheme?,
            host: host?,
            path: path?,
        })
    }

    /// One transfer spec object: the seven known keys in any order, each
    /// exactly once. A missing, duplicate, or unknown key bails.
    fn spec(&mut self) -> Option<TransferSpec> {
        self.eat(b'{')?;
        let mut source = None;
        let mut dest = None;
        let mut bytes = None;
        let mut requested_streams = None;
        let mut workflow = None;
        let mut cluster = None;
        let mut priority = None;
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            match key {
                "source" => set(&mut source, self.url()?)?,
                "dest" => set(&mut dest, self.url()?)?,
                "bytes" => set(&mut bytes, self.u64()?)?,
                "requested_streams" => set(&mut requested_streams, self.opt_u32()?)?,
                "workflow" => set(&mut workflow, WorkflowId(self.u64()?))?,
                "cluster" => set(&mut cluster, self.opt_u32()?.map(ClusterId))?,
                "priority" => set(&mut priority, self.opt_i32()?)?,
                _ => return None,
            }
            self.ws();
            match self.next()? {
                b',' => {}
                b'}' => break,
                _ => return None,
            }
        }
        Some(TransferSpec {
            source: source?,
            dest: dest?,
            bytes: bytes?,
            requested_streams: requested_streams?,
            workflow: workflow?,
            cluster: cluster?,
            priority: priority?,
        })
    }
}

/// Fill a once-only field slot; `None` (bail) if the key repeated.
fn set<T>(slot: &mut Option<T>, value: T) -> Option<()> {
    if slot.is_some() {
        return None;
    }
    *slot = Some(value);
    Some(())
}

// ---------------------------------------------------------------------------
// Response renderer (total, byte-identical to the serde path)
// ---------------------------------------------------------------------------

/// Render `{"advice":[...]}` exactly as
/// `serde_json::to_vec(&TransferResponseEnvelope { advice })` would.
pub fn render_transfer_response(advice: &[TransferAdvice]) -> Vec<u8> {
    // ~200 bytes per advice entry in practice; one allocation either way.
    let mut out = Vec::with_capacity(16 + 224 * advice.len());
    out.extend_from_slice(b"{\"advice\":[");
    for (i, a) in advice.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        push_advice(&mut out, a);
    }
    out.extend_from_slice(b"]}");
    out
}

fn push_advice(out: &mut Vec<u8>, a: &TransferAdvice) {
    let TransferAdvice {
        id: TransferId(id),
        source,
        dest,
        action,
        streams,
        group: GroupId(group),
        order,
        backend,
    } = a;
    out.extend_from_slice(b"{\"id\":");
    push_u64(out, *id);
    out.extend_from_slice(b",\"source\":");
    push_url(out, source);
    out.extend_from_slice(b",\"dest\":");
    push_url(out, dest);
    out.extend_from_slice(b",\"action\":");
    match action {
        TransferAction::Execute => out.extend_from_slice(b"\"Execute\""),
        TransferAction::Skip(reason) => {
            out.extend_from_slice(b"{\"Skip\":\"");
            out.extend_from_slice(match reason {
                SuppressReason::DuplicateInBatch => b"DuplicateInBatch".as_slice(),
                SuppressReason::AlreadyInProgress => b"AlreadyInProgress",
                SuppressReason::AlreadyStaged => b"AlreadyStaged",
                SuppressReason::DuplicateCleanup => b"DuplicateCleanup",
                SuppressReason::ResourceInUse => b"ResourceInUse",
                SuppressReason::SourceQuarantined => b"SourceQuarantined",
                SuppressReason::SourceHostDown => b"SourceHostDown",
            });
            out.extend_from_slice(b"\"}");
        }
    }
    out.extend_from_slice(b",\"streams\":");
    push_u64(out, u64::from(*streams));
    out.extend_from_slice(b",\"group\":");
    push_u64(out, *group);
    out.extend_from_slice(b",\"order\":");
    push_u64(out, u64::from(*order));
    out.extend_from_slice(b",\"backend\":");
    match backend {
        Some(name) => push_string(out, name),
        None => out.extend_from_slice(b"null"),
    }
    out.push(b'}');
}

fn push_url(out: &mut Vec<u8>, url: &Url) {
    out.extend_from_slice(b"{\"scheme\":");
    push_string(out, &url.scheme);
    out.extend_from_slice(b",\"host\":");
    push_string(out, &url.host);
    out.extend_from_slice(b",\"path\":");
    push_string(out, &url.path);
    out.push(b'}');
}

fn push_u64(out: &mut Vec<u8>, mut n: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// Write a JSON string with `serde_json`'s exact escape table: `\"`, `\\`,
/// `\n`, `\r`, `\t`, lowercase `\u00xx` for other control characters;
/// everything else (including `/` and non-ASCII) verbatim. Clean runs are
/// copied wholesale — multi-byte UTF-8 continuation bytes are ≥ 0x80 and
/// never match an escape, so scanning bytewise is safe.
fn push_string(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b >= 0x20 && b != b'"' && b != b'\\' {
            continue;
        }
        out.extend_from_slice(&bytes[start..i]);
        match b {
            b'"' => out.extend_from_slice(b"\\\""),
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\r' => out.extend_from_slice(b"\\r"),
            b'\t' => out.extend_from_slice(b"\\t"),
            c => {
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.extend_from_slice(&[
                    b'\\',
                    b'u',
                    b'0',
                    b'0',
                    HEX[usize::from(c >> 4)],
                    HEX[usize::from(c & 0xf)],
                ]);
            }
        }
        start = i + 1;
    }
    out.extend_from_slice(&bytes[start..]);
    out.push(b'"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{TransferRequestEnvelope, TransferResponseEnvelope};
    use proptest::prelude::*;

    fn spec(n: u32) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", format!("gridftp-{n}"), format!("/d/f{n}.dat")),
            dest: Url::new("file", "obelix-nfs", format!("/s/f{n}.dat")),
            bytes: 1_000_000 + u64::from(n),
            requested_streams: (n.is_multiple_of(2)).then_some(n + 1),
            workflow: WorkflowId(u64::from(n % 3)),
            cluster: (n.is_multiple_of(3)).then_some(ClusterId(n)),
            priority: (n.is_multiple_of(4)).then_some(-(n as i32)),
        }
    }

    fn serde_bytes(transfers: Vec<TransferSpec>) -> Vec<u8> {
        serde_json::to_vec(&TransferRequestEnvelope { transfers }).unwrap()
    }

    #[test]
    fn parses_canonical_bodies_identically_to_serde() {
        for transfers in [vec![], vec![spec(0)], (0..7).map(spec).collect::<Vec<_>>()] {
            let body = serde_bytes(transfers.clone());
            assert_eq!(parse_transfer_request(&body), Some(transfers));
        }
    }

    #[test]
    fn tolerates_whitespace_and_field_reorder() {
        let body = br#" {
            "transfers" : [ {
                "bytes" : 42 , "priority" : -7 , "workflow" : 9 ,
                "dest" : { "path" : "/b" , "host" : "h2" , "scheme" : "file" } ,
                "source" : { "scheme" : "gsiftp" , "host" : "h1" , "path" : "/a" } ,
                "cluster" : null , "requested_streams" : 3
            } ]
        } "#;
        let got = parse_transfer_request(body).expect("reordered body parses");
        let want: TransferRequestEnvelope = serde_json::from_slice(body).unwrap();
        assert_eq!(got, want.transfers);
    }

    #[test]
    fn bails_to_serde_on_anything_unusual() {
        let canonical = serde_bytes(vec![spec(1)]);
        let canonical = std::str::from_utf8(&canonical).unwrap();
        for body in [
            // Escapes in strings (legal JSON, not the canonical subset).
            canonical.replace("/d/f1.dat", r"/d/\n-f1.dat"),
            canonical.replace("/d/f1.dat", r#"/d/\"f1\".dat"#),
            // Unknown / missing / duplicate fields.
            canonical.replace("\"bytes\"", "\"extra\":0,\"bytes\""),
            canonical.replace("\"bytes\":1000001,", ""),
            canonical.replace("\"bytes\":", "\"bytes\":7,\"bytes\":"),
            // Exotic number forms the subset rejects.
            canonical.replace(":1000001,", ":1.0e6,"),
            canonical.replace(":1000001,", ":+1000001,"),
            // Structural junk.
            canonical[..canonical.len() - 1].to_string(),
            format!("{canonical}x"),
            canonical.replace("\"transfers\"", "\"Transfers\""),
        ] {
            assert_eq!(
                parse_transfer_request(body.as_bytes()),
                None,
                "must fall back on: {body}"
            );
        }
    }

    #[test]
    fn renders_skip_actions_and_escapes_identically_to_serde() {
        let advice: Vec<TransferAdvice> = [
            (TransferAction::Execute, "/plain/path.dat"),
            (
                TransferAction::Skip(SuppressReason::AlreadyInProgress),
                "/with \"quotes\" and \\slashes\\",
            ),
            (
                TransferAction::Skip(SuppressReason::DuplicateInBatch),
                "/ctl\n\r\t\u{1}\u{1f}/end",
            ),
            (
                TransferAction::Skip(SuppressReason::AlreadyStaged),
                "/déjà/vu",
            ),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, (action, path))| TransferAdvice {
            id: TransferId(i as u64),
            source: Url::new("gsiftp", "h1", path),
            dest: Url::new("file", "h2", path),
            action,
            streams: 8,
            group: GroupId(i as u64),
            order: i as u32,
            backend: (i % 2 == 0).then(|| format!("backend-\"{i}\"")),
        })
        .collect();
        for advice in [&advice[..], &[]] {
            let fast = render_transfer_response(advice);
            let reference = serde_json::to_vec(&TransferResponseEnvelope {
                advice: advice.to_vec(),
            })
            .unwrap();
            assert_eq!(fast, reference);
        }
    }

    fn arb_string() -> impl Strategy<Value = String> {
        // Plenty of escapes, controls, and non-ASCII.
        const PALETTE: &[char] = &[
            'a', 'b', '/', '.', '-', ' ', '"', '\\', '\n', '\r', '\t', '\u{3}', '\u{1f}', 'é',
            '中', '🦀',
        ];
        proptest::collection::vec(
            any::<u8>().prop_map(|b| PALETTE[usize::from(b) % PALETTE.len()]),
            0..12,
        )
        .prop_map(|cs| cs.into_iter().collect())
    }

    fn arb_url() -> impl Strategy<Value = Url> {
        (arb_string(), arb_string(), arb_string()).prop_map(|(scheme, host, path)| Url {
            scheme,
            host,
            path,
        })
    }

    fn arb_action() -> impl Strategy<Value = TransferAction> {
        const ACTIONS: &[TransferAction] = &[
            TransferAction::Execute,
            TransferAction::Skip(SuppressReason::DuplicateInBatch),
            TransferAction::Skip(SuppressReason::AlreadyInProgress),
            TransferAction::Skip(SuppressReason::AlreadyStaged),
            TransferAction::Skip(SuppressReason::DuplicateCleanup),
            TransferAction::Skip(SuppressReason::ResourceInUse),
        ];
        any::<u8>().prop_map(|b| ACTIONS[usize::from(b) % ACTIONS.len()])
    }

    fn arb_advice() -> impl Strategy<Value = TransferAdvice> {
        (
            (any::<u64>(), arb_url(), arb_url(), arb_action()),
            (
                any::<u32>(),
                any::<u64>(),
                any::<u32>(),
                proptest::option::of(arb_string()),
            ),
        )
            .prop_map(
                |((id, source, dest, action), (streams, group, order, backend))| TransferAdvice {
                    id: TransferId(id),
                    source,
                    dest,
                    action,
                    streams,
                    group: GroupId(group),
                    order,
                    backend,
                },
            )
    }

    fn arb_spec() -> impl Strategy<Value = TransferSpec> {
        (
            (arb_url(), arb_url(), any::<u64>()),
            (
                proptest::option::of(any::<u32>()),
                any::<u64>(),
                proptest::option::of(any::<u32>()),
                proptest::option::of(any::<i32>()),
            ),
        )
            .prop_map(
                |((source, dest, bytes), (requested_streams, workflow, cluster, priority))| {
                    TransferSpec {
                        source,
                        dest,
                        bytes,
                        requested_streams,
                        workflow: WorkflowId(workflow),
                        cluster: cluster.map(ClusterId),
                        priority,
                    }
                },
            )
    }

    proptest! {
        /// The renderer is byte-identical to the serde path for arbitrary
        /// advice, including strings that need every kind of escape.
        #[test]
        fn render_matches_serde(advice in proptest::collection::vec(arb_advice(), 0..5)) {
            let fast = render_transfer_response(&advice);
            let reference =
                serde_json::to_vec(&TransferResponseEnvelope { advice }).unwrap();
            prop_assert_eq!(fast, reference);
        }

        /// Trailing bytes after a valid strict-subset body: whitespace is
        /// tolerated (still the canonical shape), but ANY non-whitespace
        /// suffix must bail to the serde path, which 400s it — a silently
        /// ignored suffix would let the fast path accept bodies the
        /// reference decoder rejects.
        #[test]
        fn trailing_nonwhitespace_bytes_always_bail(
            specs in proptest::collection::vec(arb_spec(), 0..3),
            ws in proptest::collection::vec(
                (0usize..4).prop_map(|i| [b' ', b'\t', b'\n', b'\r'][i]), 0..4),
            junk in "\\PC{1,8}",
        ) {
            let canonical =
                serde_json::to_vec(&TransferRequestEnvelope { transfers: specs.clone() })
                    .unwrap();
            let parses_clean = parse_transfer_request(&canonical).is_some();

            // Whitespace-only suffix: same outcome as the clean body.
            let mut padded = canonical.clone();
            padded.extend_from_slice(&ws);
            prop_assert_eq!(parse_transfer_request(&padded).is_some(), parses_clean);

            // Any suffix with a non-whitespace byte: always None. \PC can
            // generate all-whitespace strings; force a visible byte then.
            let junk = match junk.trim() {
                "" => "x",
                j => j,
            };
            let mut trailing = padded;
            trailing.extend_from_slice(junk.as_bytes());
            prop_assert_eq!(parse_transfer_request(&trailing), None);
            // And the serde fallback rejects it too, so the server 400s
            // instead of silently accepting the prefix.
            prop_assert!(
                serde_json::from_slice::<TransferRequestEnvelope>(&trailing).is_err()
            );
        }

        /// Serde-rendered request bodies either fast-parse to exactly what
        /// serde decodes, or bail (None) — never a third behavior. Bodies
        /// with escape-free strings must take the fast path.
        #[test]
        fn parse_agrees_with_serde(specs in proptest::collection::vec(arb_spec(), 0..4)) {
            let body =
                serde_json::to_vec(&TransferRequestEnvelope { transfers: specs.clone() })
                    .unwrap();
            let needs_escape = specs.iter().any(|s| {
                [&s.source, &s.dest].into_iter().any(|u| {
                    [&u.scheme, &u.host, &u.path].into_iter().any(|f| {
                        f.bytes().any(|b| b < 0x20 || b == b'"' || b == b'\\')
                    })
                })
            });
            match parse_transfer_request(&body) {
                Some(got) => prop_assert_eq!(got, specs),
                None => prop_assert!(needs_escape, "canonical body must fast-parse"),
            }
        }
    }
}
