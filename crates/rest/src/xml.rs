//! XML wire encoding of the policy API.
//!
//! The paper's RESTful interface speaks "XML or JSON data structures"; this
//! module is the XML half. Hand-rolled writer and tokenizer (the dependency
//! budget has no XML crate); the element vocabulary mirrors the JSON
//! envelopes one-to-one:
//!
//! ```xml
//! <transferRequest>
//!   <transfer source="gsiftp://h/f" dest="file://d/f" bytes="100"
//!             workflow="1" streams="8" cluster="2" priority="3"/>
//! </transferRequest>
//!
//! <transferResponse>
//!   <advice id="7" source="gsiftp://h/f" dest="file://d/f" action="execute"
//!           streams="8" group="0" order="0"/>
//! </transferResponse>
//! ```

use pwm_core::{
    CleanupAction, CleanupAdvice, CleanupId, CleanupOutcome, CleanupSpec, GroupId, SuppressReason,
    TransferAction, TransferAdvice, TransferId, TransferOutcome, TransferSpec, Url, WorkflowId,
};
use std::fmt::Write as _;

/// Errors decoding XML payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError(pub String);

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad xml: {}", self.0)
    }
}
impl std::error::Error for XmlError {}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

// ---------------------------------------------------------------- encoding

/// `<error message="..."/>`
pub fn error_xml(message: &str) -> String {
    format!("<error message=\"{}\"/>\n", escape(message))
}

/// `<ack status="ok"/>`
pub fn ack_xml() -> String {
    "<ack status=\"ok\"/>\n".to_string()
}

/// Encode a transfer-request envelope.
pub fn transfer_request_to_xml(transfers: &[TransferSpec]) -> String {
    let mut out = String::from("<transferRequest>\n");
    for t in transfers {
        let _ = write!(
            out,
            "  <transfer source=\"{}\" dest=\"{}\" bytes=\"{}\" workflow=\"{}\"",
            escape(&t.source.to_string()),
            escape(&t.dest.to_string()),
            t.bytes,
            t.workflow.0
        );
        if let Some(s) = t.requested_streams {
            let _ = write!(out, " streams=\"{s}\"");
        }
        if let Some(c) = t.cluster {
            let _ = write!(out, " cluster=\"{}\"", c.0);
        }
        if let Some(p) = t.priority {
            let _ = write!(out, " priority=\"{p}\"");
        }
        out.push_str("/>\n");
    }
    out.push_str("</transferRequest>\n");
    out
}

fn reason_str(reason: SuppressReason) -> &'static str {
    match reason {
        SuppressReason::DuplicateInBatch => "duplicate-in-batch",
        SuppressReason::AlreadyInProgress => "already-in-progress",
        SuppressReason::AlreadyStaged => "already-staged",
        SuppressReason::DuplicateCleanup => "duplicate-cleanup",
        SuppressReason::ResourceInUse => "resource-in-use",
        SuppressReason::SourceQuarantined => "source-quarantined",
        SuppressReason::SourceHostDown => "source-host-down",
    }
}

fn reason_from_str(s: &str) -> Result<SuppressReason, XmlError> {
    Ok(match s {
        "duplicate-in-batch" => SuppressReason::DuplicateInBatch,
        "already-in-progress" => SuppressReason::AlreadyInProgress,
        "already-staged" => SuppressReason::AlreadyStaged,
        "duplicate-cleanup" => SuppressReason::DuplicateCleanup,
        "resource-in-use" => SuppressReason::ResourceInUse,
        "source-quarantined" => SuppressReason::SourceQuarantined,
        "source-host-down" => SuppressReason::SourceHostDown,
        other => return Err(XmlError(format!("unknown skip reason {other:?}"))),
    })
}

/// Encode a transfer-response envelope.
pub fn transfer_response_to_xml(advice: &[TransferAdvice]) -> String {
    let mut out = String::from("<transferResponse>\n");
    for a in advice {
        let _ = write!(
            out,
            "  <advice id=\"{}\" source=\"{}\" dest=\"{}\" streams=\"{}\" group=\"{}\" order=\"{}\"",
            a.id.0,
            escape(&a.source.to_string()),
            escape(&a.dest.to_string()),
            a.streams,
            a.group.0,
            a.order
        );
        if let Some(backend) = &a.backend {
            let _ = write!(out, " backend=\"{}\"", escape(backend));
        }
        match a.action {
            TransferAction::Execute => out.push_str(" action=\"execute\""),
            TransferAction::Skip(reason) => {
                let _ = write!(out, " action=\"skip\" reason=\"{}\"", reason_str(reason));
            }
        }
        out.push_str("/>\n");
    }
    out.push_str("</transferResponse>\n");
    out
}

/// Encode a transfer-completion envelope.
pub fn transfer_completion_to_xml(outcomes: &[TransferOutcome]) -> String {
    let mut out = String::from("<completionReport>\n");
    for o in outcomes {
        let _ = writeln!(
            out,
            "  <outcome id=\"{}\" success=\"{}\"/>",
            o.id.0, o.success
        );
    }
    out.push_str("</completionReport>\n");
    out
}

/// Encode a cleanup-request envelope.
pub fn cleanup_request_to_xml(cleanups: &[CleanupSpec]) -> String {
    let mut out = String::from("<cleanupRequest>\n");
    for c in cleanups {
        let _ = writeln!(
            out,
            "  <cleanup file=\"{}\" workflow=\"{}\"/>",
            escape(&c.file.to_string()),
            c.workflow.0
        );
    }
    out.push_str("</cleanupRequest>\n");
    out
}

/// Encode a cleanup-response envelope.
pub fn cleanup_response_to_xml(advice: &[CleanupAdvice]) -> String {
    let mut out = String::from("<cleanupResponse>\n");
    for a in advice {
        let _ = write!(
            out,
            "  <advice id=\"{}\" file=\"{}\"",
            a.id.0,
            escape(&a.file.to_string())
        );
        match a.action {
            CleanupAction::Execute => out.push_str(" action=\"execute\""),
            CleanupAction::Skip(reason) => {
                let _ = write!(out, " action=\"skip\" reason=\"{}\"", reason_str(reason));
            }
        }
        out.push_str("/>\n");
    }
    out.push_str("</cleanupResponse>\n");
    out
}

/// Encode a cleanup-completion envelope.
pub fn cleanup_completion_to_xml(outcomes: &[CleanupOutcome]) -> String {
    let mut out = String::from("<cleanupCompletionReport>\n");
    for o in outcomes {
        let _ = writeln!(
            out,
            "  <outcome id=\"{}\" success=\"{}\"/>",
            o.id.0, o.success
        );
    }
    out.push_str("</cleanupCompletionReport>\n");
    out
}

// ---------------------------------------------------------------- decoding

/// A parsed element: name + attributes (self-closing leaves only).
#[derive(Debug)]
struct Element {
    name: String,
    attrs: Vec<(String, String)>,
}

impl Element {
    fn attr(&self, name: &str) -> Option<String> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| unescape(v))
    }

    fn require(&self, name: &str) -> Result<String, XmlError> {
        self.attr(name)
            .ok_or_else(|| XmlError(format!("<{}> missing attribute {name:?}", self.name)))
    }

    fn parse_attr<T: std::str::FromStr>(&self, name: &str) -> Result<T, XmlError> {
        self.require(name)?
            .parse()
            .map_err(|_| XmlError(format!("<{}> attribute {name:?} unparsable", self.name)))
    }

    fn url(&self, name: &str) -> Result<Url, XmlError> {
        Url::parse(&self.require(name)?).map_err(|e| XmlError(e.to_string()))
    }
}

/// Parse `<root> <leaf .../>* </root>`; returns the leaves.
fn parse_flat(text: &str, root: &str, leaf: &str) -> Result<Vec<Element>, XmlError> {
    let mut rest = text.trim_start();
    if rest.starts_with("<?") {
        match rest.find("?>") {
            Some(end) => rest = &rest[end + 2..],
            None => return Err(XmlError("unterminated prolog".into())),
        }
    }
    let open = format!("<{root}>");
    let close = format!("</{root}>");
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(&open)
        .ok_or_else(|| XmlError(format!("expected {open}")))?;
    let inner = match rest.find(&close) {
        Some(end) => &rest[..end],
        None => return Err(XmlError(format!("missing {close}"))),
    };
    let mut elements = Vec::new();
    let mut cursor = inner;
    loop {
        cursor = cursor.trim_start();
        if cursor.is_empty() {
            return Ok(elements);
        }
        let after = cursor
            .strip_prefix('<')
            .ok_or_else(|| XmlError("expected element".into()))?;
        let end = after
            .find("/>")
            .ok_or_else(|| XmlError("element not self-closing".into()))?;
        let body = &after[..end];
        cursor = &after[end + 2..];
        let mut parts = body.splitn(2, char::is_whitespace);
        let name = parts
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| XmlError("empty element name".into()))?;
        if name != leaf {
            return Err(XmlError(format!("expected <{leaf}>, found <{name}>")));
        }
        elements.push(Element {
            name: name.to_string(),
            attrs: parse_attrs(parts.next().unwrap_or(""))?,
        });
    }
}

fn parse_attrs(mut s: &str) -> Result<Vec<(String, String)>, XmlError> {
    let mut attrs = Vec::new();
    loop {
        s = s.trim_start();
        if s.is_empty() {
            return Ok(attrs);
        }
        let eq = s
            .find('=')
            .ok_or_else(|| XmlError("attribute missing '='".into()))?;
        let key = s[..eq].trim().to_string();
        let after = s[eq + 1..]
            .trim_start()
            .strip_prefix('"')
            .ok_or_else(|| XmlError(format!("unquoted value for {key}")))?;
        let end = after
            .find('"')
            .ok_or_else(|| XmlError(format!("unterminated value for {key}")))?;
        attrs.push((key, after[..end].to_string()));
        s = &after[end + 1..];
    }
}

/// Decode a transfer-request envelope.
pub fn transfer_request_from_xml(text: &str) -> Result<Vec<TransferSpec>, XmlError> {
    parse_flat(text, "transferRequest", "transfer")?
        .iter()
        .map(|e| {
            Ok(TransferSpec {
                source: e.url("source")?,
                dest: e.url("dest")?,
                bytes: e.parse_attr("bytes").unwrap_or(0),
                requested_streams: e
                    .attr("streams")
                    .map(|s| s.parse())
                    .transpose()
                    .map_err(|_| XmlError("bad streams".into()))?,
                workflow: WorkflowId(e.parse_attr("workflow")?),
                cluster: e
                    .attr("cluster")
                    .map(|s| s.parse().map(pwm_core::ClusterId))
                    .transpose()
                    .map_err(|_| XmlError("bad cluster".into()))?,
                priority: e
                    .attr("priority")
                    .map(|s| s.parse())
                    .transpose()
                    .map_err(|_| XmlError("bad priority".into()))?,
            })
        })
        .collect()
}

fn action_of(e: &Element) -> Result<TransferAction, XmlError> {
    match e.require("action")?.as_str() {
        "execute" => Ok(TransferAction::Execute),
        "skip" => Ok(TransferAction::Skip(reason_from_str(
            &e.require("reason")?,
        )?)),
        other => Err(XmlError(format!("unknown action {other:?}"))),
    }
}

/// Decode a transfer-response envelope.
pub fn transfer_response_from_xml(text: &str) -> Result<Vec<TransferAdvice>, XmlError> {
    parse_flat(text, "transferResponse", "advice")?
        .iter()
        .map(|e| {
            Ok(TransferAdvice {
                id: TransferId(e.parse_attr("id")?),
                source: e.url("source")?,
                dest: e.url("dest")?,
                action: action_of(e)?,
                streams: e.parse_attr("streams")?,
                group: GroupId(e.parse_attr("group")?),
                order: e.parse_attr("order")?,
                backend: e.attr("backend"),
            })
        })
        .collect()
}

/// Decode a transfer-completion envelope.
pub fn transfer_completion_from_xml(text: &str) -> Result<Vec<TransferOutcome>, XmlError> {
    parse_flat(text, "completionReport", "outcome")?
        .iter()
        .map(|e| {
            Ok(TransferOutcome {
                id: TransferId(e.parse_attr("id")?),
                success: e.parse_attr("success")?,
            })
        })
        .collect()
}

/// Decode a cleanup-request envelope.
pub fn cleanup_request_from_xml(text: &str) -> Result<Vec<CleanupSpec>, XmlError> {
    parse_flat(text, "cleanupRequest", "cleanup")?
        .iter()
        .map(|e| {
            Ok(CleanupSpec {
                file: e.url("file")?,
                workflow: WorkflowId(e.parse_attr("workflow")?),
            })
        })
        .collect()
}

/// Decode a cleanup-response envelope.
pub fn cleanup_response_from_xml(text: &str) -> Result<Vec<CleanupAdvice>, XmlError> {
    parse_flat(text, "cleanupResponse", "advice")?
        .iter()
        .map(|e| {
            Ok(CleanupAdvice {
                id: CleanupId(e.parse_attr("id")?),
                file: e.url("file")?,
                action: match e.require("action")?.as_str() {
                    "execute" => CleanupAction::Execute,
                    "skip" => CleanupAction::Skip(reason_from_str(&e.require("reason")?)?),
                    other => return Err(XmlError(format!("unknown action {other:?}"))),
                },
            })
        })
        .collect()
}

/// Decode a cleanup-completion envelope.
pub fn cleanup_completion_from_xml(text: &str) -> Result<Vec<CleanupOutcome>, XmlError> {
    parse_flat(text, "cleanupCompletionReport", "outcome")?
        .iter()
        .map(|e| {
            Ok(CleanupOutcome {
                id: CleanupId(e.parse_attr("id")?),
                success: e.parse_attr("success")?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: u32) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "src", format!("/data/f{n}.dat")),
            dest: Url::new("file", "dst", format!("/scratch/f{n}.dat")),
            bytes: 1_000 + n as u64,
            requested_streams: if n.is_multiple_of(2) { Some(n) } else { None },
            workflow: WorkflowId(7),
            cluster: if n.is_multiple_of(3) {
                Some(pwm_core::ClusterId(n))
            } else {
                None
            },
            priority: Some(n as i32 - 2),
        }
    }

    #[test]
    fn transfer_request_roundtrip() {
        let specs: Vec<TransferSpec> = (0..6).map(spec).collect();
        let xml = transfer_request_to_xml(&specs);
        let back = transfer_request_from_xml(&xml).unwrap();
        assert_eq!(specs, back);
    }

    #[test]
    fn transfer_response_roundtrip_with_both_actions() {
        let advice = vec![
            TransferAdvice {
                id: TransferId(1),
                source: Url::new("gsiftp", "s", "/a"),
                dest: Url::new("file", "d", "/a"),
                action: TransferAction::Execute,
                streams: 8,
                group: GroupId(0),
                order: 0,
                backend: Some("obj-s3".into()),
            },
            TransferAdvice {
                id: TransferId(2),
                source: Url::new("gsiftp", "s", "/a"),
                dest: Url::new("file", "d", "/a"),
                action: TransferAction::Skip(SuppressReason::AlreadyStaged),
                streams: 1,
                group: GroupId(0),
                order: 1,
                backend: None,
            },
        ];
        let xml = transfer_response_to_xml(&advice);
        assert!(xml.contains("action=\"execute\""));
        assert!(xml.contains("reason=\"already-staged\""));
        assert!(xml.contains("backend=\"obj-s3\""));
        let back = transfer_response_from_xml(&xml).unwrap();
        assert_eq!(advice, back);
    }

    #[test]
    fn all_skip_reasons_roundtrip() {
        for reason in [
            SuppressReason::DuplicateInBatch,
            SuppressReason::AlreadyInProgress,
            SuppressReason::AlreadyStaged,
            SuppressReason::DuplicateCleanup,
            SuppressReason::ResourceInUse,
        ] {
            assert_eq!(reason_from_str(reason_str(reason)).unwrap(), reason);
        }
    }

    #[test]
    fn completion_and_cleanup_roundtrips() {
        let outcomes = vec![
            TransferOutcome {
                id: TransferId(3),
                success: true,
            },
            TransferOutcome {
                id: TransferId(4),
                success: false,
            },
        ];
        let back = transfer_completion_from_xml(&transfer_completion_to_xml(&outcomes)).unwrap();
        assert_eq!(outcomes, back);

        let cleanups = vec![CleanupSpec {
            file: Url::new("file", "d", "/x"),
            workflow: WorkflowId(1),
        }];
        let back = cleanup_request_from_xml(&cleanup_request_to_xml(&cleanups)).unwrap();
        assert_eq!(cleanups, back);

        let advice = vec![CleanupAdvice {
            id: CleanupId(9),
            file: Url::new("file", "d", "/x"),
            action: CleanupAction::Skip(SuppressReason::ResourceInUse),
        }];
        let back = cleanup_response_from_xml(&cleanup_response_to_xml(&advice)).unwrap();
        assert_eq!(advice, back);

        let oc = vec![CleanupOutcome {
            id: CleanupId(9),
            success: true,
        }];
        let back = cleanup_completion_from_xml(&cleanup_completion_to_xml(&oc)).unwrap();
        assert_eq!(oc, back);
    }

    #[test]
    fn special_characters_in_paths_roundtrip() {
        let mut s = spec(0);
        s.source = Url::new("gsiftp", "h", "/data/a&b <c>\"d\".dat");
        let xml = transfer_request_to_xml(&[s.clone()]);
        let back = transfer_request_from_xml(&xml).unwrap();
        assert_eq!(back[0].source, s.source);
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(transfer_request_from_xml("").is_err());
        assert!(transfer_request_from_xml("<wrongRoot></wrongRoot>").is_err());
        assert!(transfer_request_from_xml("<transferRequest><bogus/></transferRequest>").is_err());
        assert!(transfer_request_from_xml(
            "<transferRequest><transfer source=\"x\"/></transferRequest>"
        )
        .is_err());
        assert!(transfer_response_from_xml(
            "<transferResponse><advice id=\"1\" source=\"gsiftp://s/a\" dest=\"file://d/a\" \
             streams=\"1\" group=\"0\" order=\"0\" action=\"sideways\"/></transferResponse>"
        )
        .is_err());
    }

    #[test]
    fn prolog_tolerated() {
        let xml = format!(
            "<?xml version=\"1.0\"?>\n{}",
            transfer_request_to_xml(&[spec(1)])
        );
        assert_eq!(transfer_request_from_xml(&xml).unwrap().len(), 1);
    }

    #[test]
    fn ack_and_error_render() {
        assert_eq!(ack_xml(), "<ack status=\"ok\"/>\n");
        assert!(error_xml("no such \"session\"").contains("&quot;session&quot;"));
    }

    use proptest::prelude::*;

    /// URLs whose paths exercise every escaped character plus slashes.
    fn url_strategy() -> impl Strategy<Value = Url> {
        (
            "[a-z]{2,6}",
            "[a-zA-Z0-9.-]{1,12}",
            "/[a-zA-Z0-9 ._&<>\"'/-]{0,20}",
        )
            .prop_map(|(scheme, host, path)| Url::new(scheme, host, path))
    }

    fn spec_strategy() -> impl Strategy<Value = TransferSpec> {
        (
            (url_strategy(), url_strategy()),
            any::<u64>(),
            proptest::option::of(0u32..64),
            any::<u64>(),
            proptest::option::of(0u32..16),
            proptest::option::of(-100i32..100),
        )
            .prop_map(|((source, dest), bytes, streams, wf, cluster, priority)| {
                TransferSpec {
                    source,
                    dest,
                    bytes,
                    requested_streams: streams,
                    workflow: WorkflowId(wf),
                    cluster: cluster.map(pwm_core::ClusterId),
                    priority,
                }
            })
    }

    fn reason_strategy() -> impl Strategy<Value = SuppressReason> {
        (0u32..5).prop_map(|i| {
            [
                SuppressReason::DuplicateInBatch,
                SuppressReason::AlreadyInProgress,
                SuppressReason::AlreadyStaged,
                SuppressReason::DuplicateCleanup,
                SuppressReason::ResourceInUse,
            ][i as usize]
        })
    }

    fn transfer_advice_strategy() -> impl Strategy<Value = TransferAdvice> {
        (
            (url_strategy(), url_strategy()),
            any::<u64>(),
            proptest::option::of(reason_strategy()),
            1u32..64,
            (any::<u64>(), 0u32..100),
            proptest::option::of("[a-zA-Z0-9 ._&<>\"'-]{1,16}"),
        )
            .prop_map(
                |((source, dest), id, skip, streams, (group, order), backend)| TransferAdvice {
                    id: TransferId(id),
                    source,
                    dest,
                    action: match skip {
                        None => TransferAction::Execute,
                        Some(reason) => TransferAction::Skip(reason),
                    },
                    streams,
                    group: GroupId(group),
                    order,
                    backend,
                },
            )
    }

    fn cleanup_advice_strategy() -> impl Strategy<Value = CleanupAdvice> {
        (
            url_strategy(),
            any::<u64>(),
            proptest::option::of(reason_strategy()),
        )
            .prop_map(|(file, id, skip)| CleanupAdvice {
                id: CleanupId(id),
                file,
                action: match skip {
                    None => CleanupAction::Execute,
                    Some(reason) => CleanupAction::Skip(reason),
                },
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        // Every envelope survives an encode/decode round trip for arbitrary
        // payloads: attribute escaping, optional fields, negative
        // priorities, and full-range 64-bit ids included.
        #[test]
        fn transfer_request_roundtrips(
            specs in proptest::collection::vec(spec_strategy(), 0..8),
        ) {
            let back = transfer_request_from_xml(&transfer_request_to_xml(&specs)).unwrap();
            prop_assert_eq!(specs, back);
        }

        #[test]
        fn transfer_response_roundtrips(
            advice in proptest::collection::vec(transfer_advice_strategy(), 0..8),
        ) {
            let back = transfer_response_from_xml(&transfer_response_to_xml(&advice)).unwrap();
            prop_assert_eq!(advice, back);
        }

        #[test]
        fn transfer_completion_roundtrips(
            raw in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..8),
        ) {
            let outcomes: Vec<TransferOutcome> = raw
                .into_iter()
                .map(|(id, success)| TransferOutcome { id: TransferId(id), success })
                .collect();
            let back =
                transfer_completion_from_xml(&transfer_completion_to_xml(&outcomes)).unwrap();
            prop_assert_eq!(outcomes, back);
        }

        #[test]
        fn cleanup_request_roundtrips(
            raw in proptest::collection::vec((url_strategy(), any::<u64>()), 0..8),
        ) {
            let cleanups: Vec<CleanupSpec> = raw
                .into_iter()
                .map(|(file, wf)| CleanupSpec { file, workflow: WorkflowId(wf) })
                .collect();
            let back = cleanup_request_from_xml(&cleanup_request_to_xml(&cleanups)).unwrap();
            prop_assert_eq!(cleanups, back);
        }

        #[test]
        fn cleanup_response_roundtrips(
            advice in proptest::collection::vec(cleanup_advice_strategy(), 0..8),
        ) {
            let back = cleanup_response_from_xml(&cleanup_response_to_xml(&advice)).unwrap();
            prop_assert_eq!(advice, back);
        }

        #[test]
        fn cleanup_completion_roundtrips(
            raw in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..8),
        ) {
            let outcomes: Vec<CleanupOutcome> = raw
                .into_iter()
                .map(|(id, success)| CleanupOutcome { id: CleanupId(id), success })
                .collect();
            let back = cleanup_completion_from_xml(&cleanup_completion_to_xml(&outcomes)).unwrap();
            prop_assert_eq!(outcomes, back);
        }
    }
}
