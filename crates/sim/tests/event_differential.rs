//! Differential harness: both shipped event queues — the indexed 4-ary heap
//! [`EventQueue`] and the epoch-bucketed [`LadderQueue`] — model-checked in
//! lockstep against a naive sorted-`Vec` reference.
//!
//! The reference keeps every pending event in a plain `Vec` and does a
//! linear min-scan per pop — slow, but so simple its correctness is evident
//! by inspection. Random schedule/cancel/reschedule/pop interleavings
//! (including cancel-of-popped, double-cancel, reschedule-of-dead,
//! same-timestamp bursts, and far-future outliers that land in the ladder's
//! top rungs or overflow) must observe identical behaviour from all three:
//! same pop stream, same cancel/reschedule return values, same `len`, same
//! `peek_time`. The ladder additionally has its internal invariants checked
//! as the interleaving runs. Storm regression tests then pin the performance
//! claims: no O(n)-per-cancel scans in the heap, and no reordering or
//! corpse leaks in the ladder under a cancel/reschedule storm, while pop
//! order stays exactly `(time, seq)`.

use proptest::prelude::*;
use pwm_sim::{EventQueue, LadderQueue, SimDuration, SimQueue, SimTime};

/// Naive reference queue: unsorted `Vec` of `(time, seq, key)`, linear scans
/// everywhere. `seq` is assigned from one monotone counter at schedule *and*
/// on successful reschedule — exactly the contract both real queues
/// implement — so min-by `(time, seq)` reproduces the FIFO-within-ties
/// contract, including reschedules re-joining the back of a same-instant
/// tie group. `key` is the caller's stable name for the event (the real
/// queues use their [`pwm_sim::EventHandle`]s; the reference uses the
/// index into the test's parallel handle arrays).
struct RefQueue {
    pending: Vec<(SimTime, u64, u32)>,
    next_seq: u64,
    now: SimTime,
}

impl RefQueue {
    fn new() -> Self {
        RefQueue {
            pending: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    fn schedule_at(&mut self, at: SimTime, key: u32) {
        assert!(at >= self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((at, seq, key));
    }

    fn cancel(&mut self, key: u32) -> bool {
        match self.pending.iter().position(|&(_, _, k)| k == key) {
            Some(ix) => {
                self.pending.remove(ix);
                true
            }
            None => false,
        }
    }

    /// Move a pending event to `at` with a fresh seq (fires after existing
    /// same-instant ties); `false` if the event is no longer pending.
    fn reschedule(&mut self, key: u32, at: SimTime) -> bool {
        assert!(at >= self.now);
        match self.pending.iter().position(|&(_, _, k)| k == key) {
            Some(ix) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.pending[ix] = (at, seq, key);
                true
            }
            None => false,
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.pending
            .iter()
            .map(|&(at, seq, _)| (at, seq))
            .min()
            .map(|(at, _)| at)
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        let ix = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, seq, _))| (at, seq))
            .map(|(ix, _)| ix)?;
        let (at, _, key) = self.pending.remove(ix);
        self.now = at;
        Some((at, key))
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

/// One step of the random interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + dt` microseconds.
    Schedule(u64),
    /// Schedule `n` events all at the same instant `now + dt` — a
    /// same-timestamp burst that stresses tie-breaking and the ladder's
    /// current-bucket batching.
    Burst(u8, u64),
    /// Cancel the `k`-th handle ever issued (mod issued count) — may target
    /// a pending, already-popped, or already-cancelled event.
    Cancel(usize),
    /// Double-cancel: cancel the same handle twice back to back.
    DoubleCancel(usize),
    /// Reschedule the `k`-th handle to `now + dt` — may move it across
    /// rungs, into the current bucket, or target a dead event (no-op
    /// `false` on all queues).
    Reschedule(usize, u64),
    Pop,
    PopUntil(u64),
    /// Batch-pop everything up to `now + dt` via `drain_until`.
    Drain(u64),
    Peek,
}

/// Schedule/reschedule offsets mix dense near-term times (heavy
/// same-instant tie pressure at small values), exact-zero delays, and
/// far-future outliers minutes-to-days out — the latter land in the
/// ladder's top rungs or overflow heap and must still pop in exact order.
fn arb_dt() -> impl Strategy<Value = u64> {
    prop_oneof![
        5 => 0u64..10_000,
        2 => Just(0u64),
        1 => 1_000_000_000u64..1_000_000_000_000,
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => arb_dt().prop_map(Op::Schedule),
        1 => (2u8..9, arb_dt()).prop_map(|(n, dt)| Op::Burst(n, dt)),
        2 => any::<usize>().prop_map(Op::Cancel),
        1 => any::<usize>().prop_map(Op::DoubleCancel),
        2 => (any::<usize>(), arb_dt()).prop_map(|(k, dt)| Op::Reschedule(k, dt)),
        2 => Just(Op::Pop),
        1 => (0u64..10_000).prop_map(Op::PopUntil),
        1 => arb_dt().prop_map(Op::Drain),
        1 => Just(Op::Peek),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: option_env!("PWM_PROPTEST_CASES")
            .and_then(|s| s.parse().ok())
            .unwrap_or(256),
    })]

    /// Lockstep execution: every observable of the indexed heap AND the
    /// ladder matches the sorted-Vec reference after every operation, and
    /// the ladder's internal invariants hold throughout.
    #[test]
    fn both_queues_match_reference(ops in proptest::collection::vec(arb_op(), 1..400)) {
        let mut h: EventQueue<u32> = EventQueue::new();
        let mut l: LadderQueue<u32> = LadderQueue::new();
        let mut r = RefQueue::new();
        // Parallel handle arrays: hh[i], lh[i], and reference key i name the
        // same logical event. Event payloads are the key, so pop streams
        // compare by identity, not just by timestamp.
        let mut hh = Vec::new();
        let mut lh = Vec::new();
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                Op::Schedule(dt) | Op::Burst(_, dt) => {
                    let n = match op {
                        Op::Burst(n, _) => n as usize,
                        _ => 1,
                    };
                    let at = r.now + SimDuration::from_micros(dt);
                    for _ in 0..n {
                        let key = hh.len() as u32;
                        hh.push(h.schedule_at(at, key));
                        lh.push(l.schedule_at(at, key));
                        r.schedule_at(at, key);
                    }
                }
                Op::Cancel(k) | Op::DoubleCancel(k) | Op::Reschedule(k, _) if hh.is_empty() => {
                    let _ = k; // nothing issued yet; skip
                }
                Op::Cancel(k) => {
                    let ix = k % hh.len();
                    let want = r.cancel(ix as u32);
                    prop_assert_eq!(h.cancel(hh[ix]), want);
                    prop_assert_eq!(l.cancel(lh[ix]), want);
                }
                Op::DoubleCancel(k) => {
                    let ix = k % hh.len();
                    for _ in 0..2 {
                        let want = r.cancel(ix as u32);
                        prop_assert_eq!(h.cancel(hh[ix]), want);
                        prop_assert_eq!(l.cancel(lh[ix]), want);
                    }
                    // The second attempt must have been a no-op `false`.
                    prop_assert!(!l.cancel(lh[ix]));
                }
                Op::Reschedule(k, dt) => {
                    let ix = k % hh.len();
                    let at = r.now + SimDuration::from_micros(dt);
                    let want = r.reschedule(ix as u32, at);
                    prop_assert_eq!(h.reschedule(hh[ix], at), want);
                    prop_assert_eq!(l.reschedule(lh[ix], at), want);
                }
                Op::Pop => {
                    let want = r.pop();
                    prop_assert_eq!(h.pop(), want);
                    prop_assert_eq!(l.pop(), want);
                }
                Op::PopUntil(dt) => {
                    let horizon = r.now + SimDuration::from_micros(dt);
                    let want = match r.peek_time() {
                        Some(t) if t <= horizon => r.pop(),
                        _ => None,
                    };
                    prop_assert_eq!(h.pop_until(horizon), want);
                    prop_assert_eq!(l.pop_until(horizon), want);
                }
                Op::Drain(dt) => {
                    let horizon = r.now + SimDuration::from_micros(dt);
                    let mut want = Vec::new();
                    loop {
                        match r.peek_time() {
                            Some(t) if t <= horizon => want.push(r.pop().unwrap()),
                            _ => break,
                        }
                    }
                    let (mut hg, mut lg) = (Vec::new(), Vec::new());
                    SimQueue::drain_until(&mut h, horizon, &mut hg);
                    l.drain_until(horizon, &mut lg);
                    prop_assert_eq!(&hg, &want);
                    prop_assert_eq!(&lg, &want);
                }
                Op::Peek => {
                    prop_assert_eq!(h.peek_time(), r.peek_time());
                    prop_assert_eq!(l.peek_time(), r.peek_time());
                }
            }
            prop_assert_eq!(h.len(), r.len());
            prop_assert_eq!(l.len(), r.len());
            prop_assert_eq!(l.is_empty(), r.len() == 0);
            if step % 16 == 0 {
                l.check_invariants();
            }
        }
        l.check_invariants();
        // Drain all three: the tails must agree event for event.
        loop {
            let want = r.pop();
            prop_assert_eq!(h.pop(), want);
            prop_assert_eq!(l.pop(), want);
            if want.is_none() {
                break;
            }
        }
        l.check_invariants();
    }

    /// Cancelling a popped event returns `false` and never resurrects it,
    /// on both queues.
    #[test]
    fn cancel_of_popped_is_inert(times in proptest::collection::vec(0u64..1_000, 1..60)) {
        let mut h: EventQueue<usize> = EventQueue::new();
        let mut l: LadderQueue<usize> = LadderQueue::new();
        let mut hh = Vec::new();
        let mut lh = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            hh.push(h.schedule_at(SimTime::from_micros(t), i));
            lh.push(l.schedule_at(SimTime::from_micros(t), i));
        }
        let total = times.len();
        let mut popped = 0;
        while let Some(a) = h.pop() {
            prop_assert_eq!(l.pop(), Some(a));
            popped += 1;
        }
        prop_assert_eq!(l.pop(), None);
        prop_assert_eq!(popped, total);
        // Every handle's event has fired; all must refuse cancel and
        // reschedule alike.
        let far = SimTime::from_secs(1_000_000);
        for (a, b) in hh.iter().zip(&lh) {
            prop_assert!(!h.cancel(*a), "heap cancel of popped event returned true");
            prop_assert!(!l.cancel(*b), "ladder cancel of popped event returned true");
            prop_assert!(!h.reschedule(*a, far));
            prop_assert!(!l.reschedule(*b, far));
        }
        prop_assert!(h.is_empty());
        prop_assert!(l.is_empty());
        l.check_invariants();
    }
}

/// Regression: 100k schedules and ~99k cancels must complete in bounded
/// time. The previous lazy-deletion queue did an O(n) heap scan per cancel
/// (≈5·10⁹ comparisons for this workload — minutes in a debug build); the
/// indexed heap does ~log n work per operation (&lt;10⁷ total). The generous
/// wall-clock bound fails the old implementation by orders of magnitude
/// while staying robust to CI noise, and the surviving events must still
/// pop in exact (time, seq) order.
#[test]
fn cancel_heavy_workload_has_no_compaction_stalls() {
    const N: u64 = 100_000;
    let started = std::time::Instant::now();
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut handles = Vec::with_capacity(N as usize);
    for i in 0..N {
        // Reversed times: the next event to fire is the last scheduled, so
        // cancels hit entries buried at every heap depth.
        handles.push(q.schedule_at(SimTime::from_micros(N - i), i));
    }
    let mut survivors = Vec::new();
    for (i, h) in handles.iter().enumerate() {
        if i % 100 == 7 {
            survivors.push((N - i as u64, i as u64));
        } else {
            assert!(q.cancel(*h));
        }
    }
    assert_eq!(q.len(), survivors.len());
    assert_eq!(q.backlog(), 0, "indexed heap must not keep corpses");
    survivors.sort();
    let mut got = Vec::new();
    let mut last = SimTime::ZERO;
    while let Some((t, payload)) = q.pop() {
        assert!(t >= last, "pop order regressed in time");
        last = t;
        got.push((t.as_micros(), payload));
    }
    assert_eq!(
        got, survivors,
        "surviving events must pop in (time, seq) order"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "cancel-heavy workload stalled: took {:?}",
        started.elapsed()
    );
}

/// Cancel/reschedule storm, ladder vs heap: 60k events across dense
/// same-timestamp clusters plus far-future outliers, then a storm that
/// cancels a third, reschedules a third (some into the far future, some
/// back near `now`, landing across every rung), and leaves a third — after
/// which both queues must produce byte-identical pop streams, the ladder's
/// invariants must hold, and the whole thing must finish in bounded time
/// (no O(n) scans, no compaction stalls, no corpse leaks).
#[test]
fn ladder_survives_cancel_reschedule_storm_identically_to_heap() {
    const N: usize = 60_000;
    let started = std::time::Instant::now();
    let mut h: EventQueue<u32> = EventQueue::new();
    let mut l: LadderQueue<u32> = LadderQueue::new();
    let (mut hh, mut lh) = (Vec::with_capacity(N), Vec::with_capacity(N));
    for i in 0..N {
        // Dense clusters of 16 same-instant events, with every 97th event a
        // far-future outlier (top rungs / overflow territory).
        let t = if i % 97 == 0 {
            SimTime::from_secs(1_000_000 + i as u64)
        } else {
            SimTime::from_micros((i / 16) as u64)
        };
        hh.push(h.schedule_at(t, i as u32));
        lh.push(l.schedule_at(t, i as u32));
    }
    l.check_invariants();
    for i in 0..N {
        match i % 3 {
            0 => {
                assert_eq!(h.cancel(hh[i]), l.cancel(lh[i]));
            }
            1 => {
                // Alternate between yanking events out to the far future
                // and pulling far-future events back near the clock.
                let at = if i % 2 == 1 {
                    SimTime::from_secs(2_000_000 + i as u64)
                } else {
                    SimTime::from_micros((i / 8) as u64)
                };
                assert_eq!(h.reschedule(hh[i], at), l.reschedule(lh[i], at));
            }
            _ => {}
        }
    }
    l.check_invariants();
    assert_eq!(h.len(), l.len());
    assert_eq!(l.backlog(), 0, "ladder must not keep corpses");
    // Double-storm: cancel half of what was just rescheduled.
    for i in (1..N).step_by(6) {
        assert_eq!(h.cancel(hh[i]), l.cancel(lh[i]));
    }
    assert_eq!(h.len(), l.len());
    let mut drained = 0usize;
    let mut last = (SimTime::ZERO, 0u32);
    loop {
        let a = h.pop();
        let b = l.pop();
        assert_eq!(a, b, "pop streams diverged after {drained} events");
        match a {
            Some(ev) => {
                assert!(ev.0 >= last.0, "pop order regressed in time");
                last = ev;
                drained += 1;
            }
            None => break,
        }
        if drained.is_multiple_of(8192) {
            l.check_invariants();
        }
    }
    l.check_invariants();
    assert!(l.is_empty() && h.is_empty());
    assert!(
        started.elapsed() < std::time::Duration::from_secs(20),
        "cancel/reschedule storm stalled: took {:?}",
        started.elapsed()
    );
}
