//! Differential harness: the indexed-heap [`EventQueue`] model-checked
//! against a naive sorted-`Vec` reference.
//!
//! The reference keeps every pending event in a plain `Vec` and does an
//! O(n log n) sort per pop — slow, but so simple its correctness is evident
//! by inspection. Random schedule/cancel/pop interleavings (including
//! cancel-of-popped and double-cancel) must observe identical behaviour from
//! both: same pop stream, same cancel return values, same `len`, same
//! `peek_time`. A cancel-heavy regression test then pins the performance
//! claim the indexed heap was built for: no O(n)-per-cancel scans and no
//! compaction stalls, while pop order stays exactly `(time, seq)`.

use proptest::prelude::*;
use pwm_sim::{EventQueue, SimTime};

/// Naive reference queue: unsorted `Vec` of `(time, seq, payload)`, linear
/// scans everywhere. `seq` is assigned in schedule order, so min-by
/// `(time, seq)` reproduces the FIFO-within-ties contract.
struct RefQueue {
    pending: Vec<(SimTime, u64, u32)>,
    next_seq: u64,
    now: SimTime,
}

impl RefQueue {
    fn new() -> Self {
        RefQueue {
            pending: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Returns the seq, which doubles as the cancel key.
    fn schedule_at(&mut self, at: SimTime, payload: u32) -> u64 {
        assert!(at >= self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((at, seq, payload));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|&(_, s, _)| s == seq) {
            Some(ix) => {
                self.pending.remove(ix);
                true
            }
            None => false,
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.pending
            .iter()
            .map(|&(at, seq, _)| (at, seq))
            .min()
            .map(|(at, _)| at)
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        let ix = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, seq, _))| (at, seq))
            .map(|(ix, _)| ix)?;
        let (at, _, payload) = self.pending.remove(ix);
        self.now = at;
        Some((at, payload))
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

/// One step of the random interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + dt` microseconds.
    Schedule(u64),
    /// Cancel the `k`-th handle ever issued (mod issued count) — may target
    /// a pending, already-popped, or already-cancelled event.
    Cancel(usize),
    /// Double-cancel: cancel the same handle twice back to back.
    DoubleCancel(usize),
    Pop,
    PopUntil(u64),
    Peek,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..10_000).prop_map(Op::Schedule),
        2 => any::<usize>().prop_map(Op::Cancel),
        1 => any::<usize>().prop_map(Op::DoubleCancel),
        2 => Just(Op::Pop),
        1 => (0u64..10_000).prop_map(Op::PopUntil),
        1 => Just(Op::Peek),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: option_env!("PWM_PROPTEST_CASES")
            .and_then(|s| s.parse().ok())
            .unwrap_or(256),
    })]

    /// Lockstep execution: every observable of the indexed queue matches the
    /// sorted-Vec reference after every operation.
    #[test]
    fn indexed_queue_matches_reference(ops in proptest::collection::vec(arb_op(), 1..400)) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut r = RefQueue::new();
        // Parallel handle arrays: handles[i] and seqs[i] name the same event.
        let mut handles = Vec::new();
        let mut seqs = Vec::new();
        let mut next_payload = 0u32;
        for op in ops {
            match op {
                Op::Schedule(dt) => {
                    let at = q.now() + pwm_sim::SimDuration::from_micros(dt);
                    handles.push(q.schedule_at(at, next_payload));
                    seqs.push(r.schedule_at(at, next_payload));
                    next_payload += 1;
                }
                Op::Cancel(k) | Op::DoubleCancel(k) if handles.is_empty() => {
                    let _ = k; // nothing issued yet; skip
                }
                Op::Cancel(k) => {
                    let ix = k % handles.len();
                    prop_assert_eq!(q.cancel(handles[ix]), r.cancel(seqs[ix]));
                }
                Op::DoubleCancel(k) => {
                    let ix = k % handles.len();
                    prop_assert_eq!(q.cancel(handles[ix]), r.cancel(seqs[ix]));
                    // The second attempt must be a no-op `false` on both.
                    prop_assert_eq!(q.cancel(handles[ix]), r.cancel(seqs[ix]));
                    prop_assert!(!q.cancel(handles[ix]));
                }
                Op::Pop => {
                    prop_assert_eq!(q.pop(), r.pop());
                }
                Op::PopUntil(dt) => {
                    let horizon = q.now() + pwm_sim::SimDuration::from_micros(dt);
                    let expect = match r.peek_time() {
                        Some(t) if t <= horizon => r.pop(),
                        _ => None,
                    };
                    prop_assert_eq!(q.pop_until(horizon), expect);
                }
                Op::Peek => {
                    prop_assert_eq!(q.peek_time(), r.peek_time());
                }
            }
            prop_assert_eq!(q.len(), r.len());
            prop_assert_eq!(q.is_empty(), r.len() == 0);
        }
        // Drain both: the tails must agree event for event.
        loop {
            let (a, b) = (q.pop(), r.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Cancelling a popped event returns `false` and never resurrects it.
    #[test]
    fn cancel_of_popped_is_inert(times in proptest::collection::vec(0u64..1_000, 1..60)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule_at(SimTime::from_micros(t), i))
            .collect();
        let total = times.len();
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, total);
        // Every handle's event has fired; all must refuse the cancel.
        for h in &handles {
            prop_assert!(!q.cancel(*h), "cancel of popped event returned true");
        }
        prop_assert!(q.is_empty());
    }
}

/// Regression: 100k schedules and ~99k cancels must complete in bounded
/// time. The previous lazy-deletion queue did an O(n) heap scan per cancel
/// (≈5·10⁹ comparisons for this workload — minutes in a debug build); the
/// indexed heap does ~log n work per operation (&lt;10⁷ total). The generous
/// wall-clock bound fails the old implementation by orders of magnitude
/// while staying robust to CI noise, and the surviving events must still
/// pop in exact (time, seq) order.
#[test]
fn cancel_heavy_workload_has_no_compaction_stalls() {
    const N: u64 = 100_000;
    let started = std::time::Instant::now();
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut handles = Vec::with_capacity(N as usize);
    for i in 0..N {
        // Reversed times: the next event to fire is the last scheduled, so
        // cancels hit entries buried at every heap depth.
        handles.push(q.schedule_at(SimTime::from_micros(N - i), i));
    }
    let mut survivors = Vec::new();
    for (i, h) in handles.iter().enumerate() {
        if i % 100 == 7 {
            survivors.push((N - i as u64, i as u64));
        } else {
            assert!(q.cancel(*h));
        }
    }
    assert_eq!(q.len(), survivors.len());
    assert_eq!(q.backlog(), 0, "indexed heap must not keep corpses");
    survivors.sort();
    let mut got = Vec::new();
    let mut last = SimTime::ZERO;
    while let Some((t, payload)) = q.pop() {
        assert!(t >= last, "pop order regressed in time");
        last = t;
        got.push((t.as_micros(), payload));
    }
    assert_eq!(
        got, survivors,
        "surviving events must pop in (time, seq) order"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "cancel-heavy workload stalled: took {:?}",
        started.elapsed()
    );
}
