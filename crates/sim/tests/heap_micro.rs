//! Ignored-by-default micro-probe for `EventQueue` throughput at the 100k
//! pending-event population the netbench 100k scenario sustains. Run with:
//!
//! ```text
//! cargo test --release -p pwm-sim --test heap_micro -- --ignored --nocapture
//! ```

use pwm_sim::{EventQueue, SimDuration, SimTime};
use std::time::Instant;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

#[test]
#[ignore = "timing probe, not a correctness test"]
fn cancel_reschedule_at_100k_population() {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut rng = Lcg(7);
    let now = SimTime::ZERO;
    let mut handles = Vec::with_capacity(100_000);
    for i in 0..100_000u32 {
        let t = now + SimDuration::from_micros(1 + rng.next() % 600_000_000);
        handles.push(q.schedule_at(t, i));
    }
    let rounds = 1_000_000u64;
    let started = Instant::now();
    for _ in 0..rounds {
        let k = (rng.next() % 100_000) as usize;
        q.cancel(handles[k]);
        let t = now + SimDuration::from_micros(1 + rng.next() % 600_000_000);
        handles[k] = q.schedule_at(t, k as u32);
    }
    let el = started.elapsed().as_secs_f64();
    println!(
        "cancel+reschedule: {:.0} ops/s ({:.0} ns/op)",
        rounds as f64 / el,
        el / rounds as f64 * 1e9
    );
}

#[test]
#[ignore = "timing probe, not a correctness test"]
fn reschedule_in_place_at_100k_population() {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut rng = Lcg(7);
    let now = SimTime::ZERO;
    let mut handles = Vec::with_capacity(100_000);
    for i in 0..100_000u32 {
        let t = now + SimDuration::from_micros(1 + rng.next() % 600_000_000);
        handles.push(q.schedule_at(t, i));
    }
    let rounds = 1_000_000u64;
    let started = Instant::now();
    for _ in 0..rounds {
        let k = (rng.next() % 100_000) as usize;
        let t = now + SimDuration::from_micros(1 + rng.next() % 600_000_000);
        assert!(q.reschedule(handles[k], t));
    }
    let el = started.elapsed().as_secs_f64();
    println!(
        "reschedule in place: {:.0} ops/s ({:.0} ns/op)",
        rounds as f64 / el,
        el / rounds as f64 * 1e9
    );
}

#[test]
#[ignore = "timing probe, not a correctness test"]
fn pop_push_cycle_at_100k_population() {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut rng = Lcg(42);
    let mut now = SimTime::ZERO;
    for i in 0..100_000u32 {
        let t = now + SimDuration::from_micros(1 + rng.next() % 600_000_000);
        q.schedule_at(t, i);
    }
    let rounds = 1_000_000u64;
    let started = Instant::now();
    let mut acc = 0u64;
    for _ in 0..rounds {
        let t = q.peek_time().unwrap();
        now = t;
        let (_, v) = q.pop_until(now).unwrap();
        acc = acc.wrapping_add(u64::from(v));
        // One near event (a respun ETA) and one far (a replacement flow).
        q.schedule_at(
            now + SimDuration::from_micros(1 + rng.next() % 2_000_000),
            v,
        );
    }
    let el = started.elapsed().as_secs_f64();
    println!(
        "pop+push cycle: {:.0} ops/s ({:.0} ns/op, acc {acc})",
        rounds as f64 / el,
        el / rounds as f64 * 1e9
    );
}
