//! # pwm-sim — discrete-event simulation kernel
//!
//! The foundation that every simulated substrate in this workspace runs on:
//!
//! * [`time`] — integer microsecond virtual clock ([`SimTime`],
//!   [`SimDuration`]), exact and platform-independent.
//! * [`event`] — deterministic pending-event set ([`EventQueue`]) with
//!   insertion-order tie-breaking and O(log n) scheduling.
//! * [`rng`] — seed-derivable random streams ([`SimRng`]) so experiments are
//!   reproducible run-to-run and component-to-component.
//! * [`fault`] — deterministic fault plans ([`FaultPlan`]): seeded,
//!   schedulable fault windows that turn the simulator into a reliability
//!   testbed without sacrificing bit-for-bit reproducibility.
//! * [`stats`] — Welford accumulators and summaries for the mean ± stddev
//!   points the benchmark harness reports.
//! * [`trace`] — bounded in-memory trace log for post-mortems and tests.
//!
//! The kernel is intentionally *polling-style*: owners of an [`EventQueue`]
//! pop typed events in a loop and mutate their own state, which sidesteps the
//! borrow gymnastics of callback-style simulators while keeping the event
//! order fully deterministic.
//!
//! ```
//! use pwm_sim::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::from_secs(1), Ev::Tick(1));
//! q.schedule_in(SimDuration::from_secs(2), Ev::Tick(2));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_secs(1), Ev::Tick(1)));
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod histogram;
pub mod ladder;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{DynQueue, EventHandle, EventQueue, QueueHealth, QueueKind, SimQueue};
pub use fault::{seeded_windows, CrashPoint, FaultEvent, FaultPlan, FaultWindow};
pub use histogram::Histogram;
pub use ladder::LadderQueue;
pub use rng::{derive_seed, SimRng};
pub use stats::{percentile, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceLevel, TraceRecord};
