//! Lightweight simulation tracing.
//!
//! A bounded in-memory log of timestamped records, cheap enough to leave on
//! during experiments and rich enough to debug a misbehaving schedule. The
//! executor and network layers record coarse lifecycle events (job released,
//! transfer started at N streams, ...) and tests assert against them.

use crate::time::SimTime;
use std::fmt;

/// Severity/purpose of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Fine-grained bookkeeping (rate recomputations, queue movements).
    Debug,
    /// Lifecycle milestones (job start/finish, transfer start/finish).
    Info,
    /// Unexpected but tolerated situations (retries, fallbacks).
    Warn,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceLevel::Debug => write!(f, "DEBUG"),
            TraceLevel::Info => write!(f, "INFO"),
            TraceLevel::Warn => write!(f, "WARN"),
        }
    }
}

/// One timestamped trace record.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Virtual time the record was emitted.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Component name (static to avoid per-record allocation).
    pub component: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.at, self.level, self.component, self.message
        )
    }
}

/// Bounded trace buffer. When full, the oldest records are dropped and the
/// drop count is reported, so post-mortems know the window is partial.
#[derive(Debug)]
pub struct Trace {
    records: std::collections::VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
    min_level: TraceLevel,
}

impl Default for Trace {
    fn default() -> Self {
        Self::with_capacity(16_384)
    }
}

impl Trace {
    /// A trace buffer holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            records: std::collections::VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            dropped: 0,
            min_level: TraceLevel::Info,
        }
    }

    /// Set the minimum level that is retained (records below it are ignored).
    pub fn set_min_level(&mut self, level: TraceLevel) {
        self.min_level = level;
    }

    /// Record a message at `level`.
    pub fn record(
        &mut self,
        at: SimTime,
        level: TraceLevel,
        component: &'static str,
        message: impl Into<String>,
    ) {
        if level < self.min_level {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            at,
            level,
            component,
            message: message.into(),
        });
    }

    /// Convenience: record at [`TraceLevel::Info`].
    pub fn info(&mut self, at: SimTime, component: &'static str, message: impl Into<String>) {
        self.record(at, TraceLevel::Info, component, message);
    }

    /// Convenience: record at [`TraceLevel::Warn`].
    pub fn warn(&mut self, at: SimTime, component: &'static str, message: impl Into<String>) {
        self.record(at, TraceLevel::Warn, component, message);
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records whose message contains `needle` (test helper).
    pub fn grep(&self, needle: &str) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.message.contains(needle))
            .collect()
    }

    /// Clear all retained records (the drop counter is kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_kept_in_order() {
        let mut t = Trace::default();
        t.info(SimTime::from_secs(1), "exec", "a");
        t.info(SimTime::from_secs(2), "exec", "b");
        let msgs: Vec<_> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["a", "b"]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Trace::with_capacity(2);
        t.info(SimTime::ZERO, "c", "one");
        t.info(SimTime::ZERO, "c", "two");
        t.info(SimTime::ZERO, "c", "three");
        let msgs: Vec<_> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["two", "three"]);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn min_level_filters() {
        let mut t = Trace::default();
        t.set_min_level(TraceLevel::Warn);
        t.info(SimTime::ZERO, "c", "ignored");
        t.warn(SimTime::ZERO, "c", "kept");
        assert_eq!(t.len(), 1);
        assert_eq!(t.records().next().unwrap().message, "kept");
    }

    #[test]
    fn debug_below_default_level() {
        let mut t = Trace::default();
        t.record(SimTime::ZERO, TraceLevel::Debug, "c", "hidden");
        assert!(t.is_empty());
        t.set_min_level(TraceLevel::Debug);
        t.record(SimTime::ZERO, TraceLevel::Debug, "c", "shown");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grep_finds_matching_messages() {
        let mut t = Trace::default();
        t.info(SimTime::ZERO, "net", "transfer 7 started streams=4");
        t.info(SimTime::ZERO, "net", "transfer 7 finished");
        t.info(SimTime::ZERO, "exec", "job released");
        assert_eq!(t.grep("transfer 7").len(), 2);
        assert_eq!(t.grep("streams=4").len(), 1);
        assert!(t.grep("nothing").is_empty());
    }

    #[test]
    fn display_renders_time_and_level() {
        let r = TraceRecord {
            at: SimTime::from_secs(2),
            level: TraceLevel::Warn,
            component: "ptt",
            message: "retrying".into(),
        };
        let s = format!("{r}");
        assert!(s.contains("2.000000s"));
        assert!(s.contains("WARN"));
        assert!(s.contains("ptt"));
    }

    #[test]
    fn clear_keeps_drop_count() {
        let mut t = Trace::with_capacity(1);
        t.info(SimTime::ZERO, "c", "a");
        t.info(SimTime::ZERO, "c", "b");
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
