//! Deterministic fault plans for the discrete-event simulator.
//!
//! A [`FaultPlan`] is an ordered, immutable-once-built schedule of fault
//! windows: each window has a start instant, a duration, and a
//! component-specific payload describing *what* fails (a network link, a
//! policy replica, ...). Plans are plain data — no clocks, no randomness —
//! so the same plan replayed against the same simulation seed reproduces
//! the same fault sequence and the same makespan bit-for-bit. Seeded
//! construction helpers derive window placements from a [`SimRng`], which
//! keeps chaos scenarios reproducible from a single `u64` master seed.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A half-open window of simulated time `[start, start + duration)` during
/// which a fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultWindow {
    /// Instant at which the fault begins.
    pub start: SimTime,
    /// How long the fault lasts.
    pub duration: SimDuration,
}

impl FaultWindow {
    /// Construct a window starting at `start` and lasting `duration`.
    pub fn new(start: SimTime, duration: SimDuration) -> Self {
        FaultWindow { start, duration }
    }

    /// The instant the fault clears (saturating).
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// True when `t` falls inside the half-open window `[start, end)`.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end()
    }
}

impl fmt::Display for FaultWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

/// One scheduled fault: a window plus a component-specific payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent<K> {
    /// When the fault is active.
    pub window: FaultWindow,
    /// What fails (interpreted by the consuming subsystem).
    pub kind: K,
}

/// An ordered schedule of fault events.
///
/// The payload type `K` is defined by the consuming layer: `pwm-net` uses
/// link faults, `pwm-core` uses policy-service faults. Events are kept
/// sorted by start time (stable within equal starts), so
/// [`FaultPlan::events`] is a deterministic fingerprint of the scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan<K> {
    events: Vec<FaultEvent<K>>,
}

impl<K> Default for FaultPlan<K> {
    fn default() -> Self {
        FaultPlan { events: Vec::new() }
    }
}

impl<K> FaultPlan<K> {
    /// An empty plan (no faults ever fire).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a fault of `kind` active over `[start, start + duration)`.
    pub fn add(&mut self, start: SimTime, duration: SimDuration, kind: K) {
        self.events.push(FaultEvent {
            window: FaultWindow::new(start, duration),
            kind,
        });
        // Stable sort: equal starts keep insertion order, so plans built in
        // the same order compare equal and replay identically.
        self.events.sort_by_key(|e| e.window.start);
    }

    /// All scheduled events in start order.
    pub fn events(&self) -> &[FaultEvent<K>] {
        &self.events
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Iterate over the events whose window contains `t`.
    pub fn active_at(&self, t: SimTime) -> impl Iterator<Item = &FaultEvent<K>> {
        self.events.iter().filter(move |e| e.window.contains(t))
    }

    /// The earliest window boundary (start or end) strictly after `t`, if
    /// any. Simulation kernels use this as a wakeup so piecewise-constant
    /// fault effects are integrated exactly — a flow stalled on a downed
    /// link has no completion ETA, so the fault-clear boundary is the only
    /// event that can make progress.
    pub fn next_boundary_after(&self, t: SimTime) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for e in &self.events {
            for b in [e.window.start, e.window.end()] {
                if b > t && best.is_none_or(|cur| b < cur) {
                    best = Some(b);
                }
            }
        }
        best
    }
}

impl<K: fmt::Debug> FaultPlan<K> {
    /// Render the plan as one line per event — a stable, human-readable
    /// fingerprint used to assert that two same-seed runs injected the same
    /// fault sequence.
    pub fn describe(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|e| format!("{} {:?}", e.window, e.kind))
            .collect()
    }
}

/// A deterministic crash point for durability testing: *where* in the
/// write-ahead-log append sequence a simulated process dies. Crash points
/// are counted in appends rather than wall-clock instants, so the same
/// point replayed against the same command stream tears the log at the
/// same byte, bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die immediately after the `n`-th append (1-based) is fully written:
    /// the log ends on a record boundary.
    AfterAppend(u64),
    /// The `append`-th write is torn: only the first `keep` bytes of the
    /// frame reach stable storage before the crash. Consumers clamp `keep`
    /// below the frame length so the tail is genuinely partial.
    TornAppend {
        /// 1-based ordinal of the append that tears.
        append: u64,
        /// Bytes of the frame that survive.
        keep: usize,
    },
    /// Die inside the snapshot triggered after the `append`-th write: the
    /// temporary snapshot file exists but was never renamed over the live
    /// one, and the log was not compacted.
    MidSnapshot {
        /// 1-based ordinal of the append whose follow-up snapshot tears.
        append: u64,
    },
}

impl CrashPoint {
    /// The 1-based append ordinal at which this crash point fires.
    pub fn append(&self) -> u64 {
        match *self {
            CrashPoint::AfterAppend(n) => n,
            CrashPoint::TornAppend { append, .. } => append,
            CrashPoint::MidSnapshot { append } => append,
        }
    }

    /// Draw a crash point from a seeded rng: the append ordinal is uniform
    /// over `[1, max_append]` and the flavor (clean cut, torn write,
    /// mid-snapshot) is chosen uniformly. Same rng state, same point.
    pub fn seeded(rng: &mut SimRng, max_append: u64) -> CrashPoint {
        let append = rng.uniform_u64(1, max_append.max(1));
        match rng.uniform_u64(0, 2) {
            0 => CrashPoint::AfterAppend(append),
            1 => CrashPoint::TornAppend {
                append,
                keep: rng.uniform_u64(0, 64) as usize,
            },
            _ => CrashPoint::MidSnapshot { append },
        }
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CrashPoint::AfterAppend(n) => write!(f, "crash after append {n}"),
            CrashPoint::TornAppend { append, keep } => {
                write!(f, "torn write at append {append} (keep {keep} B)")
            }
            CrashPoint::MidSnapshot { append } => {
                write!(f, "crash mid-snapshot after append {append}")
            }
        }
    }
}

/// Draw `count` fault windows with starts uniform over `[0, horizon)` and
/// durations uniform over `[min_duration, max_duration]`, sorted by start.
///
/// Determinism: given the same `rng` state the same windows come back, so
/// deriving the rng via [`SimRng::for_component`] from a master seed makes
/// the whole chaos scenario a pure function of that seed.
pub fn seeded_windows(
    rng: &mut SimRng,
    count: usize,
    horizon: SimDuration,
    min_duration: SimDuration,
    max_duration: SimDuration,
) -> Vec<FaultWindow> {
    let lo = min_duration.as_micros();
    let hi = max_duration.as_micros().max(lo);
    let mut windows: Vec<FaultWindow> = (0..count)
        .map(|_| {
            // uniform_u64 is inclusive of its upper bound.
            let start =
                SimTime::from_micros(rng.uniform_u64(0, horizon.as_micros().saturating_sub(1)));
            let dur = SimDuration::from_micros(rng.uniform_u64(lo, hi));
            FaultWindow::new(start, dur)
        })
        .collect();
    windows.sort();
    windows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_containment_is_half_open() {
        let w = FaultWindow::new(SimTime::from_secs(10), SimDuration::from_secs(5));
        assert!(!w.contains(SimTime::from_micros(9_999_999)));
        assert!(w.contains(SimTime::from_secs(10)));
        assert!(w.contains(SimTime::from_micros(14_999_999)));
        assert!(!w.contains(SimTime::from_secs(15)));
        assert_eq!(w.end(), SimTime::from_secs(15));
    }

    #[test]
    fn plan_keeps_events_sorted_by_start() {
        let mut plan = FaultPlan::new();
        plan.add(SimTime::from_secs(30), SimDuration::from_secs(1), "late");
        plan.add(SimTime::from_secs(5), SimDuration::from_secs(1), "early");
        plan.add(SimTime::from_secs(5), SimDuration::from_secs(2), "early2");
        let kinds: Vec<_> = plan.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["early", "early2", "late"]);
    }

    #[test]
    fn active_at_reports_overlapping_events() {
        let mut plan = FaultPlan::new();
        plan.add(SimTime::from_secs(0), SimDuration::from_secs(10), "a");
        plan.add(SimTime::from_secs(5), SimDuration::from_secs(10), "b");
        let at_7: Vec<_> = plan
            .active_at(SimTime::from_secs(7))
            .map(|e| e.kind)
            .collect();
        assert_eq!(at_7, vec!["a", "b"]);
        let at_12: Vec<_> = plan
            .active_at(SimTime::from_secs(12))
            .map(|e| e.kind)
            .collect();
        assert_eq!(at_12, vec!["b"]);
        assert_eq!(plan.active_at(SimTime::from_secs(20)).count(), 0);
    }

    #[test]
    fn next_boundary_walks_starts_and_ends() {
        let mut plan = FaultPlan::new();
        plan.add(SimTime::from_secs(10), SimDuration::from_secs(5), ());
        plan.add(SimTime::from_secs(40), SimDuration::from_secs(1), ());
        assert_eq!(
            plan.next_boundary_after(SimTime::ZERO),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(
            plan.next_boundary_after(SimTime::from_secs(10)),
            Some(SimTime::from_secs(15))
        );
        assert_eq!(
            plan.next_boundary_after(SimTime::from_secs(15)),
            Some(SimTime::from_secs(40))
        );
        assert_eq!(plan.next_boundary_after(SimTime::from_secs(41)), None);
        assert_eq!(
            FaultPlan::<()>::new().next_boundary_after(SimTime::ZERO),
            None
        );
    }

    #[test]
    fn describe_is_a_stable_fingerprint() {
        let mut a = FaultPlan::new();
        a.add(SimTime::from_secs(1), SimDuration::from_secs(2), "x");
        let mut b = FaultPlan::new();
        b.add(SimTime::from_secs(1), SimDuration::from_secs(2), "x");
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_crash_points_are_reproducible_and_bounded() {
        let mut r1 = SimRng::for_component(7, "crash");
        let mut r2 = SimRng::for_component(7, "crash");
        let a: Vec<CrashPoint> = (0..32).map(|_| CrashPoint::seeded(&mut r1, 20)).collect();
        let b: Vec<CrashPoint> = (0..32).map(|_| CrashPoint::seeded(&mut r2, 20)).collect();
        assert_eq!(a, b);
        for p in &a {
            assert!(p.append() >= 1 && p.append() <= 20, "{p}");
        }
        // All three flavors show up over 32 draws.
        assert!(a.iter().any(|p| matches!(p, CrashPoint::AfterAppend(_))));
        assert!(a.iter().any(|p| matches!(p, CrashPoint::TornAppend { .. })));
        assert!(a
            .iter()
            .any(|p| matches!(p, CrashPoint::MidSnapshot { .. })));
    }

    #[test]
    fn seeded_windows_are_reproducible_and_sorted() {
        let horizon = SimDuration::from_secs(600);
        let lo = SimDuration::from_secs(5);
        let hi = SimDuration::from_secs(30);
        let mut r1 = SimRng::for_component(42, "faults");
        let mut r2 = SimRng::for_component(42, "faults");
        let w1 = seeded_windows(&mut r1, 8, horizon, lo, hi);
        let w2 = seeded_windows(&mut r2, 8, horizon, lo, hi);
        assert_eq!(w1, w2);
        assert!(w1.windows(2).all(|p| p[0].start <= p[1].start));
        for w in &w1 {
            assert!(w.start < SimTime::ZERO + horizon);
            assert!(w.duration >= lo && w.duration <= hi);
        }

        let mut r3 = SimRng::for_component(43, "faults");
        let w3 = seeded_windows(&mut r3, 8, horizon, lo, hi);
        assert_ne!(w1, w3, "different seeds should give different windows");
    }
}
