//! Seeded, stream-splittable randomness for reproducible experiments.
//!
//! Every experiment run is driven by a single `u64` master seed. Components
//! derive independent sub-streams by hashing the master seed with a string
//! label ([`derive_seed`]), so adding a new randomized component never
//! perturbs the draws seen by existing ones — the property that keeps a
//! five-seed figure reproducible while the codebase evolves.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Mix a master seed with a component label into an independent sub-seed.
///
/// Uses the SplitMix64 finalizer over an FNV-1a pass of the label: cheap,
/// well-distributed, and stable across platforms and compiler versions.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(master ^ h)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A reproducible RNG owned by one simulation component.
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from a raw seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Create a labelled sub-stream of a master seed.
    pub fn for_component(master: u64, label: &str) -> Self {
        Self::seed_from_u64(derive_seed(master, label))
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the range is empty or
    /// inverted, so degenerate configs (zero jitter) never panic.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            self.inner.random_range(lo..hi)
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            self.inner.random_range(lo..=hi)
        }
    }

    /// A multiplicative jitter factor in `[1 - f, 1 + f]`, `f` clamped to
    /// `[0, 0.99]`. Used to perturb job runtimes and transfer overheads the
    /// way real testbeds do between repetitions.
    pub fn jitter(&mut self, f: f64) -> f64 {
        let f = f.clamp(0.0, 0.99);
        self.uniform(1.0 - f, 1.0 + f)
    }

    /// Standard normal via Box-Muller (two uniforms), no extra crates.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1: f64 = self.uniform(f64::MIN_POSITIVE, 1.0);
        let u2: f64 = self.uniform(0.0, 1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with mean/σ, truncated below at `floor` (re-draw free: clamp).
    pub fn normal_clamped(&mut self, mean: f64, sigma: f64, floor: f64) -> f64 {
        (mean + sigma * self.standard_normal()).max(floor)
    }

    /// Exponential with the given mean, via inverse CDF.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = self.uniform(f64::MIN_POSITIVE, 1.0);
        -mean * u.ln()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random_range(0.0..1.0) < p
        }
    }

    /// Raw access for callers needing other distributions.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_stable_and_label_sensitive() {
        let a = derive_seed(42, "network");
        let b = derive_seed(42, "network");
        let c = derive_seed(42, "runtime");
        let d = derive_seed(43, "network");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut r1 = SimRng::for_component(7, "x");
        let mut r2 = SimRng::for_component(7, "x");
        for _ in 0..100 {
            assert_eq!(r1.uniform_u64(0, 1_000_000), r2.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_labels_give_different_streams() {
        let mut r1 = SimRng::for_component(7, "a");
        let mut r2 = SimRng::for_component(7, "b");
        let s1: Vec<u64> = (0..10).map(|_| r1.uniform_u64(0, u64::MAX - 1)).collect();
        let s2: Vec<u64> = (0..10).map(|_| r2.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn uniform_handles_degenerate_ranges() {
        let mut r = SimRng::seed_from_u64(1);
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
        assert_eq!(r.uniform(5.0, 4.0), 5.0);
        assert_eq!(r.uniform_u64(9, 9), 9);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
            let n = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&n));
        }
    }

    #[test]
    fn jitter_centers_on_one() {
        let mut r = SimRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.jitter(0.2)).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.01, "jitter mean {mean}");
    }

    #[test]
    fn jitter_clamps_factor() {
        let mut r = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.jitter(5.0); // clamped to 0.99
            assert!(v > 0.0 && v < 2.0);
        }
    }

    #[test]
    fn normal_clamped_respects_floor() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(r.normal_clamped(1.0, 10.0, 0.25) >= 0.25);
        }
    }

    #[test]
    fn exponential_has_roughly_right_mean() {
        let mut r = SimRng::seed_from_u64(6);
        let mean: f64 = (0..20_000).map(|_| r.exponential(4.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 4.0).abs() < 0.15, "exp mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
