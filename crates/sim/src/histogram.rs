//! Fixed-bucket histograms for duration/throughput distributions.
//!
//! Used by the workflow run reports (`pwm-workflow::report`) to show the
//! spread of transfer durations and goodputs the way `pegasus-statistics`
//! summarizes job runtimes. For live, mergeable, Prometheus-exposable
//! histograms (hot-path metrics) use `pwm-obs`'s log-bucketed `Histogram`
//! instead — this type is for shaping a known finite range into a
//! human-readable report after the run.

/// A histogram over `[lo, hi)` with uniform buckets plus under/overflow.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `buckets` uniform buckets.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `buckets ≥ 1`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets >= 1, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            let ix = ((frac * self.buckets.len() as f64) as usize).min(self.buckets.len() - 1);
            self.buckets[ix] += 1;
        }
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// `(bucket_lo, bucket_hi, count)` triples, in order.
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    self.lo + i as f64 * width,
                    self.lo + (i + 1) as f64 * width,
                    c,
                )
            })
            .collect()
    }

    /// Counts outside the range: `(underflow, overflow)`.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Render as an ASCII bar chart, `width` characters at the modal bucket.
    pub fn render(&self, width: usize) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (lo, hi, c) in self.buckets() {
            let bar = "#".repeat((c as usize * width.max(1)) / max as usize);
            out.push_str(&format!("{lo:>10.1} - {hi:<10.1} {c:>6} {bar}\n"));
        }
        if self.underflow > 0 || self.overflow > 0 {
            out.push_str(&format!(
                "{:>23} under={} over={}\n",
                "outliers:", self.underflow, self.overflow
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_the_right_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.5, 1.0, 3.0, 9.9] {
            h.record(v);
        }
        let buckets = h.buckets();
        assert_eq!(buckets[0].2, 2); // 0.5 and 1.0 (1.0 falls in [0,2)? no: [0,2) holds 0.5,1.0)
        assert_eq!(buckets[1].2, 1); // 3.0 in [2,4)
        assert_eq!(buckets[4].2, 1); // 9.9 in [8,10)
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn outliers_counted_separately() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(-1.0);
        h.record(10.0); // hi is exclusive
        h.record(100.0);
        assert_eq!(h.outliers(), (1, 2));
        assert_eq!(h.buckets().iter().map(|b| b.2).sum::<u64>(), 0);
    }

    #[test]
    fn mean_includes_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(5.0);
        h.record(15.0);
        assert!((h.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn render_shows_bars_and_outliers() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.record(1.0);
        h.record(1.5);
        h.record(3.0);
        h.record(99.0);
        let text = h.render(10);
        assert!(text.contains("##########"), "{text}");
        assert!(text.contains("over=1"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_rejected() {
        Histogram::new(5.0, 1.0, 4);
    }
}
