//! Virtual time for the discrete-event simulator.
//!
//! Time is kept as an integer number of **microseconds** since the start of
//! the simulation. Integer time makes event ordering exact and reproducible
//! across platforms (no floating-point drift), while one-microsecond
//! resolution is fine enough for network events (a single 1500-byte packet at
//! 1 Gbit/s lasts 12 us) and coarse enough that multi-hour workflow runs fit
//! comfortably in a `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_micros(s))
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time since start as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`. Saturates to zero if `earlier` is
    /// actually later, which keeps bookkeeping code panic-free in the face of
    /// simultaneous events.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds (negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(secs_to_micros(s))
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale the duration by a non-negative factor, saturating on overflow.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "duration scale factor must be non-negative");
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled as u64)
        }
    }
}

fn secs_to_micros(s: f64) -> u64 {
    if s <= 0.0 {
        0
    } else {
        let us = s * 1e6;
        if us >= u64::MAX as f64 {
            u64::MAX
        } else {
            us.round() as u64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-2.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(4));
    }

    #[test]
    fn addition_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_secs(1))
            .is_some());
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_secs(1).mul_f64(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.000250s");
    }

    #[test]
    fn ordering_is_chronological() {
        let mut ts = vec![
            SimTime::from_secs(5),
            SimTime::ZERO,
            SimTime::from_millis(1),
            SimTime::from_secs(1),
        ];
        ts.sort();
        assert_eq!(
            ts,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(1),
                SimTime::from_secs(5),
            ]
        );
    }
}
