//! # Ladder event queue — amortized O(1) pending-event set
//!
//! The indexed 4-ary heap in [`crate::event`] is exact and compact, but
//! every pop walks ~log₄(n) scattered cache lines and profiling at 100k
//! pending events shows `sift_down` alone eating ~24% of a network-engine
//! run (DESIGN.md §11). This module is the calendar-queue-family answer:
//! timestamps are binned into **rungs** of [`NB`] buckets each, buckets
//! are only sorted when they become the **current bucket**, and the sorted
//! current bucket is popped from its tail — so the steady-state cost per
//! event is one bucket append on schedule and one `Vec::pop` on pop, both
//! touching contiguous memory.
//!
//! ## Exactness
//!
//! Unlike textbook calendar queues this structure never approximates pop
//! order. The ordering argument has three parts:
//!
//! 1. **Bucket windows partition time above the consumption edge.** Each
//!    rung covers `[start, end)` split into `width`-sized buckets; a finer
//!    rung is only ever spawned from a single parent bucket and covers
//!    exactly that bucket's window, so at any instant the un-consumed
//!    buckets of all rungs plus the overflow list tile `[cur_hi, ∞)`
//!    disjointly, in order: finest rung first, then the un-consumed
//!    remainder of each parent, then overflow (which only holds events at
//!    or beyond the outermost rung's `end`).
//! 2. **New events land on the correct side.** `place` routes an event to
//!    the sorted current bucket iff `at < cur_hi` (the current bucket's
//!    exclusive upper edge), otherwise to the finest rung whose window
//!    contains it, otherwise to overflow. Since every event satisfies
//!    `at >= now >= (every previously consumed window)`, an event can
//!    never land in an already-consumed bucket.
//! 3. **Within a window, `(time, seq)` sorting decides.** The current
//!    bucket is sorted descending by `(time, seq)` and popped from the
//!    tail, which is exactly the heap's lexicographic pop order; `seq`
//!    values are unique so the order is total and deterministic.
//!
//! Together: every pop takes the minimum `(time, seq)` over the whole
//! structure, so a driver using the ladder is **bit-identical** to one
//! using the heap — locked down by the lockstep differential suite and
//! the cross-queue same-seed determinism test.
//!
//! ## Cancellation and reschedule
//!
//! The same handle→slot generation scheme as the heap: each entry records
//! its handle slot, each slot records the entry's current location
//! (area + rung + bucket + position). Cancel is an O(1) `swap_remove`
//! from a bucket (or an ordered remove from the small current bucket);
//! reschedule is remove + re-place with a fresh sequence number, exactly
//! the heap's cancel-plus-schedule semantics.

use crate::event::{EventHandle, QueueHealth, SimQueue};
use crate::time::{SimDuration, SimTime};

/// Buckets per rung. 64 keeps a rung's bucket array at one page of `Vec`
/// headers and divides any span in ≤ `MAX_RUNGS` refinement steps.
const NB: usize = 64;
/// A bucket promoted to current with more entries than this spawns a
/// finer rung instead of sorting (unless already at 1 µs resolution).
/// Below this, one small `sort_unstable` is cheaper than re-binning.
const SPAWN_THRESHOLD: usize = 48;
/// A current bucket that *grows* past this many entries (inserts landing
/// below `cur_hi`) is demoted into a fresh finest rung instead of taking
/// more O(len) sorted inserts. Without this, a promotion taken while the
/// queue is nearly empty can leave `cur_hi` far in the future, and the
/// current bucket silently becomes the whole queue — every insert then
/// pays a memmove plus a position-fixup walk (observed: 445 µs/op at 100k
/// pending events). Demotion re-bins the bucket once, O(len), and restores
/// the O(1) rung-append path.
const CUR_SPLIT: usize = 128;
/// Refinement depth limit; 64^8 µs ≫ any representable span, so this is
/// a defensive bound, not a practical one.
const MAX_RUNGS: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Area {
    /// Not pending (fired, cancelled, or never issued).
    Dead,
    /// In the sorted current bucket.
    Cur,
    /// In `rungs[rung].buckets[bucket]`.
    Rung,
    /// In the far-future overflow list.
    Over,
}

/// Where a pending entry currently lives, so cancel/reschedule can find
/// it in O(1).
#[derive(Debug, Clone, Copy)]
struct Loc {
    area: Area,
    rung: u8,
    bucket: u8,
    pos: u32,
}

const DEAD: Loc = Loc {
    area: Area::Dead,
    rung: 0,
    bucket: 0,
    pos: 0,
};

/// Per-handle-slot bookkeeping: liveness generation plus current location.
struct Slot {
    gen: u32,
    loc: Loc,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    payload: E,
}

/// One refinement level: `NB` buckets of `width` µs starting at `start`,
/// logically covering `[start, end)` (`end` can clip the last bucket when
/// the rung refines a parent bucket whose window wasn't a multiple of
/// `width * NB`).
struct Rung<E> {
    start: u64,
    width: u64,
    /// Exclusive logical upper edge; placement beyond it falls through to
    /// the next-coarser rung (or overflow).
    end: u64,
    /// Next bucket index to consume; buckets below are spent.
    next: usize,
    /// Live entries across all buckets of this rung.
    count: usize,
    buckets: Vec<Vec<Entry<E>>>,
}

/// An exact-order ladder queue; drop-in for [`crate::EventQueue`] via the
/// [`SimQueue`] trait. See the module docs for the structure and the
/// exactness argument.
pub struct LadderQueue<E> {
    /// Sorted **descending** by `(at, seq)`; the next event to fire is at
    /// the back, so pop is `Vec::pop`. Invariant: non-empty whenever
    /// `len > 0`.
    cur: Vec<Entry<E>>,
    /// Exclusive upper edge of the current bucket's window. Events below
    /// this go straight into `cur` (sorted insert — the
    /// spawn-into-current-bucket fast path).
    cur_hi: u64,
    /// Rung stack: `rungs[0]` is the outermost (coarsest, latest `end`),
    /// the last entry is the finest and is consumed first.
    rungs: Vec<Rung<E>>,
    /// Events at or beyond the outermost rung's `end` (or all events when
    /// no rungs exist). Unordered; re-binned into a fresh base rung when
    /// the rung stack drains.
    overflow: Vec<Entry<E>>,
    /// Handle-slot slab (same generation scheme as the heap).
    slots: Vec<Slot>,
    /// Retired handle slots available for reuse.
    free: Vec<u32>,
    len: usize,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    cancelled: u64,
    /// Retired bucket `Vec`s, kept to recycle their capacity.
    spare_buckets: Vec<Vec<Entry<E>>>,
    /// Retired rung bucket arrays, ditto.
    spare_rungs: Vec<Vec<Vec<Entry<E>>>>,
}

impl<E> Default for LadderQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LadderQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        LadderQueue {
            cur: Vec::new(),
            cur_hi: 0,
            rungs: Vec::new(),
            overflow: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            cancelled: 0,
            spare_buckets: Vec::new(),
            spare_rungs: Vec::new(),
        }
    }

    /// Current virtual time (time of the most recently popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (diagnostic).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of live events still pending. Exact: cancellation removes
    /// entries eagerly.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} requested={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot { gen: 0, loc: DEAD });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.place(Entry {
            at,
            seq,
            slot,
            payload,
        });
        self.len += 1;
        self.ensure_cur();
        EventHandle::pack(slot, gen)
    }

    /// Schedule `payload` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventHandle {
        self.schedule_at(self.now + delay, payload)
    }

    /// Location of `handle`'s entry, if the event is still pending.
    #[inline]
    fn live_loc(&self, handle: EventHandle) -> Option<Loc> {
        let s = handle.slot();
        match self.slots.get(s) {
            Some(slot) if slot.gen == handle.gen() && slot.loc.area != Area::Dead => Some(slot.loc),
            _ => None,
        }
    }

    /// Retire a handle slot once its event fired or was cancelled.
    #[inline]
    fn retire(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.loc = DEAD;
        self.free.push(slot);
    }

    /// Cancel a previously scheduled event. Returns `true` if the event
    /// was still pending. Already-fired, already-cancelled, and
    /// never-issued handles all return `false`. O(1) for bucketed
    /// entries; O(current-bucket size) when the entry is already current.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(loc) = self.live_loc(handle) else {
            return false;
        };
        let entry = self.remove_at(loc);
        self.retire(entry.slot);
        self.len -= 1;
        self.cancelled += 1;
        self.ensure_cur();
        true
    }

    /// Move a still-pending event to a new firing time, keeping its
    /// payload and handle. Identical semantics to the heap: the entry is
    /// re-keyed with a fresh sequence number, so it fires after anything
    /// already scheduled at the same instant. Returns `false` — without
    /// scheduling anything — if the handle is no longer pending.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn reschedule(&mut self, handle: EventHandle, at: SimTime) -> bool {
        let Some(loc) = self.live_loc(handle) else {
            return false;
        };
        assert!(
            at >= self.now,
            "cannot reschedule into the past: now={} requested={}",
            self.now,
            at
        );
        let mut entry = self.remove_at(loc);
        entry.at = at;
        entry.seq = self.next_seq;
        self.next_seq += 1;
        self.place(entry);
        self.ensure_cur();
        true
    }

    /// Cancelled entries still buried in the structure. Always zero —
    /// removal is eager.
    pub fn backlog(&self) -> usize {
        0
    }

    /// Time of the next live event, if any, without popping it. O(1):
    /// the `ensure_cur` invariant keeps the next event at `cur`'s tail.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.cur.last().map(|e| e.at)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.cur.pop()?;
        self.retire(entry.slot);
        self.len -= 1;
        debug_assert!(entry.at >= self.now, "event queue produced time travel");
        self.now = entry.at;
        self.popped += 1;
        self.ensure_cur();
        Some((entry.at, entry.payload))
    }

    /// Pop the next live event only if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.cur.last() {
            Some(e) if e.at <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Drain every event firing at or before `horizon` into `out`, in pop
    /// order. The batch peels straight off the sorted current bucket's
    /// tail, refilling between buckets only.
    pub fn drain_until(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, E)>) {
        loop {
            match self.cur.last() {
                Some(e) if e.at <= horizon => {}
                _ => return,
            }
            let entry = self.cur.pop().expect("checked non-empty");
            self.retire(entry.slot);
            self.len -= 1;
            self.now = entry.at;
            self.popped += 1;
            out.push((entry.at, entry.payload));
            if self.cur.is_empty() {
                self.ensure_cur();
            }
        }
    }

    /// Advance the clock manually (e.g. to a rate-recomputation instant
    /// that is not itself an event). Panics if moving backwards.
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "clock cannot move backwards");
        self.now = at;
    }

    /// Queue-health snapshot, including ladder geometry.
    pub fn health(&self) -> QueueHealth {
        QueueHealth {
            depth: self.len,
            cancelled_total: self.cancelled,
            current_bucket_events: self.cur.len(),
            rung_events: self.rungs.iter().map(|r| r.count).sum(),
            overflow_events: self.overflow.len(),
            active_rungs: self.rungs.len(),
        }
    }

    /// Route an entry to the current bucket, the finest covering rung, or
    /// overflow. See the module docs for why this preserves exact order.
    fn place(&mut self, entry: Entry<E>) {
        let at = entry.at.as_micros();
        if at < self.cur_hi {
            if self.cur.len() < CUR_SPLIT
                || self.rungs.len() >= MAX_RUNGS
                || self.cur_hi.saturating_sub(self.now.as_micros()) <= 1
            {
                // Fast path: into the sorted (descending) current bucket.
                let key = (entry.at, entry.seq);
                let ix = self.cur.partition_point(|e| (e.at, e.seq) > key);
                let slot = entry.slot as usize;
                self.cur.insert(ix, entry);
                self.slots[slot].loc = Loc {
                    area: Area::Cur,
                    rung: 0,
                    bucket: 0,
                    pos: ix as u32,
                };
                for i in ix + 1..self.cur.len() {
                    self.slots[self.cur[i].slot as usize].loc.pos = i as u32;
                }
                return;
            }
            // The current bucket has bloated past CUR_SPLIT: demote it
            // into a fresh finest rung covering [now, cur_hi) and fall
            // through to rung routing. The caller's `ensure_cur` re-promotes
            // a (much smaller) current bucket afterwards.
            self.demote_cur();
        }
        // Finest rung whose window contains `at`. Windows nest, so the
        // first hit walking from the top of the stack is the right one.
        for ri in (0..self.rungs.len()).rev() {
            if at < self.rungs[ri].end {
                let r = &mut self.rungs[ri];
                let b = (((at - r.start) / r.width) as usize).min(NB - 1);
                debug_assert!(b >= r.next, "placement into a consumed bucket");
                let slot = entry.slot as usize;
                let pos = r.buckets[b].len() as u32;
                r.buckets[b].push(entry);
                r.count += 1;
                self.slots[slot].loc = Loc {
                    area: Area::Rung,
                    rung: ri as u8,
                    bucket: b as u8,
                    pos,
                };
                return;
            }
        }
        let slot = entry.slot as usize;
        let pos = self.overflow.len() as u32;
        self.overflow.push(entry);
        self.slots[slot].loc = Loc {
            area: Area::Over,
            rung: 0,
            bucket: 0,
            pos,
        };
    }

    /// Remove and return the entry at `loc`, patching the location slab
    /// for any entry displaced by the removal. Does not retire the slot.
    fn remove_at(&mut self, loc: Loc) -> Entry<E> {
        match loc.area {
            Area::Cur => {
                let p = loc.pos as usize;
                let entry = self.cur.remove(p);
                for i in p..self.cur.len() {
                    self.slots[self.cur[i].slot as usize].loc.pos = i as u32;
                }
                entry
            }
            Area::Rung => {
                let r = &mut self.rungs[loc.rung as usize];
                r.count -= 1;
                let v = &mut r.buckets[loc.bucket as usize];
                let p = loc.pos as usize;
                let entry = v.swap_remove(p);
                if p < v.len() {
                    let moved = v[p].slot as usize;
                    self.slots[moved].loc.pos = p as u32;
                }
                entry
            }
            Area::Over => {
                let p = loc.pos as usize;
                let entry = self.overflow.swap_remove(p);
                if p < self.overflow.len() {
                    let moved = self.overflow[p].slot as usize;
                    self.slots[moved].loc.pos = p as u32;
                }
                entry
            }
            Area::Dead => unreachable!("remove_at on a dead location"),
        }
    }

    /// Re-establish the invariant that `cur` is non-empty whenever live
    /// events remain.
    #[inline]
    fn ensure_cur(&mut self) {
        if self.cur.is_empty() && self.len > 0 {
            self.advance_bucket();
        }
    }

    /// Promote the next non-empty bucket to current, spawning finer rungs
    /// or re-binning overflow along the way. On return `cur` is
    /// non-empty. Pre-condition: `cur` is empty and `len > 0`.
    fn advance_bucket(&mut self) {
        debug_assert!(self.cur.is_empty() && self.len > 0);
        loop {
            if self.rungs.is_empty() {
                debug_assert!(
                    !self.overflow.is_empty(),
                    "live events but every area is empty"
                );
                self.respawn_from_overflow();
                continue;
            }
            if self.rungs.last().expect("checked non-empty").count == 0 {
                let dead = self.rungs.pop().expect("checked non-empty");
                self.spare_rungs.push(dead.buckets);
                continue;
            }
            let spare = self.spare_buckets.pop().unwrap_or_default();
            let depth = self.rungs.len();
            let (bucket, blo, bhi, width) = {
                let r = self.rungs.last_mut().expect("checked non-empty");
                while r.buckets[r.next].is_empty() {
                    r.next += 1;
                }
                let b = r.next;
                let bucket = std::mem::replace(&mut r.buckets[b], spare);
                r.next += 1;
                r.count -= bucket.len();
                let blo = r.start.saturating_add((b as u64).saturating_mul(r.width));
                let bhi = blo.saturating_add(r.width).min(r.end);
                (bucket, blo, bhi, r.width)
            };
            if bucket.len() > SPAWN_THRESHOLD && width > 1 && depth < MAX_RUNGS {
                self.spawn_rung(blo, bhi, width, bucket);
                continue;
            }
            self.make_cur(bucket, bhi);
            return;
        }
    }

    /// Sort `bucket` (descending) and install it as the current bucket
    /// with exclusive upper edge `bhi`.
    fn make_cur(&mut self, mut bucket: Vec<Entry<E>>, bhi: u64) {
        bucket.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
        let old = std::mem::replace(&mut self.cur, bucket);
        debug_assert!(old.is_empty());
        self.spare_buckets.push(old);
        for i in 0..self.cur.len() {
            let slot = self.cur[i].slot as usize;
            self.slots[slot].loc = Loc {
                area: Area::Cur,
                rung: 0,
                bucket: 0,
                pos: i as u32,
            };
        }
        self.cur_hi = bhi;
    }

    /// Demote the bloated current bucket into a fresh finest rung covering
    /// `[now, cur_hi)` and pull `cur_hi` back to `now`, so subsequent
    /// placements take the O(1) rung-append path. The new rung's `end` is
    /// the old `cur_hi` — exactly the consumption edge of everything
    /// above it, so the window-tiling invariant is preserved. Leaves `cur`
    /// empty; callers restore the non-empty invariant via `ensure_cur`.
    /// Pre-conditions: `rungs.len() < MAX_RUNGS` and `cur_hi - now > 1`.
    fn demote_cur(&mut self) {
        let start = self.now.as_micros();
        let end = self.cur_hi;
        debug_assert!(end > start + 1);
        let entries = std::mem::take(&mut self.cur);
        self.cur_hi = start;
        // span/NB-wide buckets: ceil(span / NB) keeps every index < NB.
        self.spawn_rung(start, end, end - start, entries);
    }

    /// Refine an oversized parent bucket (window `[blo, bhi)`, parent
    /// bucket width `parent_width`) into a fresh finest rung.
    fn spawn_rung(&mut self, blo: u64, bhi: u64, parent_width: u64, mut entries: Vec<Entry<E>>) {
        let width = parent_width.div_ceil(NB as u64).max(1);
        let buckets = self.take_bucket_array();
        let ri = self.rungs.len();
        let mut rung = Rung {
            start: blo,
            width,
            end: bhi,
            next: 0,
            count: entries.len(),
            buckets,
        };
        for entry in entries.drain(..) {
            let b = (((entry.at.as_micros() - blo) / width) as usize).min(NB - 1);
            let slot = entry.slot as usize;
            let pos = rung.buckets[b].len() as u32;
            rung.buckets[b].push(entry);
            self.slots[slot].loc = Loc {
                area: Area::Rung,
                rung: ri as u8,
                bucket: b as u8,
                pos,
            };
        }
        self.rungs.push(rung);
        self.spare_buckets.push(entries);
    }

    /// Re-bin the entire overflow list into a fresh base rung sized to
    /// its span. Pre-condition: no rungs exist and overflow is non-empty.
    fn respawn_from_overflow(&mut self) {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for e in &self.overflow {
            let t = e.at.as_micros();
            lo = lo.min(t);
            hi = hi.max(t);
        }
        // width > span/NB, so the largest index (span/width) is < NB and
        // the whole overflow fits without clamping.
        let width = (hi - lo) / NB as u64 + 1;
        let end = lo.saturating_add(width.saturating_mul(NB as u64));
        let buckets = self.take_bucket_array();
        let mut rung = Rung {
            start: lo,
            width,
            end,
            next: 0,
            count: self.overflow.len(),
            buckets,
        };
        for entry in self.overflow.drain(..) {
            let b = (((entry.at.as_micros() - lo) / width) as usize).min(NB - 1);
            let slot = entry.slot as usize;
            let pos = rung.buckets[b].len() as u32;
            rung.buckets[b].push(entry);
            self.slots[slot].loc = Loc {
                area: Area::Rung,
                rung: 0,
                bucket: b as u8,
                pos,
            };
        }
        self.rungs.push(rung);
    }

    /// A recycled (or fresh) `NB`-bucket array with every bucket empty.
    fn take_bucket_array(&mut self) -> Vec<Vec<Entry<E>>> {
        match self.spare_rungs.pop() {
            Some(b) => {
                debug_assert!(b.len() == NB && b.iter().all(Vec::is_empty));
                b
            }
            None => (0..NB).map(|_| Vec::new()).collect(),
        }
    }

    /// Exhaustively verify internal invariants (test support; not part of
    /// the public contract).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut live = self.cur.len() + self.overflow.len();
        assert!(
            self.cur
                .windows(2)
                .all(|w| { (w[0].at, w[0].seq) > (w[1].at, w[1].seq) }),
            "current bucket not sorted descending"
        );
        assert!(
            self.len == 0 || !self.cur.is_empty(),
            "ensure_cur invariant violated: len={} but current bucket empty",
            self.len
        );
        for (i, e) in self.cur.iter().enumerate() {
            let s = &self.slots[e.slot as usize];
            assert!(matches!(s.loc.area, Area::Cur) && s.loc.pos as usize == i);
        }
        for (p, e) in self.overflow.iter().enumerate() {
            let s = &self.slots[e.slot as usize];
            assert!(matches!(s.loc.area, Area::Over) && s.loc.pos as usize == p);
        }
        for (ri, r) in self.rungs.iter().enumerate() {
            let mut count = 0;
            for (bi, bucket) in r.buckets.iter().enumerate() {
                for (p, e) in bucket.iter().enumerate() {
                    count += 1;
                    let s = &self.slots[e.slot as usize];
                    assert!(
                        matches!(s.loc.area, Area::Rung)
                            && s.loc.rung as usize == ri
                            && s.loc.bucket as usize == bi
                            && s.loc.pos as usize == p
                    );
                    assert!(bi >= r.next, "entry in a consumed bucket");
                }
            }
            assert_eq!(count, r.count, "rung count out of sync");
            live += count;
        }
        assert_eq!(live, self.len, "len out of sync with areas");
    }
}

impl<E> SimQueue<E> for LadderQueue<E> {
    fn now(&self) -> SimTime {
        LadderQueue::now(self)
    }
    fn events_processed(&self) -> u64 {
        LadderQueue::events_processed(self)
    }
    fn len(&self) -> usize {
        LadderQueue::len(self)
    }
    fn schedule_at(&mut self, at: SimTime, payload: E) -> EventHandle {
        LadderQueue::schedule_at(self, at, payload)
    }
    fn cancel(&mut self, handle: EventHandle) -> bool {
        LadderQueue::cancel(self, handle)
    }
    fn reschedule(&mut self, handle: EventHandle, at: SimTime) -> bool {
        LadderQueue::reschedule(self, handle, at)
    }
    fn peek_time(&self) -> Option<SimTime> {
        LadderQueue::peek_time(self)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        LadderQueue::pop(self)
    }
    fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        LadderQueue::pop_until(self, horizon)
    }
    fn drain_until(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, E)>) {
        LadderQueue::drain_until(self, horizon, out)
    }
    fn advance_to(&mut self, at: SimTime) {
        LadderQueue::advance_to(self, at)
    }
    fn health(&self) -> QueueHealth {
        LadderQueue::health(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> LadderQueue<&'static str> {
        LadderQueue::new()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        q.check_invariants();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = q();
        let t = SimTime::from_secs(1);
        q.schedule_at(t, "first");
        q.schedule_at(t, "second");
        q.schedule_at(t, "third");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(5), "x");
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn cancel_prevents_firing_and_double_cancel_is_false() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "doomed");
        q.schedule_at(SimTime::from_secs(2), "keeper");
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
        q.check_invariants();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "keeper");
        assert_eq!(q.health().cancelled_total, 1);
    }

    #[test]
    fn stale_handles_never_alias_new_events() {
        let mut q = q();
        let h1 = q.schedule_at(SimTime::from_secs(1), "one");
        q.pop();
        // Slot is recycled by the next schedule; the old handle must not
        // reach the new event.
        let _h2 = q.schedule_at(SimTime::from_secs(2), "two");
        assert!(!q.cancel(h1));
        assert!(!q.reschedule(h1, SimTime::from_secs(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn reschedule_moves_and_requeues_after_ties() {
        let mut q = q();
        let t = SimTime::from_secs(5);
        let h = q.schedule_at(SimTime::from_secs(1), "mover");
        q.schedule_at(t, "anchor");
        assert!(q.reschedule(h, t));
        q.check_invariants();
        // Fresh seq: the moved event fires after the same-instant anchor.
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["anchor", "mover"]);
    }

    #[test]
    fn far_future_outliers_route_through_overflow_and_respawn() {
        let mut q = q();
        q.schedule_at(SimTime::from_micros(10), "near");
        // Far beyond any existing rung: must land in overflow.
        q.schedule_at(SimTime::from_secs(1_000_000), "far");
        assert!(q.health().overflow_events >= 1);
        q.check_invariants();
        assert_eq!(q.pop().unwrap().1, "near");
        // Draining the rungs forces a respawn from overflow.
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.is_empty());
        q.check_invariants();
    }

    #[test]
    fn oversized_buckets_spawn_finer_rungs() {
        let mut q = LadderQueue::new();
        // 10_000 events over a wide span, then one early event to force
        // binning: promoting dense buckets must refine, not sort the world.
        for i in 0..10_000u64 {
            q.schedule_at(SimTime::from_micros(1_000 + i * 17), i);
        }
        q.check_invariants();
        let mut prev = None;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            if let Some(p) = prev {
                assert!(t >= p, "pop order violated");
            }
            prev = Some(t);
            n += 1;
        }
        assert_eq!(n, 10_000);
    }

    #[test]
    fn drain_until_matches_pop_until_loop() {
        let mut a = LadderQueue::new();
        let mut b = LadderQueue::new();
        for i in 0..500u64 {
            let t = SimTime::from_micros((i * 37) % 900);
            a.schedule_at(t, i);
            b.schedule_at(t, i);
        }
        let horizon = SimTime::from_micros(450);
        let mut batch = Vec::new();
        a.drain_until(horizon, &mut batch);
        let mut looped = Vec::new();
        while let Some(ev) = b.pop_until(horizon) {
            looped.push(ev);
        }
        assert_eq!(batch, looped);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.now(), b.now());
        a.check_invariants();
    }

    #[test]
    fn health_reports_geometry() {
        let mut q = q();
        assert_eq!(q.health(), QueueHealth::default());
        q.schedule_at(SimTime::from_secs(1), "a");
        let h = q.schedule_at(SimTime::from_secs(2), "b");
        q.cancel(h);
        let health = q.health();
        assert_eq!(health.depth, 1);
        assert_eq!(health.cancelled_total, 1);
        assert_eq!(
            health.current_bucket_events + health.rung_events + health.overflow_events,
            1
        );
    }

    #[test]
    fn cancel_and_reschedule_across_every_area() {
        // Build a queue with entries in cur, rungs, and overflow, then
        // cancel/reschedule one from each area and check exact order.
        let mut q = LadderQueue::new();
        let mut handles = Vec::new();
        for i in 0..200u64 {
            handles.push((i, q.schedule_at(SimTime::from_micros(1 + i * 997), i)));
        }
        let far = q.schedule_at(SimTime::from_secs(40_000_000), 9_999);
        q.check_invariants();
        // Cancel every third, reschedule every seventh to a new time.
        let mut expected: Vec<(u64, u64)> = Vec::new(); // (time_us, marker)
        let mut reseq = 1_000_000u64;
        for (i, h) in &handles {
            if i % 3 == 0 {
                assert!(q.cancel(*h));
            } else if i % 7 == 0 {
                let t = 500_000 + i * 13;
                assert!(q.reschedule(*h, SimTime::from_micros(t)));
                reseq += 1;
                expected.push((t, reseq));
            } else {
                expected.push((1 + i * 997, *i));
            }
        }
        assert!(q.cancel(far));
        q.check_invariants();
        expected.sort();
        let got: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_micros())
            .collect();
        let want: Vec<u64> = {
            let mut w: Vec<u64> = expected.iter().map(|&(t, _)| t).collect();
            w.sort();
            w
        };
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(2), "x");
        q.pop();
        q.schedule_at(SimTime::from_secs(1), "too late");
    }
}
