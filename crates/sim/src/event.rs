//! Deterministic pending-event set.
//!
//! [`EventQueue`] is the heart of the simulator: a priority queue of
//! `(time, sequence, payload)` entries. Ties in time are broken by insertion
//! sequence, so two runs with the same schedule produce byte-identical event
//! orders — a prerequisite for seeded reproducibility of every experiment in
//! the benchmark harness.
//!
//! The queue is an *indexed* 4-ary heap: alongside the heap array it keeps a
//! handle → heap-position slab that is maintained through every sift, so
//! [`EventQueue::cancel`] locates its entry in O(1) and removes it in
//! O(log n). There is no lazy-deletion corpse pile and no compaction pause —
//! a cancelled event leaves the heap immediately, `len` is always exact, and
//! cancel-heavy workloads (ETA reschedules in the network layer cancel far
//! more events than they fire) pay the same logarithmic cost as scheduling.
//!
//! Hot-path engineering, sized for ~100k pending events:
//!
//! * **Slab position index, not a hash map.** A handle is a `(slot,
//!   generation)` pair packed in a `u64`; the slot indexes a dense
//!   `Vec<Slot>` holding the entry's current heap position. Every sift swap
//!   updates two plain array words — no hashing, no probing, no growth
//!   rehash. Generations make stale handles (already fired or cancelled)
//!   detectably dead, so `cancel` keeps its exact true/false contract even
//!   though slots are recycled.
//! * **4-ary layout.** Quartering the depth halves the levels a pop's
//!   sift-down walks, and the four children sit in at most two cache lines.
//! * **In-place [`EventQueue::reschedule`].** Moving an event to a new time
//!   — the dominant operation under ETA churn — re-keys the entry where it
//!   sits and restores the invariant with a single sift, instead of paying
//!   a full remove plus a fresh insert.

use crate::time::{SimDuration, SimTime};

/// Heap arity.
const D: usize = 4;
/// `Slot::pos` value meaning "not currently pending".
const NO_POS: u32 = u32::MAX;

/// The operations every pending-event structure must provide, with the
/// exact-order contract the simulator is built on: events pop in strict
/// `(time, seq)` lexicographic order, where `seq` is assigned at schedule
/// (and re-assigned by [`SimQueue::reschedule`]) from one monotone counter.
///
/// Two implementations ship: the indexed 4-ary heap [`EventQueue`]
/// (O(log n) everywhere, kept as the differential-test oracle) and the
/// [`crate::ladder::LadderQueue`] (amortized O(1) per operation via
/// epoch-bucketed rungs). [`DynQueue`] selects between them at runtime.
/// Both are *exact*: no binning ever reorders a pop, so a driver swapping
/// one for the other is bit-identical, not just statistically close.
pub trait SimQueue<E> {
    /// Current virtual time (time of the most recently popped event).
    fn now(&self) -> SimTime;
    /// Number of events popped so far (diagnostic).
    fn events_processed(&self) -> u64;
    /// Number of live events still pending.
    fn len(&self) -> usize;
    /// True when no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Schedule `payload` at absolute time `at` (panics if in the past).
    fn schedule_at(&mut self, at: SimTime, payload: E) -> EventHandle;
    /// Schedule `payload` after a relative delay from now.
    fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventHandle {
        let at = self.now() + delay;
        self.schedule_at(at, payload)
    }
    /// Cancel a pending event; `true` iff this call prevented it firing.
    fn cancel(&mut self, handle: EventHandle) -> bool;
    /// Move a pending event to a new time with a fresh sequence number
    /// (fires after existing same-instant ties); `false` if not pending.
    fn reschedule(&mut self, handle: EventHandle, at: SimTime) -> bool;
    /// Cancelled entries still buried in the structure (0 for both
    /// shipped implementations — removal is eager).
    fn backlog(&self) -> usize {
        0
    }
    /// Time of the next live event, if any, without popping it.
    fn peek_time(&self) -> Option<SimTime>;
    /// Pop the next live event, advancing the clock to its timestamp.
    fn pop(&mut self) -> Option<(SimTime, E)>;
    /// Pop the next live event only if it fires at or before `horizon`.
    fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)>;
    /// Drain every event firing at or before `horizon` into `out`, in pop
    /// order. Semantically a `pop_until` loop; implementations with a
    /// sorted current bucket override it to peel the whole batch off in
    /// one pass (the same-timestamp coalescing the network engine's
    /// `advance` leans on).
    fn drain_until(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, E)>) {
        while let Some(ev) = self.pop_until(horizon) {
            out.push(ev);
        }
    }
    /// Advance the clock manually; panics if moving backwards.
    fn advance_to(&mut self, at: SimTime);
    /// Queue-health snapshot for observability exports.
    fn health(&self) -> QueueHealth;
}

/// Which [`SimQueue`] implementation a [`DynQueue`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// The indexed 4-ary heap ([`EventQueue`]) — O(log n), the oracle.
    Heap,
    /// The ladder queue ([`crate::ladder::LadderQueue`]) — amortized O(1).
    #[default]
    Ladder,
}

impl QueueKind {
    /// Stable lowercase name (`"heap"` / `"ladder"`), used in benchmark
    /// reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::Heap => "heap",
            QueueKind::Ladder => "ladder",
        }
    }

    /// Parse a [`QueueKind::name`] string.
    pub fn parse(s: &str) -> Option<QueueKind> {
        match s {
            "heap" => Some(QueueKind::Heap),
            "ladder" => Some(QueueKind::Ladder),
            _ => None,
        }
    }
}

/// A point-in-time health snapshot of a pending-event structure, shaped
/// for gauge export (`sim_queue_depth`, `sim_queue_cancelled_total`,
/// bucket-occupancy gauges). The ladder-geometry fields are zero for the
/// heap, which has no bucket structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueHealth {
    /// Live events pending.
    pub depth: usize,
    /// Events cancelled over the queue's lifetime.
    pub cancelled_total: u64,
    /// Events in the sorted current bucket (ladder only).
    pub current_bucket_events: usize,
    /// Events bucketed in rungs (ladder only).
    pub rung_events: usize,
    /// Far-future events in the overflow staging area (ladder only).
    pub overflow_events: usize,
    /// Rungs currently spawned (ladder only).
    pub active_rungs: usize,
}

/// Identifies a scheduled event so it can be cancelled or rescheduled
/// later. Opaque; a handle outlives its event harmlessly (operations on a
/// fired or cancelled handle report failure instead of aliasing a newer
/// event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

impl EventHandle {
    #[inline]
    pub(crate) fn slot(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    #[inline]
    pub(crate) fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    #[inline]
    pub(crate) fn pack(slot: u32, gen: u32) -> Self {
        EventHandle(u64::from(gen) << 32 | u64::from(slot))
    }

    /// Raw transport form, for callers that pack handles into dense rows
    /// (see `pwm-net`'s flow table). No live handle is ever `u64::MAX` —
    /// that would need 2³²−1 concurrently allocated queue slots — so the
    /// all-ones word is safe as a "no handle" sentinel.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from [`EventHandle::raw`].
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        EventHandle(raw)
    }
}

/// Per-handle-slot bookkeeping: the liveness generation and, while pending,
/// the entry's current heap index.
struct Slot {
    gen: u32,
    pos: u32,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    payload: E,
}

/// A deterministic discrete-event queue with a virtual clock.
///
/// The clock advances only when events are popped; scheduling in the past is
/// a logic error and panics, as it would silently reorder causality.
pub struct EventQueue<E> {
    /// 4-ary min-heap ordered by `(at, seq)`; earliest entry at index 0.
    heap: Vec<Entry<E>>,
    /// Handle-slot slab; `slots[s].pos` is the heap index while pending.
    slots: Vec<Slot>,
    /// Retired handle slots available for reuse.
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    cancelled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            cancelled: 0,
        }
    }

    /// Current virtual time (time of the most recently popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (diagnostic).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of live events still pending. Exact: cancelled events leave
    /// the heap immediately.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} requested={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let ix = self.heap.len() as u32;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].pos = ix;
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot { gen: 0, pos: ix });
                s
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(Entry {
            at,
            seq,
            slot,
            payload,
        });
        self.sift_up(ix as usize);
        EventHandle::pack(slot, gen)
    }

    /// Schedule `payload` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventHandle {
        self.schedule_at(self.now + delay, payload)
    }

    /// Heap index of `handle`'s entry, if the event is still pending.
    #[inline]
    fn live_pos(&self, handle: EventHandle) -> Option<usize> {
        let s = handle.slot();
        match self.slots.get(s) {
            Some(slot) if slot.gen == handle.gen() && slot.pos != NO_POS => Some(slot.pos as usize),
            _ => None,
        }
    }

    /// Retire a handle slot once its event fired or was cancelled: bump the
    /// generation (staling any outstanding handles) and recycle the slot.
    #[inline]
    fn retire(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.pos = NO_POS;
        self.free.push(slot);
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. this call actually prevented it from firing).
    /// Already-fired, already-cancelled, and never-issued handles all return
    /// `false`. O(log n); the position slab makes the lookup O(1).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(ix) = self.live_pos(handle) else {
            return false;
        };
        let entry = self.take_at(ix);
        self.retire(entry.slot);
        self.cancelled += 1;
        true
    }

    /// Move a still-pending event to a new firing time, keeping its payload
    /// and handle. Exactly equivalent to a cancel plus a fresh
    /// `schedule_at` (the entry is re-keyed with a fresh sequence number,
    /// so it fires after anything already scheduled at the same instant),
    /// but restores the heap invariant with a single sift from the entry's
    /// current position instead of a remove plus an insert. Returns `false`
    /// — without scheduling anything — if the handle is no longer pending.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn reschedule(&mut self, handle: EventHandle, at: SimTime) -> bool {
        let Some(ix) = self.live_pos(handle) else {
            return false;
        };
        assert!(
            at >= self.now,
            "cannot reschedule into the past: now={} requested={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let old_at = self.heap[ix].at;
        self.heap[ix].at = at;
        self.heap[ix].seq = seq;
        // The fresh seq makes the new key strictly larger at equal `at`, so
        // the entry can only move one way: up for a strictly earlier time,
        // down otherwise. One sift, not two.
        if at < old_at {
            self.sift_up(ix);
        } else {
            self.sift_down(ix);
        }
        true
    }

    /// Number of cancelled entries still buried in the heap (diagnostic).
    /// Always zero for the indexed heap — removal is eager — kept so
    /// monitoring call sites compile unchanged.
    pub fn backlog(&self) -> usize {
        0
    }

    /// Time of the next live event, if any, without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.take_at(0);
        self.retire(entry.slot);
        debug_assert!(entry.at >= self.now, "event queue produced time travel");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.payload))
    }

    /// Pop the next live event only if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Advance the clock manually (e.g. to a rate-recomputation instant that
    /// is not itself an event). Panics if moving backwards.
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "clock cannot move backwards");
        self.now = at;
    }

    /// True when entry `a` orders strictly before entry `b` in pop order.
    #[inline]
    fn before(&self, a: usize, b: usize) -> bool {
        let (ea, eb) = (&self.heap[a], &self.heap[b]);
        (ea.at, ea.seq) < (eb.at, eb.seq)
    }

    /// Swap two heap entries and keep the position slab consistent.
    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a].slot as usize].pos = a as u32;
        self.slots[self.heap[b].slot as usize].pos = b as u32;
    }

    fn sift_up(&mut self, mut ix: usize) {
        while ix > 0 {
            let parent = (ix - 1) / D;
            if self.before(ix, parent) {
                self.swap(ix, parent);
                ix = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut ix: usize) {
        loop {
            let first = D * ix + 1;
            if first >= self.heap.len() {
                break;
            }
            let last = (first + D).min(self.heap.len());
            let mut smallest = first;
            for child in first + 1..last {
                if self.before(child, smallest) {
                    smallest = child;
                }
            }
            if self.before(smallest, ix) {
                self.swap(ix, smallest);
                ix = smallest;
            } else {
                break;
            }
        }
    }

    /// Remove and return the entry at heap index `ix`, restoring the heap
    /// invariant. The caller is responsible for retiring the entry's handle
    /// slot (both `cancel` and `pop` do).
    fn take_at(&mut self, ix: usize) -> Entry<E> {
        let last = self.heap.len() - 1;
        self.heap.swap(ix, last);
        let entry = self.heap.pop().expect("take_at on empty heap");
        if ix < self.heap.len() {
            self.slots[self.heap[ix].slot as usize].pos = ix as u32;
            // The swapped-in tail element can violate the invariant in either
            // direction relative to its new parent.
            self.sift_up(ix);
            self.sift_down(ix);
        }
        entry
    }

    /// Queue-health snapshot. The heap has no bucket geometry, so only the
    /// depth and cancellation counters are populated.
    pub fn health(&self) -> QueueHealth {
        QueueHealth {
            depth: self.heap.len(),
            cancelled_total: self.cancelled,
            ..QueueHealth::default()
        }
    }
}

impl<E> SimQueue<E> for EventQueue<E> {
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn events_processed(&self) -> u64 {
        EventQueue::events_processed(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn schedule_at(&mut self, at: SimTime, payload: E) -> EventHandle {
        EventQueue::schedule_at(self, at, payload)
    }
    fn cancel(&mut self, handle: EventHandle) -> bool {
        EventQueue::cancel(self, handle)
    }
    fn reschedule(&mut self, handle: EventHandle, at: SimTime) -> bool {
        EventQueue::reschedule(self, handle, at)
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        EventQueue::pop_until(self, horizon)
    }
    fn advance_to(&mut self, at: SimTime) {
        EventQueue::advance_to(self, at)
    }
    fn health(&self) -> QueueHealth {
        EventQueue::health(self)
    }
}

/// Runtime-selected pending-event structure: a two-variant enum instead of
/// a generic parameter, so `Network` and the workflow executor can switch
/// queues per run (benchmark head-to-heads, cross-queue determinism tests)
/// without the type parameter infecting every downstream signature. The
/// per-call variant branch is perfectly predicted in any single run and is
/// noise next to the memory traffic either queue generates.
pub enum DynQueue<E> {
    /// Indexed 4-ary heap.
    Heap(EventQueue<E>),
    /// Ladder queue.
    Ladder(crate::ladder::LadderQueue<E>),
}

impl<E> DynQueue<E> {
    /// Create an empty queue of the requested kind, clock at
    /// [`SimTime::ZERO`].
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Heap => DynQueue::Heap(EventQueue::new()),
            QueueKind::Ladder => DynQueue::Ladder(crate::ladder::LadderQueue::new()),
        }
    }

    /// Which implementation this queue dispatches to.
    pub fn kind(&self) -> QueueKind {
        match self {
            DynQueue::Heap(_) => QueueKind::Heap,
            DynQueue::Ladder(_) => QueueKind::Ladder,
        }
    }
}

impl<E> Default for DynQueue<E> {
    fn default() -> Self {
        DynQueue::new(QueueKind::default())
    }
}

macro_rules! dyn_dispatch {
    ($self:ident, $q:ident => $body:expr) => {
        match $self {
            DynQueue::Heap($q) => $body,
            DynQueue::Ladder($q) => $body,
        }
    };
}

impl<E> SimQueue<E> for DynQueue<E> {
    fn now(&self) -> SimTime {
        dyn_dispatch!(self, q => q.now())
    }
    fn events_processed(&self) -> u64 {
        dyn_dispatch!(self, q => q.events_processed())
    }
    fn len(&self) -> usize {
        dyn_dispatch!(self, q => q.len())
    }
    fn schedule_at(&mut self, at: SimTime, payload: E) -> EventHandle {
        dyn_dispatch!(self, q => q.schedule_at(at, payload))
    }
    fn cancel(&mut self, handle: EventHandle) -> bool {
        dyn_dispatch!(self, q => q.cancel(handle))
    }
    fn reschedule(&mut self, handle: EventHandle, at: SimTime) -> bool {
        dyn_dispatch!(self, q => q.reschedule(handle, at))
    }
    fn peek_time(&self) -> Option<SimTime> {
        dyn_dispatch!(self, q => q.peek_time())
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        dyn_dispatch!(self, q => q.pop())
    }
    fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        dyn_dispatch!(self, q => q.pop_until(horizon))
    }
    fn drain_until(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, E)>) {
        match self {
            DynQueue::Heap(q) => {
                while let Some(ev) = q.pop_until(horizon) {
                    out.push(ev);
                }
            }
            DynQueue::Ladder(q) => SimQueue::drain_until(q, horizon, out),
        }
    }
    fn advance_to(&mut self, at: SimTime) {
        dyn_dispatch!(self, q => q.advance_to(at))
    }
    fn health(&self) -> QueueHealth {
        dyn_dispatch!(self, q => q.health())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> EventQueue<&'static str> {
        EventQueue::new()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = q();
        let t = SimTime::from_secs(1);
        q.schedule_at(t, "first");
        q.schedule_at(t, "second");
        q.schedule_at(t, "third");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(5), "x");
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(10), "base");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "later");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(12));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(10), "x");
        q.pop();
        q.schedule_at(SimTime::from_secs(1), "too-late");
    }

    #[test]
    fn cancellation_suppresses_event() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "dead");
        q.schedule_at(SimTime::from_secs(2), "alive");
        assert!(q.cancel(h));
        assert_eq!(q.len(), 1);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "alive");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelling_fired_event_returns_false() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "x");
        q.pop();
        assert!(!q.cancel(h));
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "x");
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(1), "early");
        q.schedule_at(SimTime::from_secs(10), "late");
        assert_eq!(q.pop_until(SimTime::from_secs(5)).unwrap().1, "early");
        assert!(q.pop_until(SimTime::from_secs(5)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "dead");
        q.schedule_at(SimTime::from_secs(2), "alive");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn advance_to_moves_clock_without_events() {
        let mut q = q();
        q.advance_to(SimTime::from_secs(4));
        assert_eq!(q.now(), SimTime::from_secs(4));
        q.schedule_in(SimDuration::from_secs(1), "x");
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(5));
    }

    #[test]
    fn cancel_heavy_workload_keeps_len_honest_and_heap_compact() {
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        for i in 0..4_000u64 {
            handles.push(q.schedule_at(SimTime::from_micros(i), i));
        }
        // Cancel 99% of the queue without popping anything — removal is
        // eager, so `len` tracks every cancellation exactly.
        let mut live = 4_000usize;
        for (i, h) in handles.iter().enumerate() {
            if i % 100 != 0 {
                assert!(q.cancel(*h));
                live -= 1;
                assert_eq!(q.len(), live);
            }
        }
        assert_eq!(q.len(), 40);
        // Eager-removal invariant: no dead entries linger, ever.
        assert_eq!(q.backlog(), 0);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 40);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn compaction_preserves_order_and_cancel_semantics() {
        let mut q = q();
        let t = SimTime::from_secs(1);
        let doomed: Vec<_> = (0..8).map(|_| q.schedule_at(t, "dead")).collect();
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        for h in &doomed {
            assert!(q.cancel(*h));
        }
        // Cancelling a second time must still report "already dead".
        assert!(!q.cancel(doomed[0]));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b"]);
    }

    #[test]
    fn reschedule_moves_event_and_keeps_handle() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "moved");
        q.schedule_at(SimTime::from_secs(2), "fixed");
        assert!(q.reschedule(h, SimTime::from_secs(3)));
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime::from_secs(2), "fixed"),
                (SimTime::from_secs(3), "moved"),
            ]
        );
    }

    #[test]
    fn reschedule_to_same_instant_fires_after_existing_ties() {
        // Re-keying takes a fresh sequence number, exactly as a cancel +
        // schedule would: the moved event loses its FIFO seniority.
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "moved");
        q.schedule_at(SimTime::from_secs(1), "stayed");
        assert!(q.reschedule(h, SimTime::from_secs(1)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["stayed", "moved"]);
    }

    #[test]
    fn reschedule_of_dead_handle_is_rejected() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "x");
        assert!(q.cancel(h));
        assert!(!q.reschedule(h, SimTime::from_secs(2)));
        assert_eq!(q.len(), 0);
        let h2 = q.schedule_at(SimTime::from_secs(3), "y");
        q.pop();
        assert!(!q.reschedule(h2, SimTime::from_secs(4)), "fired handle");
    }

    #[test]
    fn stale_handle_does_not_alias_recycled_slot() {
        // Slot recycling must not let an old handle cancel a newer event.
        let mut q = q();
        let dead = q.schedule_at(SimTime::from_secs(1), "first");
        assert!(q.cancel(dead));
        let _alive = q.schedule_at(SimTime::from_secs(2), "second");
        assert!(!q.cancel(dead), "stale handle hit the recycled slot");
        assert!(!q.reschedule(dead, SimTime::from_secs(9)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn events_processed_counts_pops() {
        let mut q = q();
        for i in 0..5 {
            q.schedule_at(SimTime::from_secs(i), "e");
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 5);
    }

    #[test]
    fn interleaved_cancel_schedule_pop_keeps_exact_order() {
        // Remove-from-middle exercises both sift directions of `take_at`.
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        for i in 0..64u64 {
            // Zig-zag times so heap layout differs from pop order.
            let t = if i % 2 == 0 { 1000 - i } else { i };
            handles.push((t, q.schedule_at(SimTime::from_micros(t), (t, i))));
        }
        // Cancel every third event.
        let mut expect: Vec<(u64, u64)> = Vec::new();
        for (i, (t, h)) in handles.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*h));
            } else {
                expect.push((*t, i as u64));
            }
        }
        expect.sort_by_key(|&(t, i)| (t, i));
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(got, expect);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always pop in nondecreasing time order, with FIFO ties.
        #[test]
        fn pops_are_time_ordered(times in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(SimTime::from_micros(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut seen_at: Vec<(SimTime, usize)> = Vec::new();
            while let Some((t, ix)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                seen_at.push((t, ix));
            }
            prop_assert_eq!(seen_at.len(), times.len());
            // FIFO within equal timestamps.
            for w in seen_at.windows(2) {
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1);
                }
            }
        }

        /// Cancelling an arbitrary subset suppresses exactly that subset.
        #[test]
        fn cancellation_is_exact(
            times in proptest::collection::vec(0u64..1_000, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let handles: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (i, q.schedule_at(SimTime::from_micros(t), i)))
                .collect();
            let mut cancelled = std::collections::BTreeSet::new();
            for (i, h) in &handles {
                if *cancel_mask.get(*i).unwrap_or(&false) {
                    prop_assert!(q.cancel(*h));
                    cancelled.insert(*i);
                }
            }
            let mut survived = std::collections::BTreeSet::new();
            while let Some((_, ix)) = q.pop() {
                survived.insert(ix);
            }
            for i in 0..times.len() {
                prop_assert_eq!(survived.contains(&i), !cancelled.contains(&i));
            }
        }
    }
}
