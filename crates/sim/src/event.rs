//! Deterministic pending-event set.
//!
//! [`EventQueue`] is the heart of the simulator: a priority queue of
//! `(time, sequence, payload)` entries. Ties in time are broken by insertion
//! sequence, so two runs with the same schedule produce byte-identical event
//! orders — a prerequisite for seeded reproducibility of every experiment in
//! the benchmark harness.
//!
//! Events may be cancelled by [`EventHandle`] without restructuring the heap:
//! cancellation marks the handle dead and the entry is skipped lazily when it
//! reaches the top (the standard "lazy deletion" trick). To keep the heap from
//! filling up with corpses under cancel-heavy workloads (ETA reschedules in
//! the network layer cancel far more events than they fire), the queue
//! compacts itself whenever cancelled entries outnumber live ones — dead
//! entries never exceed half the heap.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifies a scheduled event so it can be cancelled later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue with a virtual clock.
///
/// The clock advances only when events are popped; scheduling in the past is
/// a logic error and panics, as it would silently reorder causality.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current virtual time (time of the most recently popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (diagnostic).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of live (non-cancelled) events still pending.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} requested={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        EventHandle(seq)
    }

    /// Schedule `payload` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> EventHandle {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. this call actually prevented it from firing).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        // An already-fired event's seq is no longer in the heap; inserting it
        // into `cancelled` would leak, so only record when plausibly pending.
        if self.is_pending_seq(handle.0) {
            self.cancelled.insert(handle.0);
            self.maybe_compact();
            true
        } else {
            false
        }
    }

    /// Number of cancelled entries still buried in the heap awaiting lazy
    /// removal (diagnostic). Bounded by [`len`](Self::len) thanks to
    /// compaction.
    pub fn backlog(&self) -> usize {
        self.cancelled.len()
    }

    /// Rebuild the heap without dead entries once they outnumber live ones.
    /// O(n) but amortized free: n/2 cancellations paid for each rebuild.
    fn maybe_compact(&mut self) {
        if self.cancelled.len() <= self.heap.len() / 2 {
            return;
        }
        let cancelled = std::mem::take(&mut self.cancelled);
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .filter(|e| !cancelled.contains(&e.seq))
            .collect();
    }

    fn is_pending_seq(&self, seq: u64) -> bool {
        // Pending iff not yet popped and not already cancelled. We cannot ask
        // the heap directly without a scan, so track via the cancelled set
        // plus a conservative check against the pop watermark: since events
        // may pop out of seq order, do the O(n) scan only here (cancel is a
        // rare operation compared to schedule/pop).
        !self.cancelled.contains(&seq) && self.heap.iter().any(|e| e.seq == seq)
    }

    /// Time of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue produced time travel");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.payload))
    }

    /// Pop the next live event only if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Advance the clock manually (e.g. to a rate-recomputation instant that
    /// is not itself an event). Panics if moving backwards.
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "clock cannot move backwards");
        self.now = at;
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> EventQueue<&'static str> {
        EventQueue::new()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = q();
        let t = SimTime::from_secs(1);
        q.schedule_at(t, "first");
        q.schedule_at(t, "second");
        q.schedule_at(t, "third");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(5), "x");
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(10), "base");
        q.pop();
        q.schedule_in(SimDuration::from_secs(2), "later");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(12));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(10), "x");
        q.pop();
        q.schedule_at(SimTime::from_secs(1), "too-late");
    }

    #[test]
    fn cancellation_suppresses_event() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "dead");
        q.schedule_at(SimTime::from_secs(2), "alive");
        assert!(q.cancel(h));
        assert_eq!(q.len(), 1);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "alive");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelling_fired_event_returns_false() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "x");
        q.pop();
        assert!(!q.cancel(h));
    }

    #[test]
    fn double_cancel_returns_false() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "x");
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = q();
        q.schedule_at(SimTime::from_secs(1), "early");
        q.schedule_at(SimTime::from_secs(10), "late");
        assert_eq!(q.pop_until(SimTime::from_secs(5)).unwrap().1, "early");
        assert!(q.pop_until(SimTime::from_secs(5)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = q();
        let h = q.schedule_at(SimTime::from_secs(1), "dead");
        q.schedule_at(SimTime::from_secs(2), "alive");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn advance_to_moves_clock_without_events() {
        let mut q = q();
        q.advance_to(SimTime::from_secs(4));
        assert_eq!(q.now(), SimTime::from_secs(4));
        q.schedule_in(SimDuration::from_secs(1), "x");
        assert_eq!(q.pop().unwrap().0, SimTime::from_secs(5));
    }

    #[test]
    fn cancel_heavy_workload_keeps_len_honest_and_heap_compact() {
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        for i in 0..4_000u64 {
            handles.push(q.schedule_at(SimTime::from_micros(i), i));
        }
        // Cancel 99% of the queue without popping anything — the old lazy
        // deletion kept every corpse until it surfaced at the top.
        let mut live = 4_000usize;
        for (i, h) in handles.iter().enumerate() {
            if i % 100 != 0 {
                assert!(q.cancel(*h));
                live -= 1;
                assert_eq!(q.len(), live);
            }
        }
        assert_eq!(q.len(), 40);
        // Compaction invariant: dead entries never outnumber live ones.
        assert!(q.backlog() <= q.len(), "backlog {} leaked", q.backlog());
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 40);
        assert_eq!(q.backlog(), 0);
    }

    #[test]
    fn compaction_preserves_order_and_cancel_semantics() {
        let mut q = q();
        let t = SimTime::from_secs(1);
        let doomed: Vec<_> = (0..8).map(|_| q.schedule_at(t, "dead")).collect();
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        for h in &doomed {
            assert!(q.cancel(*h));
        }
        // Cancelling after compaction must still report "already dead".
        assert!(!q.cancel(doomed[0]));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b"]);
    }

    #[test]
    fn events_processed_counts_pops() {
        let mut q = q();
        for i in 0..5 {
            q.schedule_at(SimTime::from_secs(i), "e");
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always pop in nondecreasing time order, with FIFO ties.
        #[test]
        fn pops_are_time_ordered(times in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(SimTime::from_micros(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut seen_at: Vec<(SimTime, usize)> = Vec::new();
            while let Some((t, ix)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                seen_at.push((t, ix));
            }
            prop_assert_eq!(seen_at.len(), times.len());
            // FIFO within equal timestamps.
            for w in seen_at.windows(2) {
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1);
                }
            }
        }

        /// Cancelling an arbitrary subset suppresses exactly that subset.
        #[test]
        fn cancellation_is_exact(
            times in proptest::collection::vec(0u64..1_000, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let handles: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (i, q.schedule_at(SimTime::from_micros(t), i)))
                .collect();
            let mut cancelled = std::collections::BTreeSet::new();
            for (i, h) in &handles {
                if *cancel_mask.get(*i).unwrap_or(&false) {
                    prop_assert!(q.cancel(*h));
                    cancelled.insert(*i);
                }
            }
            let mut survived = std::collections::BTreeSet::new();
            while let Some((_, ix)) = q.pop() {
                survived.insert(ix);
            }
            for i in 0..times.len() {
                prop_assert_eq!(survived.contains(&i), !cancelled.contains(&i));
            }
        }
    }
}
