//! Online and batch statistics used by the experiment harness.
//!
//! The paper reports each experimental point as the mean of at least five
//! runs with standard-deviation error bars; [`OnlineStats`] (Welford's
//! algorithm) provides exactly that without storing samples, and [`Summary`]
//! is the value the harness prints per figure point.

/// Numerically stable running mean/variance (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (parallel-friendly; Chan et al.).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Snapshot into a plain [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            stddev: self.stddev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Immutable summary of a sample set — one figure point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of runs behind this point.
    pub n: u64,
    /// Mean value.
    pub mean: f64,
    /// Sample standard deviation (the paper's error bars).
    pub stddev: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
}

impl Summary {
    /// Summarize a slice in one pass.
    pub fn of(samples: &[f64]) -> Summary {
        let mut s = OnlineStats::new();
        for &x in samples {
            s.push(x);
        }
        s.summary()
    }

    /// Relative stddev (coefficient of variation); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Percentile of a sample slice using linear interpolation between ranks.
/// `q` in `[0, 1]`. Returns 0 for empty input.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_mean_and_stddev() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population stddev of this classic set is 2; sample stddev is
        // sqrt(32/7).
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn summary_of_slice() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.stddev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cv_handles_zero_mean() {
        let s = Summary::of(&[0.0, 0.0]);
        assert_eq!(s.cv(), 0.0);
        let s = Summary::of(&[10.0, 10.0]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn percentile_basics() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 1.0), 5.0);
        assert_eq!(percentile(&data, 0.5), 3.0);
        assert!((percentile(&data, 0.25) - 2.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [0.0, 10.0];
        assert!((percentile(&data, 0.75) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_clamps_q() {
        let data = [1.0, 2.0];
        assert_eq!(percentile(&data, -0.5), 1.0);
        assert_eq!(percentile(&data, 1.5), 2.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = if xs.len() < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        };
        (mean, var)
    }

    proptest! {
        /// Welford matches the two-pass textbook computation.
        #[test]
        fn welford_matches_naive(xs in proptest::collection::vec(-1.0e6..1.0e6f64, 1..200)) {
            let mut s = OnlineStats::new();
            for &x in &xs {
                s.push(x);
            }
            let (mean, var) = naive_mean_var(&xs);
            let scale = 1.0 + mean.abs().max(var.abs());
            prop_assert!((s.mean() - mean).abs() / scale < 1e-9);
            prop_assert!((s.variance() - var).abs() / scale.powi(2).max(1.0) < 1e-6);
        }

        /// Merging any split equals processing the whole slice.
        #[test]
        fn merge_equals_sequential(
            xs in proptest::collection::vec(-1.0e3..1.0e3f64, 2..120),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
            let mut whole = OnlineStats::new();
            for &x in &xs {
                whole.push(x);
            }
            let mut a = OnlineStats::new();
            let mut b = OnlineStats::new();
            for &x in &xs[..split] { a.push(x); }
            for &x in &xs[split..] { b.push(x); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance().abs()));
        }

        /// Percentiles are monotone in q and bounded by min/max.
        #[test]
        fn percentile_monotone_and_bounded(
            xs in proptest::collection::vec(-1.0e3..1.0e3f64, 1..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = (q1.min(q2), q1.max(q2));
            let p_lo = percentile(&xs, lo);
            let p_hi = percentile(&xs, hi);
            prop_assert!(p_lo <= p_hi + 1e-12);
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(p_lo >= min - 1e-12 && p_hi <= max + 1e-12);
        }
    }
}
