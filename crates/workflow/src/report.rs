//! Human-readable run reports (the `pegasus-statistics` analogue).
//!
//! Renders a [`RunStats`] into the summary an operator would read after a
//! run: job counts, staging breakdown, transfer-duration and goodput
//! distributions, policy interaction counters.

use crate::planner::{ExecutablePlan, PlanJobKind};
use crate::stats::RunStats;
use pwm_sim::histogram::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render the post-run report.
pub fn render_report(plan: &ExecutablePlan, stats: &RunStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Workflow run report: {}", plan.name);
    let _ = writeln!(out, "{}", "=".repeat(60));
    let _ = writeln!(
        out,
        "outcome: {}   makespan: {:.1}s   finished at t={:.1}s",
        if stats.success { "SUCCESS" } else { "FAILED" },
        stats.makespan.as_secs_f64(),
        stats.finished_at.as_secs_f64()
    );

    // Job table by kind and transformation.
    let mut by_transformation: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for job in plan.jobs() {
        if let PlanJobKind::Compute {
            transformation,
            runtime_s,
            ..
        } = &job.kind
        {
            let entry = by_transformation.entry(transformation).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += runtime_s;
        }
    }
    let _ = writeln!(out, "\njobs:");
    let _ = writeln!(
        out,
        "  compute {}   staging {}   cleanup {}   failed {}",
        stats.compute_jobs, stats.staging_jobs, stats.cleanup_jobs, stats.failed_jobs
    );
    let _ = writeln!(
        out,
        "\n  {:<18}{:>8}{:>16}",
        "transformation", "count", "mean runtime(s)"
    );
    for (t, (count, total)) in &by_transformation {
        let _ = writeln!(
            out,
            "  {:<18}{:>8}{:>16.1}",
            t,
            count,
            total / *count as f64
        );
    }

    // Staging summary.
    let _ = writeln!(out, "\nstaging:");
    let _ = writeln!(
        out,
        "  transfers {}   bytes {:.2} GB   skipped (policy) {}   retries {}",
        stats.transfers.len(),
        stats.bytes_staged / 1e9,
        stats.transfers_skipped,
        stats.transfer_retries
    );
    let _ = writeln!(
        out,
        "  aggregate staging goodput: {:.2} MB/s",
        stats.staging_goodput() / 1e6
    );
    if let Some(peak) = stats.peak_wan_streams {
        let _ = writeln!(out, "  peak concurrent WAN streams: {peak}");
    }
    let _ = writeln!(
        out,
        "  scratch footprint: peak {:.2} GB, final {:.2} GB",
        stats.peak_scratch_bytes / 1e9,
        stats.final_scratch_bytes / 1e9
    );
    let _ = writeln!(out, "  policy-service calls: {}", stats.policy_calls);

    // Distributions (WAN-scale transfers only; LAN blips would drown them).
    let wan: Vec<_> = stats
        .transfers
        .iter()
        .filter(|t| t.bytes >= 1.0e6)
        .collect();
    if !wan.is_empty() {
        let max_dur = wan
            .iter()
            .map(|t| t.total_duration().as_secs_f64())
            .fold(0.0f64, f64::max)
            .max(1.0);
        let mut durations = Histogram::new(0.0, max_dur * 1.01, 8);
        let mut goodputs = Histogram::new(0.0, 4.0, 8); // MB/s, WAN-scale
        for t in &wan {
            durations.record(t.total_duration().as_secs_f64());
            goodputs.record(t.goodput() / 1e6);
        }
        let _ = writeln!(
            out,
            "\ntransfer durations (s), {} WAN transfers:",
            wan.len()
        );
        out.push_str(&durations.render(30));
        let _ = writeln!(out, "per-transfer goodput (MB/s):");
        out.push_str(&goodputs.render(30));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ComputeSite, ReplicaCatalog};
    use crate::dag::{AbstractJob, AbstractWorkflow};
    use crate::executor::{ExecutorConfig, WorkflowExecutor};
    use crate::planner::{plan, PlannerConfig};
    use pwm_core::transport::NoPolicyTransport;
    use pwm_net::{paper_testbed, Network, StreamModel};

    fn run_small() -> (ExecutablePlan, RunStats) {
        let (topo, gridftp, _apache, nfs) = paper_testbed();
        let site = ComputeSite {
            name: "obelix".into(),
            nodes: 2,
            cores_per_node: 2,
            storage_host: nfs,
            storage_host_name: "obelix-nfs".into(),
            scratch_dir: "/scratch".into(),
        };
        let mut wf = AbstractWorkflow::new("report-test");
        for i in 0..4 {
            wf.add_job(AbstractJob {
                name: format!("work_{i}"),
                transformation: "work".into(),
                runtime_s: 3.0,
                inputs: vec![format!("in_{i}")],
                outputs: vec![format!("out_{i}")],
            });
            wf.set_file_size(format!("in_{i}"), 10_000_000);
            wf.set_file_size(format!("out_{i}"), 1_000);
        }
        let mut rc = ReplicaCatalog::new();
        for i in 0..4 {
            rc.insert(
                format!("in_{i}"),
                pwm_core::Url::new("gsiftp", "gridftp-vm", format!("/d/in_{i}")),
                gridftp,
            );
        }
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let network = Network::with_seed(topo, StreamModel::default(), 1);
        let exec = WorkflowExecutor::new(
            &p,
            &site,
            network,
            Box::new(NoPolicyTransport::new(4)),
            ExecutorConfig::default(),
        );
        let (stats, _) = exec.run();
        (p, stats)
    }

    #[test]
    fn report_contains_all_sections() {
        let (plan, stats) = run_small();
        let text = render_report(&plan, &stats);
        assert!(text.contains("SUCCESS"));
        assert!(text.contains("transformation"));
        assert!(text.contains("work"));
        assert!(text.contains("staging:"));
        assert!(text.contains("transfer durations"));
        assert!(text.contains("goodput"));
        assert!(text.contains("scratch footprint"));
    }

    #[test]
    fn report_marks_failures() {
        let (plan, mut stats) = run_small();
        stats.success = false;
        stats.failed_jobs = 2;
        let text = render_report(&plan, &stats);
        assert!(text.contains("FAILED"));
        assert!(text.contains("failed 2"));
    }
}
