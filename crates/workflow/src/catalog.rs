//! Site and replica catalogs.
//!
//! Pegasus resolves an abstract workflow against a *site catalog* (where can
//! jobs run, what storage is attached) and a *replica catalog* (where do
//! logical files physically live). Ours are deliberately small: one compute
//! site with attached shared storage, plus any number of external data
//! sources.

use pwm_core::Url;
use pwm_net::HostId;
use std::collections::BTreeMap;

/// The compute site jobs execute on (the paper's Obelix cluster: 9 nodes of
/// 6 cores, NFS-attached storage on a 1 Gbit LAN).
#[derive(Debug, Clone)]
pub struct ComputeSite {
    /// Site name.
    pub name: String,
    /// Worker nodes.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// The shared-storage host (NFS server) files are staged to, as known to
    /// the network simulator.
    pub storage_host: HostId,
    /// Host name of the storage host as it appears in URLs.
    pub storage_host_name: String,
    /// Scratch directory files are staged into.
    pub scratch_dir: String,
}

impl ComputeSite {
    /// Total concurrent compute slots.
    pub fn slots(&self) -> u32 {
        self.nodes * self.cores_per_node
    }

    /// Destination URL for staging a logical file to this site's scratch
    /// space for workflow `wf`.
    pub fn scratch_url(&self, wf: &str, file: &str) -> Url {
        Url::new(
            "file",
            self.storage_host_name.clone(),
            format!("{}/{}/{}", self.scratch_dir, wf, file),
        )
    }
}

/// One physical location of a logical file.
#[derive(Debug, Clone)]
pub struct Replica {
    /// Where the file can be fetched from.
    pub url: Url,
    /// The network host serving it.
    pub host: HostId,
}

/// Maps logical files to their physical locations.
///
/// A file may have several replicas; planning uses the first registered
/// (the *preferred* replica) and the recovery machinery consults the rest
/// via [`ReplicaCatalog::replicas`] when the preferred copy is lost to a
/// host crash or quarantined after checksum failures.
#[derive(Debug, Clone, Default)]
pub struct ReplicaCatalog {
    entries: BTreeMap<String, Vec<Replica>>,
}

impl ReplicaCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a physical location of a logical file. Re-registering the
    /// same URL is a no-op; a new URL becomes an additional replica.
    pub fn insert(&mut self, file: impl Into<String>, url: Url, host: HostId) {
        let list = self.entries.entry(file.into()).or_default();
        if list.iter().all(|r| r.url != url) {
            list.push(Replica { url, host });
        }
    }

    /// Look up a file's preferred (first-registered) replica.
    pub fn lookup(&self, file: &str) -> Option<&Replica> {
        self.entries.get(file).and_then(|l| l.first())
    }

    /// All registered replicas of a file, in registration order.
    pub fn replicas(&self, file: &str) -> &[Replica] {
        self.entries.get(file).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no replicas are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Register many files served from one host under a base path.
    pub fn insert_bulk<'a>(
        &mut self,
        files: impl IntoIterator<Item = &'a str>,
        scheme: &str,
        host_name: &str,
        base_path: &str,
        host: HostId,
    ) {
        for file in files {
            self.insert(
                file,
                Url::new(scheme, host_name, format!("{base_path}/{file}")),
                host,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> ComputeSite {
        ComputeSite {
            name: "obelix".into(),
            nodes: 9,
            cores_per_node: 6,
            storage_host: HostId(2),
            storage_host_name: "obelix-nfs".into(),
            scratch_dir: "/scratch".into(),
        }
    }

    #[test]
    fn slots_multiply() {
        assert_eq!(site().slots(), 54);
    }

    #[test]
    fn scratch_url_is_namespaced_by_workflow() {
        let u = site().scratch_url("montage-run-1", "raw_007.fits");
        assert_eq!(
            u.to_string(),
            "file://obelix-nfs/scratch/montage-run-1/raw_007.fits"
        );
    }

    #[test]
    fn replica_lookup() {
        let mut rc = ReplicaCatalog::new();
        rc.insert(
            "raw.fits",
            Url::new("http", "apache-isi", "/montage/raw.fits"),
            HostId(1),
        );
        let r = rc.lookup("raw.fits").unwrap();
        assert_eq!(r.host, HostId(1));
        assert_eq!(r.url.scheme, "http");
        assert!(rc.lookup("missing").is_none());
    }

    #[test]
    fn multiple_replicas_accumulate_and_dedup_by_url() {
        let mut rc = ReplicaCatalog::new();
        rc.insert(
            "raw.fits",
            Url::new("gsiftp", "gridftp-vm", "/data/raw.fits"),
            HostId(0),
        );
        rc.insert(
            "raw.fits",
            Url::new("http", "apache-isi", "/montage/raw.fits"),
            HostId(1),
        );
        // Same URL again: no duplicate replica.
        rc.insert(
            "raw.fits",
            Url::new("gsiftp", "gridftp-vm", "/data/raw.fits"),
            HostId(0),
        );
        assert_eq!(rc.replicas("raw.fits").len(), 2);
        // Preferred replica is the first registered.
        assert_eq!(rc.lookup("raw.fits").unwrap().host, HostId(0));
        assert_eq!(rc.replicas("raw.fits")[1].host, HostId(1));
        assert!(rc.replicas("missing").is_empty());
    }

    #[test]
    fn bulk_insert_builds_urls() {
        let mut rc = ReplicaCatalog::new();
        rc.insert_bulk(
            ["a.dat", "b.dat"],
            "gsiftp",
            "gridftp-vm",
            "/data",
            HostId(0),
        );
        assert_eq!(rc.len(), 2);
        assert_eq!(
            rc.lookup("b.dat").unwrap().url.to_string(),
            "gsiftp://gridftp-vm/data/b.dat"
        );
    }
}
