//! The workflow planner.
//!
//! Turns an [`AbstractWorkflow`] into an [`ExecutablePlan`]: "during its
//! planning phase, Pegasus adds to the workflow data staging tasks that move
//! input data sets to resources where compute jobs will execute ... Since
//! storage, especially at computational sites, is finite, the workflow
//! management system also needs to remove data that are no longer needed for
//! upcoming computations" — i.e. stage-in jobs, stage-out jobs, and cleanup
//! jobs, with optional horizontal task clustering of the staging operations.

use crate::catalog::{ComputeSite, ReplicaCatalog};
use crate::dag::{AbstractWorkflow, JobIx, WorkflowError};
use pwm_core::{assign_priorities, PriorityAlgorithm, Url, WorkflowGraph};
use pwm_net::HostId;
use std::collections::{BTreeMap, HashMap};

/// Index of a job within an [`ExecutablePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanJobId(pub usize);

/// One file movement a staging job must perform.
#[derive(Debug, Clone)]
pub struct PlannedTransfer {
    /// Logical file name.
    pub file: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Source URL.
    pub source: Url,
    /// Destination URL.
    pub dest: Url,
    /// Source host in the network simulator.
    pub src_host: HostId,
    /// Destination host in the network simulator.
    pub dst_host: HostId,
}

/// What kind of work a plan job performs.
#[derive(Debug, Clone)]
pub enum PlanJobKind {
    /// Move input files to the compute site before a compute job runs.
    StageIn {
        /// Files to move, in catalog order.
        transfers: Vec<PlannedTransfer>,
        /// Cluster index at this job's level (clustering enabled only).
        cluster: Option<u32>,
    },
    /// Run an application executable.
    Compute {
        /// Transformation name.
        transformation: String,
        /// Mean runtime (seconds).
        runtime_s: f64,
        /// Total bytes of the files this job writes to site scratch.
        output_bytes: u64,
    },
    /// Move final outputs to permanent storage.
    StageOut {
        /// Files to move.
        transfers: Vec<PlannedTransfer>,
    },
    /// Delete files no longer needed from site scratch.
    Cleanup {
        /// Scratch URLs to delete, with their sizes (for the executor's
        /// scratch-space accounting).
        files: Vec<(Url, u64)>,
    },
}

impl PlanJobKind {
    /// True for stage-in/stage-out jobs (they occupy staging-job slots).
    pub fn is_staging(&self) -> bool {
        matches!(
            self,
            PlanJobKind::StageIn { .. } | PlanJobKind::StageOut { .. }
        )
    }
}

/// One node of the executable plan.
#[derive(Debug, Clone)]
pub struct PlanJob {
    /// Unique name ("stage_in_mProjectPP_0007").
    pub name: String,
    /// The work.
    pub kind: PlanJobKind,
    /// Jobs that must finish first.
    pub parents: Vec<PlanJobId>,
    /// Jobs waiting on this one.
    pub children: Vec<PlanJobId>,
    /// Structure-based priority (higher runs earlier among ready jobs).
    pub priority: i32,
    /// Topological level of the originating compute job (0 for roots).
    pub level: usize,
    /// Workflow identity presented to the policy service; `None` = use the
    /// executor's configured id (set by `merge_plans` for concurrent
    /// multi-workflow runs).
    pub workflow: Option<pwm_core::WorkflowId>,
}

/// The executable workflow produced by planning.
#[derive(Debug, Clone)]
pub struct ExecutablePlan {
    /// Workflow name.
    pub name: String,
    jobs: Vec<PlanJob>,
}

impl ExecutablePlan {
    /// Build a plan directly from a job list (programmatic construction and
    /// tests; `plan` is the normal entry point). Validates the DAG.
    pub fn from_jobs(name: impl Into<String>, jobs: Vec<PlanJob>) -> Result<Self, WorkflowError> {
        let plan = ExecutablePlan {
            name: name.into(),
            jobs,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// All jobs.
    pub fn jobs(&self) -> &[PlanJob] {
        &self.jobs
    }

    /// One job.
    pub fn job(&self, id: PlanJobId) -> &PlanJob {
        &self.jobs[id.0]
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the plan has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Count of jobs matching a predicate.
    pub fn count_jobs(&self, pred: impl Fn(&PlanJob) -> bool) -> usize {
        self.jobs.iter().filter(|j| pred(j)).count()
    }

    /// Number of stage-in jobs (the paper's "data staging jobs").
    pub fn stage_in_count(&self) -> usize {
        self.count_jobs(|j| matches!(j.kind, PlanJobKind::StageIn { .. }))
    }

    /// Verify the plan is a DAG with consistent parent/child lists.
    pub fn validate(&self) -> Result<(), WorkflowError> {
        let n = self.jobs.len();
        let mut indegree = vec![0usize; n];
        for (i, job) in self.jobs.iter().enumerate() {
            for p in &job.parents {
                assert!(
                    self.jobs[p.0].children.contains(&PlanJobId(i)),
                    "parent/child lists inconsistent"
                );
            }
            indegree[i] = job.parents.len();
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(j) = queue.pop() {
            seen += 1;
            for c in &self.jobs[j].children {
                indegree[c.0] -= 1;
                if indegree[c.0] == 0 {
                    queue.push(c.0);
                }
            }
        }
        if seen == n {
            Ok(())
        } else {
            Err(WorkflowError::Cycle)
        }
    }
}

/// Planner options.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// `None` → one stage-in job per compute job (the paper's experimental
    /// configuration: "no clustering (one stage-in job per compute job)").
    /// `Some(k)` → at most `k` stage-in jobs per workflow level, each
    /// serving a cluster of compute jobs.
    pub clustering_factor: Option<u32>,
    /// Insert cleanup jobs ("cleanup enabled" in the paper's setup).
    pub cleanup: bool,
    /// Insert stage-out jobs for final outputs.
    pub stage_out: bool,
    /// Where final outputs go (host name, network host, base path).
    pub output_site: Option<(String, HostId, String)>,
    /// Structure-based priority algorithm to annotate jobs with.
    pub priority: Option<PriorityAlgorithm>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            clustering_factor: None,
            cleanup: true,
            stage_out: false,
            output_site: None,
            priority: None,
        }
    }
}

/// Errors during planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The abstract workflow failed validation.
    Workflow(WorkflowError),
    /// An external input has no replica-catalog entry.
    NoReplica(String),
    /// Stage-out requested but no output site configured.
    NoOutputSite,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Workflow(e) => write!(f, "invalid workflow: {e}"),
            PlanError::NoReplica(file) => write!(f, "no replica for external input {file:?}"),
            PlanError::NoOutputSite => write!(f, "stage-out enabled but no output site"),
        }
    }
}
impl std::error::Error for PlanError {}

impl From<WorkflowError> for PlanError {
    fn from(e: WorkflowError) -> Self {
        PlanError::Workflow(e)
    }
}

/// Plan `workflow` to run on `site`, staging inputs per `replicas`.
pub fn plan(
    workflow: &AbstractWorkflow,
    site: &ComputeSite,
    replicas: &ReplicaCatalog,
    config: &PlannerConfig,
) -> Result<ExecutablePlan, PlanError> {
    let levels = workflow.validate()?;
    let producers = workflow.producers()?;
    let consumers = workflow.consumers();
    let edges = workflow.edges()?;

    let mut jobs: Vec<PlanJob> = Vec::new();
    let add_job = |jobs: &mut Vec<PlanJob>, job: PlanJob| -> PlanJobId {
        jobs.push(job);
        PlanJobId(jobs.len() - 1)
    };
    let link = |jobs: &mut Vec<PlanJob>, parent: PlanJobId, child: PlanJobId| {
        if !jobs[parent.0].children.contains(&child) {
            jobs[parent.0].children.push(child);
            jobs[child.0].parents.push(parent);
        }
    };

    // Optional structure-based priorities over the compute-job graph.
    let priorities: Vec<i32> = match config.priority {
        Some(algo) => {
            let mut g = WorkflowGraph::new(workflow.len());
            for (a, b) in &edges {
                g.add_edge(a.0, b.0);
            }
            assign_priorities(&g, algo)
        }
        None => vec![0; workflow.len()],
    };

    // 1. Compute jobs.
    let mut compute_ids: Vec<PlanJobId> = Vec::with_capacity(workflow.len());
    for (ix, a) in workflow.jobs().iter().enumerate() {
        let id = add_job(
            &mut jobs,
            PlanJob {
                name: a.name.clone(),
                kind: PlanJobKind::Compute {
                    transformation: a.transformation.clone(),
                    runtime_s: a.runtime_s,
                    output_bytes: a
                        .outputs
                        .iter()
                        .map(|f| workflow.file_size(f).unwrap_or(0))
                        .sum(),
                },
                parents: Vec::new(),
                children: Vec::new(),
                workflow: None,
                priority: priorities[ix],
                level: levels[ix],
            },
        );
        compute_ids.push(id);
    }
    for (a, b) in &edges {
        link(&mut jobs, compute_ids[a.0], compute_ids[b.0]);
    }

    // 2. Stage-in jobs. Build each compute job's external-input transfer
    // list, then either emit one stage-in job per compute job (no
    // clustering) or merge them per (level, cluster slot).
    let mut per_job_transfers: Vec<Vec<PlannedTransfer>> = vec![Vec::new(); workflow.len()];
    for (ix, a) in workflow.jobs().iter().enumerate() {
        for input in &a.inputs {
            if producers.contains_key(input.as_str()) {
                continue; // intermediate file: lives on shared scratch
            }
            let replica = replicas
                .lookup(input)
                .ok_or_else(|| PlanError::NoReplica(input.clone()))?;
            per_job_transfers[ix].push(PlannedTransfer {
                file: input.clone(),
                bytes: workflow.file_size(input).unwrap_or(0),
                source: replica.url.clone(),
                dest: site.scratch_url(&workflow.name, input),
                src_host: replica.host,
                dst_host: site.storage_host,
            });
        }
    }

    match config.clustering_factor {
        None => {
            for (ix, transfers) in per_job_transfers.iter().enumerate() {
                if transfers.is_empty() {
                    continue;
                }
                let id = add_job(
                    &mut jobs,
                    PlanJob {
                        name: format!("stage_in_{}", workflow.job(JobIx(ix)).name),
                        kind: PlanJobKind::StageIn {
                            transfers: transfers.clone(),
                            cluster: None,
                        },
                        parents: Vec::new(),
                        children: Vec::new(),
                        workflow: None,
                        priority: priorities[ix],
                        level: levels[ix],
                    },
                );
                link(&mut jobs, id, compute_ids[ix]);
            }
        }
        Some(k) => {
            let k = k.max(1);
            // Group compute jobs by level, then round-robin into k clusters.
            let mut by_level: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (ix, transfers) in per_job_transfers.iter().enumerate() {
                if !transfers.is_empty() {
                    by_level.entry(levels[ix]).or_default().push(ix);
                }
            }
            for (level, members) in by_level {
                let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k as usize];
                for (slot, ix) in members.into_iter().enumerate() {
                    clusters[slot % k as usize].push(ix);
                }
                for (c, member_jobs) in clusters.into_iter().enumerate() {
                    if member_jobs.is_empty() {
                        continue;
                    }
                    let transfers: Vec<PlannedTransfer> = member_jobs
                        .iter()
                        .flat_map(|&ix| per_job_transfers[ix].iter().cloned())
                        .collect();
                    let priority = member_jobs
                        .iter()
                        .map(|&ix| priorities[ix])
                        .max()
                        .unwrap_or(0);
                    let id = add_job(
                        &mut jobs,
                        PlanJob {
                            name: format!("stage_in_l{level}_c{c}"),
                            kind: PlanJobKind::StageIn {
                                transfers,
                                cluster: Some(c as u32),
                            },
                            parents: Vec::new(),
                            children: Vec::new(),
                            priority,
                            level,
                            workflow: None,
                        },
                    );
                    for &ix in &member_jobs {
                        link(&mut jobs, id, compute_ids[ix]);
                    }
                }
            }
        }
    }

    // 3. Stage-out jobs for final outputs.
    let mut stage_out_by_file: HashMap<String, PlanJobId> = HashMap::new();
    if config.stage_out {
        let (out_host_name, out_host, out_base) =
            config.output_site.clone().ok_or(PlanError::NoOutputSite)?;
        for file in workflow.final_outputs()? {
            let producer = producers[file.as_str()];
            let transfer = PlannedTransfer {
                file: file.clone(),
                bytes: workflow.file_size(&file).unwrap_or(0),
                source: site.scratch_url(&workflow.name, &file),
                dest: Url::new(
                    "gsiftp",
                    out_host_name.clone(),
                    format!("{out_base}/{file}"),
                ),
                src_host: site.storage_host,
                dst_host: out_host,
            };
            let id = add_job(
                &mut jobs,
                PlanJob {
                    name: format!("stage_out_{file}"),
                    kind: PlanJobKind::StageOut {
                        transfers: vec![transfer],
                    },
                    parents: Vec::new(),
                    children: Vec::new(),
                    workflow: None,
                    priority: 0,
                    level: levels[producer.0] + 1,
                },
            );
            link(&mut jobs, compute_ids[producer.0], id);
            stage_out_by_file.insert(file, id);
        }
    }

    // 4. Cleanup jobs: one per scratch file, dependent on every job that
    // reads the file (and on its producer when nothing reads it), so the
    // file is deleted as soon as "data are no longer needed for upcoming
    // computations".
    if config.cleanup {
        // Files on scratch: external inputs (staged in) + produced files.
        let mut scratch_files: Vec<String> = workflow.external_inputs()?.into_iter().collect();
        scratch_files.extend(producers.keys().map(|f| f.to_string()));
        scratch_files.sort();
        scratch_files.dedup();
        for file in scratch_files {
            let mut parents: Vec<PlanJobId> = Vec::new();
            if let Some(users) = consumers.get(file.as_str()) {
                parents.extend(users.iter().map(|ix| compute_ids[ix.0]));
            }
            if let Some(&producer) = producers.get(file.as_str()) {
                if parents.is_empty() {
                    parents.push(compute_ids[producer.0]);
                }
            }
            if let Some(&so) = stage_out_by_file.get(&file) {
                parents.push(so);
            }
            if parents.is_empty() {
                continue;
            }
            let level = parents.iter().map(|p| jobs[p.0].level).max().unwrap_or(0) + 1;
            let id = add_job(
                &mut jobs,
                PlanJob {
                    name: format!("cleanup_{file}"),
                    kind: PlanJobKind::Cleanup {
                        files: vec![(
                            site.scratch_url(&workflow.name, &file),
                            workflow.file_size(&file).unwrap_or(0),
                        )],
                    },
                    parents: Vec::new(),
                    children: Vec::new(),
                    workflow: None,
                    priority: i32::MIN / 2, // cleanups yield to real work
                    level,
                },
            );
            for p in std::mem::take(&mut jobs[id.0].parents) {
                // parents were never populated; use link for consistency
                let _ = p;
            }
            for p in parents {
                link(&mut jobs, p, id);
            }
        }
    }

    let plan = ExecutablePlan {
        name: workflow.name.clone(),
        jobs,
    };
    plan.validate()?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::AbstractJob;

    fn site() -> ComputeSite {
        ComputeSite {
            name: "obelix".into(),
            nodes: 9,
            cores_per_node: 6,
            storage_host: HostId(2),
            storage_host_name: "obelix-nfs".into(),
            scratch_dir: "/scratch".into(),
        }
    }

    fn job(name: &str, rt: f64, inputs: &[&str], outputs: &[&str]) -> AbstractJob {
        AbstractJob {
            name: name.into(),
            transformation: name.split('_').next().unwrap().into(),
            runtime_s: rt,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Two projections feeding one add: raw_0/raw_1 external, mosaic final.
    fn small_workflow() -> (AbstractWorkflow, ReplicaCatalog) {
        let mut wf = AbstractWorkflow::new("small");
        wf.add_job(job("proj_0", 5.0, &["raw_0"], &["p_0"]));
        wf.add_job(job("proj_1", 5.0, &["raw_1"], &["p_1"]));
        wf.add_job(job("add_0", 10.0, &["p_0", "p_1"], &["mosaic"]));
        for f in ["raw_0", "raw_1", "p_0", "p_1", "mosaic"] {
            wf.set_file_size(f, 2_000_000);
        }
        let mut rc = ReplicaCatalog::new();
        rc.insert_bulk(
            ["raw_0", "raw_1"],
            "http",
            "apache-isi",
            "/montage",
            HostId(1),
        );
        (wf, rc)
    }

    #[test]
    fn no_clustering_one_stage_in_per_compute_job_with_externals() {
        let (wf, rc) = small_workflow();
        let plan = plan(&wf, &site(), &rc, &PlannerConfig::default()).unwrap();
        // proj_0 and proj_1 have external inputs; add_0 does not.
        assert_eq!(plan.stage_in_count(), 2);
        // 3 compute + 2 stage-in + cleanups for raw_0, raw_1, p_0, p_1, mosaic.
        assert_eq!(
            plan.count_jobs(|j| matches!(j.kind, PlanJobKind::Cleanup { .. })),
            5
        );
        plan.validate().unwrap();
    }

    #[test]
    fn stage_in_precedes_its_compute_job() {
        let (wf, rc) = small_workflow();
        let plan = plan(&wf, &site(), &rc, &PlannerConfig::default()).unwrap();
        let si = plan
            .jobs()
            .iter()
            .position(|j| j.name == "stage_in_proj_0")
            .unwrap();
        let compute = plan.jobs().iter().position(|j| j.name == "proj_0").unwrap();
        assert!(plan
            .job(PlanJobId(si))
            .children
            .contains(&PlanJobId(compute)));
        assert!(plan
            .job(PlanJobId(compute))
            .parents
            .contains(&PlanJobId(si)));
    }

    #[test]
    fn cleanup_waits_for_all_consumers() {
        let (wf, rc) = small_workflow();
        let plan = plan(&wf, &site(), &rc, &PlannerConfig::default()).unwrap();
        let cleanup_p0 = plan
            .jobs()
            .iter()
            .find(|j| j.name == "cleanup_p_0")
            .unwrap();
        // p_0 is consumed only by add_0.
        assert_eq!(cleanup_p0.parents.len(), 1);
        let parent = &plan.job(cleanup_p0.parents[0]);
        assert_eq!(parent.name, "add_0");
    }

    #[test]
    fn cleanup_disabled_omits_cleanup_jobs() {
        let (wf, rc) = small_workflow();
        let cfg = PlannerConfig {
            cleanup: false,
            ..Default::default()
        };
        let plan = plan(&wf, &site(), &rc, &cfg).unwrap();
        assert_eq!(
            plan.count_jobs(|j| matches!(j.kind, PlanJobKind::Cleanup { .. })),
            0
        );
    }

    #[test]
    fn stage_out_added_for_final_outputs() {
        let (wf, rc) = small_workflow();
        let cfg = PlannerConfig {
            stage_out: true,
            output_site: Some(("archive".into(), HostId(0), "/results".into())),
            ..Default::default()
        };
        let plan = plan(&wf, &site(), &rc, &cfg).unwrap();
        let so = plan
            .jobs()
            .iter()
            .find(|j| matches!(j.kind, PlanJobKind::StageOut { .. }))
            .expect("stage-out job present");
        assert_eq!(so.name, "stage_out_mosaic");
        // The mosaic cleanup must wait for the stage-out.
        let cm = plan
            .jobs()
            .iter()
            .find(|j| j.name == "cleanup_mosaic")
            .unwrap();
        let parent_names: Vec<&str> = cm
            .parents
            .iter()
            .map(|p| plan.job(*p).name.as_str())
            .collect();
        assert!(parent_names.contains(&"stage_out_mosaic"));
    }

    #[test]
    fn stage_out_without_site_errors() {
        let (wf, rc) = small_workflow();
        let cfg = PlannerConfig {
            stage_out: true,
            output_site: None,
            ..Default::default()
        };
        assert_eq!(
            plan(&wf, &site(), &rc, &cfg).unwrap_err(),
            PlanError::NoOutputSite
        );
    }

    #[test]
    fn missing_replica_errors() {
        let (wf, _) = small_workflow();
        let empty = ReplicaCatalog::new();
        let err = plan(&wf, &site(), &empty, &PlannerConfig::default()).unwrap_err();
        assert_eq!(err, PlanError::NoReplica("raw_0".into()));
    }

    #[test]
    fn clustering_merges_stage_ins_per_level() {
        // 6 parallel compute jobs at level 0, clustering factor 2 → 2
        // stage-in jobs, each staging 3 files.
        let mut wf = AbstractWorkflow::new("wide");
        for i in 0..6 {
            wf.add_job(job(&format!("proj_{i}"), 5.0, &[&format!("raw_{i}")], &[]));
            wf.set_file_size(format!("raw_{i}"), 1_000);
        }
        let mut rc = ReplicaCatalog::new();
        let names: Vec<String> = (0..6).map(|i| format!("raw_{i}")).collect();
        rc.insert_bulk(
            names.iter().map(|s| s.as_str()),
            "gsiftp",
            "gridftp-vm",
            "/data",
            HostId(0),
        );
        let cfg = PlannerConfig {
            clustering_factor: Some(2),
            cleanup: false,
            ..Default::default()
        };
        let p = plan(&wf, &site(), &rc, &cfg).unwrap();
        assert_eq!(p.stage_in_count(), 2);
        for j in p.jobs() {
            if let PlanJobKind::StageIn { transfers, cluster } = &j.kind {
                assert_eq!(transfers.len(), 3);
                assert!(cluster.is_some());
            }
        }
    }

    #[test]
    fn clustering_factor_larger_than_level_width_degenerates() {
        let (wf, rc) = small_workflow();
        let cfg = PlannerConfig {
            clustering_factor: Some(50),
            cleanup: false,
            ..Default::default()
        };
        let p = plan(&wf, &site(), &rc, &cfg).unwrap();
        // Only 2 jobs with externals at level 0 → 2 stage-ins, not 50.
        assert_eq!(p.stage_in_count(), 2);
    }

    #[test]
    fn priorities_propagate_to_stage_in_jobs() {
        let (wf, rc) = small_workflow();
        let cfg = PlannerConfig {
            priority: Some(PriorityAlgorithm::Dependent),
            ..Default::default()
        };
        let p = plan(&wf, &site(), &rc, &cfg).unwrap();
        let si = p
            .jobs()
            .iter()
            .find(|j| j.name == "stage_in_proj_0")
            .unwrap();
        let add = p.jobs().iter().find(|j| j.name == "add_0").unwrap();
        // proj_0 has one descendant (add_0); add_0 has none: the stage-in of
        // a root job outranks the sink compute job.
        assert!(si.priority > add.priority);
    }

    #[test]
    fn intermediate_files_are_not_staged() {
        let (wf, rc) = small_workflow();
        let p = plan(&wf, &site(), &rc, &PlannerConfig::default()).unwrap();
        for j in p.jobs() {
            if let PlanJobKind::StageIn { transfers, .. } = &j.kind {
                for t in transfers {
                    assert!(t.file.starts_with("raw_"), "staged intermediate {}", t.file);
                }
            }
        }
    }

    #[test]
    fn plan_destinations_are_on_site_scratch() {
        let (wf, rc) = small_workflow();
        let p = plan(&wf, &site(), &rc, &PlannerConfig::default()).unwrap();
        for j in p.jobs() {
            if let PlanJobKind::StageIn { transfers, .. } = &j.kind {
                for t in transfers {
                    assert_eq!(t.dest.host, "obelix-nfs");
                    assert!(t.dest.path.starts_with("/scratch/small/"));
                    assert_eq!(t.dst_host, HostId(2));
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::catalog::{ComputeSite, ReplicaCatalog};
    use proptest::prelude::*;

    fn site() -> ComputeSite {
        ComputeSite {
            name: "s".into(),
            nodes: 2,
            cores_per_node: 2,
            storage_host: HostId(1),
            storage_host_name: "store".into(),
            scratch_dir: "/scratch".into(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Planning any random layered workflow yields a valid DAG in which
        /// every external input is staged exactly once per consuming job
        /// (no clustering) and every scratch file has exactly one cleanup.
        #[test]
        fn random_workflows_plan_consistently(
            levels in 1usize..4,
            width in 1usize..6,
            edge_prob in 0.0f64..1.0,
            seed in 0u64..500,
            clustering in proptest::option::of(1u32..5),
        ) {
            let wf = pwm_montage_free_random(levels, width, edge_prob, seed);
            let mut rc = ReplicaCatalog::new();
            for f in wf.external_inputs().unwrap() {
                rc.insert(
                    &f,
                    pwm_core::Url::new("gsiftp", "src", format!("/d/{f}")),
                    HostId(0),
                );
            }
            let cfg = PlannerConfig {
                clustering_factor: clustering,
                ..Default::default()
            };
            let p = plan(&wf, &site(), &rc, &cfg).unwrap();
            prop_assert!(p.validate().is_ok());

            // Every compute job appears exactly once.
            let compute = p.count_jobs(|j| matches!(j.kind, PlanJobKind::Compute { .. }));
            prop_assert_eq!(compute, wf.len());

            // Total planned transfers cover each (job, external input) pair
            // exactly once regardless of clustering.
            let producers = wf.producers().unwrap();
            let expected_transfers: usize = wf
                .jobs()
                .iter()
                .map(|j| {
                    j.inputs
                        .iter()
                        .filter(|f| !producers.contains_key(f.as_str()))
                        .count()
                })
                .sum();
            let planned: usize = p
                .jobs()
                .iter()
                .map(|j| match &j.kind {
                    PlanJobKind::StageIn { transfers, .. } => transfers.len(),
                    _ => 0,
                })
                .sum();
            prop_assert_eq!(planned, expected_transfers);

            // One cleanup per scratch file (external inputs + produced).
            let scratch_files = {
                let mut set: std::collections::BTreeSet<String> =
                    wf.external_inputs().unwrap().into_iter().collect();
                set.extend(producers.keys().map(|f| f.to_string()));
                set.len()
            };
            let cleanups = p.count_jobs(|j| matches!(j.kind, PlanJobKind::Cleanup { .. }));
            prop_assert_eq!(cleanups, scratch_files);
        }
    }

    /// Local random layered workflow builder (avoids a dev-dependency cycle
    /// with pwm-montage).
    fn pwm_montage_free_random(
        levels: usize,
        width: usize,
        edge_prob: f64,
        seed: u64,
    ) -> crate::dag::AbstractWorkflow {
        use crate::dag::{AbstractJob, AbstractWorkflow};
        use pwm_sim::SimRng;
        let mut rng = SimRng::for_component(seed, "planner-proptest");
        let mut wf = AbstractWorkflow::new(format!("rand-{levels}x{width}-{seed}"));
        for level in 0..levels {
            for slot in 0..width {
                let out = format!("out_{level}_{slot}");
                wf.set_file_size(&out, 1_000);
                let mut inputs = Vec::new();
                if level == 0 {
                    let ext = format!("ext_{slot}");
                    wf.set_file_size(&ext, 1_000_000);
                    inputs.push(ext);
                } else {
                    for ps in 0..width {
                        if rng.chance(edge_prob) {
                            inputs.push(format!("out_{}_{ps}", level - 1));
                        }
                    }
                    if inputs.is_empty() {
                        inputs.push(format!("out_{}_0", level - 1));
                    }
                }
                wf.add_job(AbstractJob {
                    name: format!("j_{level}_{slot}"),
                    transformation: "t".into(),
                    runtime_s: 1.0,
                    inputs,
                    outputs: vec![out],
                });
            }
        }
        wf
    }
}
