//! Concurrent multi-workflow execution.
//!
//! The Policy Service's stated goal is to balance "the data movement within
//! a workflow and across multiple concurrently executing workflows".
//! [`merge_plans`] composes several executable plans into one — each keeping
//! its own [`WorkflowId`] for policy purposes — so a single
//! [`crate::WorkflowExecutor`] runs them *interleaved* against one network
//! and one policy session: staging jobs from different workflows compete for
//! the same staging-slot window, host-pair thresholds, and staged-file
//! resources, exactly as in the paper's deployment.
//!
//! Note on in-flight sharing: as in the paper, a duplicate request that
//! arrives while the first copy is still transferring is skipped
//! ("transfers ... that are already in progress" are removed from the list).
//! The skipping workflow proceeds without waiting for the in-flight copy to
//! land — the original system has the same advisory semantics.

use crate::planner::{ExecutablePlan, PlanJob, PlanJobId};
use pwm_core::WorkflowId;

/// Merge several plans into one combined plan. Job `j` of input plan `i`
/// becomes job `offset_i + j`; names are prefixed with the plan's workflow
/// tag to stay unique; each job carries its originating [`WorkflowId`]
/// (`WorkflowId(base + i)`), which the executor presents to the Policy
/// Service instead of its own configured id.
pub fn merge_plans(plans: &[&ExecutablePlan], base_workflow_id: u64) -> ExecutablePlan {
    let mut jobs: Vec<PlanJob> = Vec::new();
    let mut offset = 0usize;
    for (i, plan) in plans.iter().enumerate() {
        let wf = WorkflowId(base_workflow_id + i as u64);
        for job in plan.jobs() {
            let mut job = job.clone();
            job.name = format!("wf{}:{}", wf.0, job.name);
            job.workflow = Some(wf);
            job.parents = job
                .parents
                .iter()
                .map(|p| PlanJobId(p.0 + offset))
                .collect();
            job.children = job
                .children
                .iter()
                .map(|c| PlanJobId(c.0 + offset))
                .collect();
            jobs.push(job);
        }
        offset += plan.len();
    }
    let name = plans
        .iter()
        .map(|p| p.name.as_str())
        .collect::<Vec<_>>()
        .join("+");
    ExecutablePlan::from_jobs(name, jobs).expect("merging DAGs preserves acyclicity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ComputeSite, ReplicaCatalog};
    use crate::dag::{AbstractJob, AbstractWorkflow};
    use crate::executor::{ExecutorConfig, WorkflowExecutor};
    use crate::planner::{plan, PlanJobKind, PlannerConfig};
    use pwm_core::transport::InProcessTransport;
    use pwm_core::{PolicyConfig, PolicyController, DEFAULT_SESSION};
    use pwm_net::{paper_testbed, HostId, Network, StreamModel};

    fn site(nfs: HostId) -> ComputeSite {
        ComputeSite {
            name: "obelix".into(),
            nodes: 9,
            cores_per_node: 6,
            storage_host: nfs,
            storage_host_name: "obelix-nfs".into(),
            scratch_dir: "/scratch".into(),
        }
    }

    /// A workflow whose external inputs are SHARED across instances (same
    /// logical names, same scratch destination).
    fn shared_input_workflow(tag: &str) -> AbstractWorkflow {
        // Same workflow *name* → same scratch namespace → shareable files;
        // job names differ per instance via `tag` only in outputs.
        let mut wf = AbstractWorkflow::new("shared-campaign");
        for i in 0..6 {
            wf.add_job(AbstractJob {
                name: format!("work_{tag}_{i}"),
                transformation: "work".into(),
                runtime_s: 3.0,
                inputs: vec![format!("common_{i}.dat")],
                outputs: vec![format!("out_{tag}_{i}")],
            });
            wf.set_file_size(format!("common_{i}.dat"), 30_000_000);
            wf.set_file_size(format!("out_{tag}_{i}"), 1_000);
        }
        wf
    }

    #[test]
    fn merge_remaps_dependencies_and_ids() {
        let (_topo, gridftp, _apache, nfs) = paper_testbed();
        let wf = shared_input_workflow("a");
        let mut rc = ReplicaCatalog::new();
        for i in 0..6 {
            rc.insert(
                format!("common_{i}.dat"),
                pwm_core::Url::new("gsiftp", "gridftp-vm", format!("/d/common_{i}.dat")),
                gridftp,
            );
        }
        let p = plan(&wf, &site(nfs), &rc, &PlannerConfig::default()).unwrap();
        let merged = merge_plans(&[&p, &p], 100);
        assert_eq!(merged.len(), p.len() * 2);
        merged.validate().unwrap();
        // Workflow ids assigned per sub-plan.
        let wf_ids: std::collections::BTreeSet<_> = merged
            .jobs()
            .iter()
            .filter_map(|j| j.workflow)
            .map(|w| w.0)
            .collect();
        assert_eq!(wf_ids, [100u64, 101].into_iter().collect());
        // Second copy's parents point into the second copy's range.
        for job in &merged.jobs()[p.len()..] {
            for parent in &job.parents {
                assert!(parent.0 >= p.len());
            }
        }
    }

    /// Two identical workflows running CONCURRENTLY against one policy
    /// session: the common input files cross the WAN once (the other
    /// workflow's duplicates are suppressed, in-flight or staged), and
    /// cleanup happens only after the last user.
    #[test]
    fn concurrent_workflows_share_in_flight_staging() {
        let (topo, gridftp, _apache, nfs) = paper_testbed();
        let site = site(nfs);
        let wf_a = shared_input_workflow("a");
        let wf_b = shared_input_workflow("b");
        let mut rc = ReplicaCatalog::new();
        for i in 0..6 {
            rc.insert(
                format!("common_{i}.dat"),
                pwm_core::Url::new("gsiftp", "gridftp-vm", format!("/d/common_{i}.dat")),
                gridftp,
            );
        }
        // Disable per-file cleanup jobs in A's plan so B can share even when
        // it trails far behind; keep them in B (last user cleans up).
        let no_cleanup = PlannerConfig {
            cleanup: false,
            ..Default::default()
        };
        let pa = plan(&wf_a, &site, &rc, &no_cleanup).unwrap();
        let pb = plan(&wf_b, &site, &rc, &no_cleanup).unwrap();
        let merged = merge_plans(&[&pa, &pb], 500);

        let controller = PolicyController::new(
            PolicyConfig::default()
                .with_default_streams(8)
                .with_threshold(50),
        );
        let transport = Box::new(InProcessTransport::new(controller.clone(), DEFAULT_SESSION));
        let network = Network::with_seed(topo, StreamModel::default(), 7);
        let exec = WorkflowExecutor::new(
            &merged,
            &site,
            network,
            transport,
            ExecutorConfig::default(),
        );
        let (stats, _net) = exec.run();
        assert!(stats.success);
        // 12 stage-in jobs submitted 12 transfers for 6 distinct files: six
        // crossed the WAN, six were suppressed (in flight or staged).
        assert_eq!(stats.transfers_skipped, 6, "one skip per shared file");
        assert!(
            stats.bytes_staged < 6.5 * 30.0e6,
            "shared files staged once ({} bytes)",
            stats.bytes_staged
        );
        let service_stats = controller.stats(DEFAULT_SESSION).unwrap();
        assert_eq!(service_stats.transfers_executed, 6);
        assert_eq!(service_stats.transfers_suppressed, 6);
    }

    #[test]
    fn merged_plans_respect_the_shared_staging_limit() {
        // Two workflows × 15 staging jobs, limit 20: the combined run must
        // never exceed 20 concurrent staging jobs → WAN peak ≤ 20 × 4.
        let (topo, gridftp, _apache, nfs) = paper_testbed();
        let site = site(nfs);
        let make = |tag: &str| {
            let mut wf = AbstractWorkflow::new(format!("limit-{tag}"));
            for i in 0..15 {
                wf.add_job(AbstractJob {
                    name: format!("w_{tag}_{i}"),
                    transformation: "w".into(),
                    runtime_s: 1.0,
                    inputs: vec![format!("in_{tag}_{i}")],
                    outputs: vec![format!("out_{tag}_{i}")],
                });
                wf.set_file_size(format!("in_{tag}_{i}"), 20_000_000);
                wf.set_file_size(format!("out_{tag}_{i}"), 1);
            }
            let mut rc = ReplicaCatalog::new();
            for i in 0..15 {
                rc.insert(
                    format!("in_{tag}_{i}"),
                    pwm_core::Url::new("gsiftp", "gridftp-vm", format!("/d/in_{tag}_{i}")),
                    gridftp,
                );
            }
            plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap()
        };
        let pa = make("a");
        let pb = make("b");
        let merged = merge_plans(&[&pa, &pb], 0);
        assert_eq!(
            merged.count_jobs(|j| matches!(j.kind, PlanJobKind::StageIn { .. })),
            30
        );
        let controller = PolicyController::new(
            PolicyConfig::default()
                .with_default_streams(4)
                .with_threshold(1_000_000),
        );
        let transport = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));
        let (topo2, _, _, _) = paper_testbed();
        let wan = topo2
            .links()
            .find(|(_, l)| l.name == "wan-tacc-isi")
            .map(|(id, _)| id);
        drop(topo);
        let network = Network::with_seed(topo2, StreamModel::default(), 7);
        let cfg = ExecutorConfig {
            watch_link: wan,
            ..Default::default()
        };
        let exec = WorkflowExecutor::new(&merged, &site, network, transport, cfg);
        let (stats, _net) = exec.run();
        assert!(stats.success);
        let peak = stats.peak_wan_streams.unwrap();
        assert!(peak <= 80, "peak {peak} exceeds 20 jobs × 4 streams");
    }
}
