//! Abstract workflow DAGs.
//!
//! The scientist-facing representation (Pegasus' DAX): compute jobs that
//! consume and produce logical files, with data dependencies derived from
//! producer/consumer relations. The planner (see [`crate::planner`]) turns
//! this into an executable plan with staging and cleanup jobs.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Index of a job within an [`AbstractWorkflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobIx(pub usize);

/// One compute job in the abstract workflow.
#[derive(Debug, Clone)]
pub struct AbstractJob {
    /// Unique job name ("mProjectPP_0007").
    pub name: String,
    /// Transformation (executable) name ("mProjectPP").
    pub transformation: String,
    /// Mean runtime in seconds on one core; the executor adds jitter.
    pub runtime_s: f64,
    /// Logical files read.
    pub inputs: Vec<String>,
    /// Logical files written.
    pub outputs: Vec<String>,
}

/// Validation failures for an abstract workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// Two jobs claim to produce the same file.
    DuplicateProducer(String),
    /// Dependencies form a cycle.
    Cycle,
    /// A file has no recorded size.
    MissingSize(String),
    /// Two jobs share a name.
    DuplicateJobName(String),
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::DuplicateProducer(file) => {
                write!(f, "file {file:?} has more than one producer")
            }
            WorkflowError::Cycle => write!(f, "workflow dependencies form a cycle"),
            WorkflowError::MissingSize(file) => write!(f, "file {file:?} has no size"),
            WorkflowError::DuplicateJobName(name) => write!(f, "duplicate job name {name:?}"),
        }
    }
}
impl std::error::Error for WorkflowError {}

/// An abstract (resource-independent) workflow.
#[derive(Debug, Clone, Default)]
pub struct AbstractWorkflow {
    /// Workflow name ("montage-1deg").
    pub name: String,
    jobs: Vec<AbstractJob>,
    file_sizes: BTreeMap<String, u64>,
}

impl AbstractWorkflow {
    /// An empty workflow with a name.
    pub fn new(name: impl Into<String>) -> Self {
        AbstractWorkflow {
            name: name.into(),
            jobs: Vec::new(),
            file_sizes: BTreeMap::new(),
        }
    }

    /// Add a job; returns its index.
    pub fn add_job(&mut self, job: AbstractJob) -> JobIx {
        self.jobs.push(job);
        JobIx(self.jobs.len() - 1)
    }

    /// Record a logical file's size in bytes.
    pub fn set_file_size(&mut self, file: impl Into<String>, bytes: u64) {
        self.file_sizes.insert(file.into(), bytes);
    }

    /// Size of a file, if known.
    pub fn file_size(&self, file: &str) -> Option<u64> {
        self.file_sizes.get(file).copied()
    }

    /// All jobs in index order.
    pub fn jobs(&self) -> &[AbstractJob] {
        &self.jobs
    }

    /// One job.
    pub fn job(&self, ix: JobIx) -> &AbstractJob {
        &self.jobs[ix.0]
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True for the empty workflow.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Map from file name to the job producing it.
    pub fn producers(&self) -> Result<HashMap<&str, JobIx>, WorkflowError> {
        let mut map: HashMap<&str, JobIx> = HashMap::new();
        for (ix, job) in self.jobs.iter().enumerate() {
            for out in &job.outputs {
                if map.insert(out.as_str(), JobIx(ix)).is_some() {
                    return Err(WorkflowError::DuplicateProducer(out.clone()));
                }
            }
        }
        Ok(map)
    }

    /// Map from file name to the jobs consuming it, in job order.
    pub fn consumers(&self) -> HashMap<&str, Vec<JobIx>> {
        let mut map: HashMap<&str, Vec<JobIx>> = HashMap::new();
        for (ix, job) in self.jobs.iter().enumerate() {
            for input in &job.inputs {
                map.entry(input.as_str()).or_default().push(JobIx(ix));
            }
        }
        map
    }

    /// Files consumed by some job but produced by none — these must be
    /// staged in from external storage.
    pub fn external_inputs(&self) -> Result<BTreeSet<String>, WorkflowError> {
        let producers = self.producers()?;
        let mut externals = BTreeSet::new();
        for job in &self.jobs {
            for input in &job.inputs {
                if !producers.contains_key(input.as_str()) {
                    externals.insert(input.clone());
                }
            }
        }
        Ok(externals)
    }

    /// Files produced by some job and consumed by none — workflow outputs
    /// to be staged out.
    pub fn final_outputs(&self) -> Result<BTreeSet<String>, WorkflowError> {
        let producers = self.producers()?;
        let consumers = self.consumers();
        Ok(producers
            .keys()
            .filter(|f| !consumers.contains_key(**f))
            .map(|f| f.to_string())
            .collect())
    }

    /// Data-dependency edges `(producer, consumer)` derived from files.
    pub fn edges(&self) -> Result<Vec<(JobIx, JobIx)>, WorkflowError> {
        let producers = self.producers()?;
        let mut edges = Vec::new();
        for (ix, job) in self.jobs.iter().enumerate() {
            for input in &job.inputs {
                if let Some(&producer) = producers.get(input.as_str()) {
                    if producer != JobIx(ix) {
                        edges.push((producer, JobIx(ix)));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Ok(edges)
    }

    /// Validate: unique job names, unique producers, sizes for every file,
    /// and acyclic dependencies. Returns the topological level of each job
    /// (roots at level 0) on success.
    pub fn validate(&self) -> Result<Vec<usize>, WorkflowError> {
        let mut names = BTreeSet::new();
        for job in &self.jobs {
            if !names.insert(job.name.as_str()) {
                return Err(WorkflowError::DuplicateJobName(job.name.clone()));
            }
            for f in job.inputs.iter().chain(&job.outputs) {
                if !self.file_sizes.contains_key(f) {
                    return Err(WorkflowError::MissingSize(f.clone()));
                }
            }
        }
        self.levels()
    }

    /// Topological levels (longest path from any root). `Err(Cycle)` if the
    /// dependency graph is cyclic.
    pub fn levels(&self) -> Result<Vec<usize>, WorkflowError> {
        let edges = self.edges()?;
        let n = self.jobs.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        for (a, b) in &edges {
            children[a.0].push(b.0);
            indegree[b.0] += 1;
        }
        let mut level = vec![0usize; n];
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut visited = 0;
        while let Some(j) = queue.pop_front() {
            visited += 1;
            for &c in &children[j] {
                level[c] = level[c].max(level[j] + 1);
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push_back(c);
                }
            }
        }
        if visited == n {
            Ok(level)
        } else {
            Err(WorkflowError::Cycle)
        }
    }

    /// Total bytes of external input files.
    pub fn external_input_bytes(&self) -> Result<u64, WorkflowError> {
        Ok(self
            .external_inputs()?
            .iter()
            .map(|f| self.file_size(f).unwrap_or(0))
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, inputs: &[&str], outputs: &[&str]) -> AbstractJob {
        AbstractJob {
            name: name.into(),
            transformation: name.split('_').next().unwrap_or(name).into(),
            runtime_s: 5.0,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// raw.fits → project → proj.fits → add → mosaic.fits
    fn pipeline() -> AbstractWorkflow {
        let mut wf = AbstractWorkflow::new("pipeline");
        wf.add_job(job("project_1", &["raw.fits"], &["proj.fits"]));
        wf.add_job(job("add_1", &["proj.fits"], &["mosaic.fits"]));
        for f in ["raw.fits", "proj.fits", "mosaic.fits"] {
            wf.set_file_size(f, 2_000_000);
        }
        wf
    }

    #[test]
    fn external_inputs_and_final_outputs() {
        let wf = pipeline();
        let ext: Vec<String> = wf.external_inputs().unwrap().into_iter().collect();
        assert_eq!(ext, vec!["raw.fits"]);
        let fin: Vec<String> = wf.final_outputs().unwrap().into_iter().collect();
        assert_eq!(fin, vec!["mosaic.fits"]);
    }

    #[test]
    fn edges_follow_files() {
        let wf = pipeline();
        assert_eq!(wf.edges().unwrap(), vec![(JobIx(0), JobIx(1))]);
    }

    #[test]
    fn levels_are_longest_paths() {
        let mut wf = pipeline();
        // A second root that feeds add_1 directly: add_1 stays at level 1...
        wf.add_job(job("fit_1", &["raw2.fits"], &["fit.tbl"]));
        wf.set_file_size("raw2.fits", 1);
        wf.set_file_size("fit.tbl", 1);
        let levels = wf.validate().unwrap();
        assert_eq!(levels[0], 0);
        assert_eq!(levels[1], 1);
        assert_eq!(levels[2], 0);
    }

    #[test]
    fn diamond_levels() {
        let mut wf = AbstractWorkflow::new("diamond");
        wf.add_job(job("a", &["in"], &["x"]));
        wf.add_job(job("b", &["x"], &["y1"]));
        wf.add_job(job("c", &["x"], &["y2"]));
        wf.add_job(job("d", &["y1", "y2"], &["out"]));
        for f in ["in", "x", "y1", "y2", "out"] {
            wf.set_file_size(f, 1);
        }
        let levels = wf.validate().unwrap();
        assert_eq!(levels, vec![0, 1, 1, 2]);
    }

    #[test]
    fn duplicate_producer_rejected() {
        let mut wf = AbstractWorkflow::new("bad");
        wf.add_job(job("a", &[], &["f"]));
        wf.add_job(job("b", &[], &["f"]));
        wf.set_file_size("f", 1);
        assert_eq!(
            wf.validate().unwrap_err(),
            WorkflowError::DuplicateProducer("f".into())
        );
    }

    #[test]
    fn duplicate_job_name_rejected() {
        let mut wf = AbstractWorkflow::new("bad");
        wf.add_job(job("a", &[], &["f"]));
        wf.add_job(job("a", &["f"], &[]));
        wf.set_file_size("f", 1);
        assert_eq!(
            wf.validate().unwrap_err(),
            WorkflowError::DuplicateJobName("a".into())
        );
    }

    #[test]
    fn missing_size_rejected() {
        let mut wf = AbstractWorkflow::new("bad");
        wf.add_job(job("a", &["ghost"], &[]));
        assert_eq!(
            wf.validate().unwrap_err(),
            WorkflowError::MissingSize("ghost".into())
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut wf = AbstractWorkflow::new("bad");
        wf.add_job(job("a", &["y"], &["x"]));
        wf.add_job(job("b", &["x"], &["y"]));
        wf.set_file_size("x", 1);
        wf.set_file_size("y", 1);
        assert_eq!(wf.levels().unwrap_err(), WorkflowError::Cycle);
    }

    #[test]
    fn consumers_lists_all_users() {
        let mut wf = AbstractWorkflow::new("shared");
        wf.add_job(job("a", &[], &["x"]));
        wf.add_job(job("b", &["x"], &[]));
        wf.add_job(job("c", &["x"], &[]));
        wf.set_file_size("x", 1);
        let consumers = wf.consumers();
        assert_eq!(consumers["x"], vec![JobIx(1), JobIx(2)]);
    }

    #[test]
    fn external_input_bytes_sums_sizes() {
        let mut wf = pipeline();
        wf.add_job(job("extra", &["big.dat"], &[]));
        wf.set_file_size("big.dat", 500_000_000);
        assert_eq!(wf.external_input_bytes().unwrap(), 502_000_000);
    }

    #[test]
    fn self_loop_file_does_not_create_edge() {
        // A job that reads and writes the same file (in-place update) must
        // not self-depend... the producer map sees it, edges() filters it.
        let mut wf = AbstractWorkflow::new("inplace");
        wf.add_job(job("a", &["f"], &["f"]));
        wf.set_file_size("f", 1);
        assert!(wf.edges().unwrap().is_empty());
    }
}
