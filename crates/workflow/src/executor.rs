//! The workflow execution engine.
//!
//! A DAGMan-like scheduler running an [`ExecutablePlan`] against the
//! `pwm-net` network simulator, with the paper's experimental controls:
//!
//! * a **staging-job limit** ("a local job limit of 20, so that at most 20
//!   data staging jobs will be released at once"),
//! * **retries** ("five retries on failure per job") driven by injected
//!   transfer failures,
//! * compute slots from the site catalog (Obelix: 9 nodes × 6 cores),
//! * the **Pegasus Transfer Tool** behaviour: each staging job sends its
//!   transfer list to the Policy Service, receives a modified list, executes
//!   the approved transfers *serially* in the advised order, and reports
//!   completions — paying a modeled callout latency per round-trip, since
//!   "having Pegasus call out to an external service ... incurs overheads
//!   for the service calls",
//! * cleanup jobs that consult the service the same way.

use crate::catalog::ComputeSite;
use crate::planner::{ExecutablePlan, PlanJobKind, PlannedTransfer};
use crate::recovery::{Checkpoint, CrashTarget, RecoveryConfig, RecoveryReport};
use crate::stats::RunStats;
use pwm_core::chaos::SharedSimClock;
use pwm_core::transport::PolicyTransport;
use pwm_core::{
    CleanupOutcome, CleanupSpec, ClusterId, HealthEvent, SuppressReason, TransferAction,
    TransferAdvice, TransferOutcome, TransferSpec, WorkflowId,
};
use pwm_net::{FlowSpec, LinkId, Network};
use pwm_obs::{Obs, SpanId};
use pwm_sim::{DynQueue, QueueKind, SimDuration, SimQueue, SimRng, SimTime, Trace};
use pwm_storage::{BackendSpec, CostMeter, StorageLayer};
use std::collections::{BinaryHeap, HashMap};

/// Wiring between policy backend advice and an installed [`StorageLayer`]:
/// resolves advised backend names to store hosts, charges each backend's
/// per-request setup on the flow, and meters the run in dollars.
///
/// Build the layer with [`StorageLayer::install`] on the topology *before*
/// constructing the [`Network`], then hand the layer here.
#[derive(Debug, Clone)]
pub struct StorageRuntime {
    layer: StorageLayer,
    meter: CostMeter,
}

impl StorageRuntime {
    /// Meter the backends of `layer`, starting the residency clock at zero.
    pub fn new(layer: StorageLayer) -> Self {
        let specs: Vec<BackendSpec> = layer.backends().map(|b| b.spec.clone()).collect();
        let meter = CostMeter::new(&specs);
        StorageRuntime { layer, meter }
    }

    /// The installed layer (host/link/spec per backend).
    pub fn layer(&self) -> &StorageLayer {
        &self.layer
    }
}

/// A staged flow redirected to a storage backend, keyed by flow tag until
/// the network reports completion.
#[derive(Debug, Clone)]
struct StagedFlow {
    backend: String,
    bytes: u64,
    /// Destination URL string — the key cleanup jobs will delete by.
    dest: String,
}

/// Executor tunables.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Master seed for runtime jitter and failure injection.
    pub seed: u64,
    /// Max staging (stage-in/stage-out) jobs in flight — the paper's local
    /// job limit of 20.
    pub staging_job_limit: usize,
    /// Transfer retry budget per staging job — the paper's 5.
    pub retries: u32,
    /// Multiplicative jitter applied to compute runtimes (±fraction).
    pub runtime_jitter: f64,
    /// One policy-service REST round-trip.
    pub policy_call_latency: SimDuration,
    /// Staging-job startup overhead (scheduling + transfer-tool init); this
    /// is the per-job overhead that task clustering amortizes (paper Fig. 2).
    pub job_init_overhead: SimDuration,
    /// Gap between serial transfers within one staging job.
    pub inter_transfer_gap: SimDuration,
    /// Duration of a cleanup job's file deletions.
    pub cleanup_duration: SimDuration,
    /// Probability an executed transfer fails (failure injection).
    pub transfer_failure_prob: f64,
    /// Probability a *failed* transfer is fatal (non-transient: a missing
    /// source file, a permission error). Fatal failures are not retried —
    /// the staging job reports `Failed` immediately.
    pub fatal_failure_prob: f64,
    /// Streams per transfer when the executor falls back to executing its
    /// submitted list because the policy service is unreachable. The
    /// paper's fail-safe used 1; chaos scenarios set this to the site's
    /// default streams so an outage degrades to default-stream advice.
    pub fallback_streams: u32,
    /// First retry's extra delay (beyond the policy round-trip).
    pub retry_backoff_base: SimDuration,
    /// Multiplier applied to the backoff per additional attempt.
    pub retry_backoff_factor: f64,
    /// Upper bound on the exponential backoff delay.
    pub retry_backoff_cap: SimDuration,
    /// Multiplicative seeded jitter (±fraction) on each backoff delay, so
    /// retry storms decorrelate without losing determinism.
    pub retry_jitter: f64,
    /// When set, the executor publishes its virtual clock here each
    /// scheduling step, so time-windowed fault injectors (e.g.
    /// `pwm_core::chaos::ChaosTransport`) deep in the transport chain see
    /// the current simulation time.
    pub clock: Option<SharedSimClock>,
    /// Workflow identity presented to the policy service.
    pub workflow_id: WorkflowId,
    /// Link whose peak concurrent streams are reported in the run stats
    /// (the WAN bottleneck for the Table IV cross-check).
    pub watch_link: Option<LinkId>,
    /// Also record a utilization timeline on `watch_link` (retrieve it from
    /// the returned [`Network`] after the run).
    pub watch_timeline: bool,
    /// Max concurrent cleanup jobs (DAGMan category throttle); `None` =
    /// unlimited, matching Pegasus' default cleanup category.
    pub cleanup_job_limit: Option<usize>,
    /// Policy-aware storage staging. When set, transfer advice carrying a
    /// backend name redirects the staged flow to that backend's store host
    /// (paying its per-request overhead as extra connection setup) and the
    /// run's storage dollars are metered into [`RunStats::storage`]. `None`
    /// leaves every flow byte-identical to the pre-storage-layer executor.
    pub storage: Option<StorageRuntime>,
    /// Observability sinks. When set, the executor emits job / advice-RPC /
    /// transfer / retry-backoff spans onto the tracer (all timestamps are
    /// sim time, so same-seed runs export identical traces), publishes job
    /// lifecycle counters, and attaches the same handle to the network so
    /// flow spans nest under their transfer spans.
    pub obs: Option<Obs>,
    /// Pending-event structure for the executor's own timers (job
    /// completions, backoffs). Both kinds are exact-order, so runs are
    /// bit-identical either way; this is a benchmarking/validation knob.
    pub queue: QueueKind,
    /// The recovery plane: fault schedules, the integrity model, and the
    /// re-planning knobs (see [`crate::recovery`]). `None` — or an inert
    /// config — leaves the event stream byte-identical to a build without
    /// the plane.
    pub recovery: Option<RecoveryConfig>,
    /// Modeled wall time for a producer re-run when corruption survives
    /// with no clean replica (the regenerated file's next read is clean).
    pub producer_rerun_delay: SimDuration,
    /// Stop the run loop once virtual time would pass this instant and
    /// return a [`Checkpoint`] of the completed-job frontier (crash-resume
    /// experiments drive this; `None` runs to completion).
    pub halt_at: Option<SimTime>,
    /// Resume from a prior run's [`Checkpoint`]: jobs named there start as
    /// `Done` (their children's dependencies count them satisfied) instead
    /// of re-running. Partially staged files are deduplicated by the Policy
    /// Service's `AlreadyStaged` advice when the same controller is reused.
    pub resume_from: Option<Checkpoint>,
    /// Order ready cleanup jobs by the $/GB·h of the backends their files
    /// occupy (priciest residency evicted first) instead of plan priority
    /// alone. Only meaningful with a storage runtime attached.
    pub cleanup_price_order: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            seed: 0,
            staging_job_limit: 20,
            retries: 5,
            runtime_jitter: 0.15,
            policy_call_latency: SimDuration::from_millis(150),
            job_init_overhead: SimDuration::from_secs(2),
            inter_transfer_gap: SimDuration::from_millis(100),
            cleanup_duration: SimDuration::from_millis(500),
            transfer_failure_prob: 0.0,
            fatal_failure_prob: 0.0,
            fallback_streams: 1,
            retry_backoff_base: SimDuration::from_millis(500),
            retry_backoff_factor: 2.0,
            retry_backoff_cap: SimDuration::from_secs(30),
            retry_jitter: 0.1,
            clock: None,
            workflow_id: WorkflowId(0),
            watch_link: None,
            watch_timeline: false,
            cleanup_job_limit: None,
            storage: None,
            obs: None,
            queue: QueueKind::default(),
            recovery: None,
            producer_rerun_delay: SimDuration::from_secs(30),
            halt_at: None,
            resume_from: None,
            cleanup_price_order: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Waiting,
    Ready,
    Running,
    Done,
    Failed,
    /// A (transitive) parent failed; the job will never run.
    Abandoned,
}

#[derive(Debug)]
enum Ev {
    /// Staging job finished its init overhead → issue the policy callout.
    StagingInit(usize),
    /// Policy advice arrives → begin executing transfers.
    StagingAdvice(usize),
    /// Inter-transfer gap elapsed → start the next approved transfer.
    TransferStart(usize),
    /// Re-evaluate a failed transfer with the policy service.
    RetryEvaluate(usize),
    /// Compute job finishes. The epoch invalidates completions of attempts
    /// killed by a node crash: a stale epoch means the attempt died and its
    /// completion must be ignored.
    ComputeDone(usize, u32),
    /// A scheduled crash fires (index into `RecoveryConfig::crashes`).
    CrashStart(usize),
    /// The crashed target restarts.
    CrashEnd(usize),
    /// A storage-backend outage begins (index into
    /// `RecoveryConfig::backend_outages`).
    OutageStart(usize),
    /// The backend recovers.
    OutageEnd(usize),
    /// Cleanup advice arrives → perform deletions.
    CleanupAdvice(usize),
    /// Cleanup deletions done → report and finish.
    CleanupWorkDone(usize),
    /// Final callout (completion report) done → job complete.
    JobFinish(usize),
}

struct StagingRun {
    /// Specs submitted, aligned with the planned transfer list.
    specs: Vec<TransferSpec>,
    /// Map (source, dest) → planned transfer index, for advice → flow
    /// resolution.
    by_urls: HashMap<(String, String), usize>,
    advice: Vec<TransferAdvice>,
    next_advice: usize,
    outcomes: Vec<TransferOutcome>,
    attempts_left: u32,
    skipped: usize,
    /// Advice index awaiting re-evaluation after a failure.
    retrying: Option<usize>,
    /// Times each advice entry's transfer was actually executed (drives the
    /// integrity model's per-attempt independence and corruption backoff).
    exec_attempts: HashMap<usize, u32>,
    /// Replica-failover source overrides: spec index → network host of the
    /// alternate replica (the spec's URL is rewritten alongside).
    src_hosts: HashMap<usize, pwm_net::HostId>,
}

/// Priority-ordered ready queue: (priority desc, id asc).
#[derive(Default)]
struct ReadyQueue {
    heap: BinaryHeap<(i32, std::cmp::Reverse<usize>)>,
}

impl ReadyQueue {
    fn push(&mut self, priority: i32, id: usize) {
        self.heap.push((priority, std::cmp::Reverse(id)));
    }
    fn pop(&mut self) -> Option<usize> {
        self.heap.pop().map(|(_, std::cmp::Reverse(id))| id)
    }
}

/// The engine. Construct with [`WorkflowExecutor::new`], then call
/// [`WorkflowExecutor::run`].
pub struct WorkflowExecutor<'p> {
    plan: &'p ExecutablePlan,
    config: ExecutorConfig,
    transport: Box<dyn PolicyTransport>,
    network: Network,
    events: DynQueue<Ev>,
    now: SimTime,
    rng: SimRng,
    trace: Trace,

    state: Vec<JobState>,
    pending_parents: Vec<usize>,
    ready_compute: ReadyQueue,
    ready_staging: ReadyQueue,
    ready_cleanup: ReadyQueue,
    compute_slots_free: u32,
    staging_in_flight: usize,
    cleanup_in_flight: usize,
    staging_runs: HashMap<usize, StagingRun>,
    cleanup_advice: HashMap<usize, Vec<pwm_core::CleanupAdvice>>,
    /// Completion reports the transport failed to deliver, queued for
    /// resend at the next policy interaction (resync on reconnect).
    pending_transfer_reports: Vec<TransferOutcome>,
    /// Cleanup reports queued the same way.
    pending_cleanup_reports: Vec<CleanupOutcome>,
    /// flow tag → (job, advice index)
    flow_owner: HashMap<u64, (usize, usize)>,
    next_tag: u64,
    /// flow tag → backend redirection in flight.
    storage_flows: HashMap<u64, StagedFlow>,
    /// dest URL → (backend, bytes) for files resident on a backend, so
    /// cleanup jobs can end their residency in the cost meter.
    staged_on_backend: HashMap<String, (String, u64)>,

    // recovery plane (all empty/untouched when `rec_active` is false)
    /// True when `config.recovery` is present and not inert — the single
    /// gate on every recovery branch, so inert configs cost nothing.
    rec_active: bool,
    recovery: RecoveryReport,
    /// Per-compute-job attempt epoch; bumped when a node crash kills the
    /// running attempt so the stale `ComputeDone` is ignored.
    compute_epoch: Vec<u32>,
    /// Compute jobs killed by crash `i`, re-queued when the node restarts.
    crash_requeue: HashMap<usize, Vec<usize>>,
    /// Host name → scheduled restart instant, while the host is down.
    down_hosts: HashMap<String, SimTime>,
    /// Checksum strikes per (source host, source path).
    strikes: HashMap<(String, String), u32>,
    /// Producer-re-run generation per logical file (generation > 0 reads
    /// clean).
    file_generation: HashMap<String, u32>,
    cores_per_node: u32,
    /// Set when `halt_at` stopped the loop before the DAG finished.
    halted: bool,

    // observability bookkeeping (all None/empty without config.obs)
    job_spans: Vec<Option<SpanId>>,
    /// flow tag → transfer span.
    transfer_spans: HashMap<u64, SpanId>,
    /// job → when its in-flight policy callout was issued.
    rpc_started: HashMap<usize, SimTime>,

    // stats accumulation
    stats_transfers: Vec<pwm_net::TransferRecord>,
    bytes_staged: f64,
    transfers_skipped: usize,
    transfer_retries: u64,
    policy_calls: u64,
    compute_core_seconds: f64,
    jobs_done: usize,
    jobs_failed: usize,
    jobs_abandoned: usize,
    staging_jobs_run: usize,
    cleanup_jobs_run: usize,
    scratch_bytes: f64,
    peak_scratch_bytes: f64,
}

impl<'p> WorkflowExecutor<'p> {
    /// Build an executor for `plan` on `site`, moving data over `network`
    /// and consulting the policy service via `transport`.
    pub fn new(
        plan: &'p ExecutablePlan,
        site: &ComputeSite,
        network: Network,
        transport: Box<dyn PolicyTransport>,
        config: ExecutorConfig,
    ) -> Self {
        let n = plan.len();
        let rng = SimRng::for_component(config.seed, "executor");
        let mut network = network;
        if config.watch_timeline {
            if let Some(link) = config.watch_link {
                network.watch_link(link);
            }
        }
        let mut config = config;
        if let Some(obs) = &config.obs {
            // Share the tracer with the network so flow spans can nest
            // under the executor's transfer spans.
            network.set_obs(obs.clone());
            if let Some(storage) = &mut config.storage {
                storage.meter.attach_obs(obs);
            }
        }
        let mut exec = WorkflowExecutor {
            plan,
            transport,
            network,
            events: DynQueue::new(config.queue),
            now: SimTime::ZERO,
            rng,
            trace: Trace::default(),
            state: vec![JobState::Waiting; n],
            pending_parents: plan.jobs().iter().map(|j| j.parents.len()).collect(),
            ready_compute: ReadyQueue::default(),
            ready_staging: ReadyQueue::default(),
            ready_cleanup: ReadyQueue::default(),
            compute_slots_free: site.slots(),
            staging_in_flight: 0,
            cleanup_in_flight: 0,
            staging_runs: HashMap::new(),
            cleanup_advice: HashMap::new(),
            pending_transfer_reports: Vec::new(),
            pending_cleanup_reports: Vec::new(),
            flow_owner: HashMap::new(),
            next_tag: 0,
            storage_flows: HashMap::new(),
            staged_on_backend: HashMap::new(),
            rec_active: false,
            recovery: RecoveryReport::default(),
            compute_epoch: vec![0; n],
            crash_requeue: HashMap::new(),
            down_hosts: HashMap::new(),
            strikes: HashMap::new(),
            file_generation: HashMap::new(),
            cores_per_node: site.cores_per_node,
            halted: false,
            job_spans: vec![None; n],
            transfer_spans: HashMap::new(),
            rpc_started: HashMap::new(),
            stats_transfers: Vec::new(),
            bytes_staged: 0.0,
            transfers_skipped: 0,
            transfer_retries: 0,
            policy_calls: 0,
            compute_core_seconds: 0.0,
            jobs_done: 0,
            jobs_failed: 0,
            jobs_abandoned: 0,
            staging_jobs_run: 0,
            cleanup_jobs_run: 0,
            scratch_bytes: 0.0,
            peak_scratch_bytes: 0.0,
            config,
        };
        if let Some(clock) = &exec.config.clock {
            clock.set(SimTime::ZERO);
        }
        exec.rec_active = exec.config.recovery.as_ref().is_some_and(|r| !r.is_inert());
        if exec.rec_active {
            // Fault windows become plain events: the loop's time driver
            // delivers them in order with everything else, so two same-seed
            // runs see identical interleavings.
            let rec = exec.config.recovery.as_ref().expect("recovery config");
            let crash_times: Vec<(SimTime, SimTime)> =
                rec.crashes.iter().map(|c| (c.at, c.up_at())).collect();
            let outage_times: Vec<(SimTime, SimTime)> = rec
                .backend_outages
                .iter()
                .map(|o| (o.from, o.up_at()))
                .collect();
            for (i, (start, end)) in crash_times.into_iter().enumerate() {
                exec.events.schedule_at(start, Ev::CrashStart(i));
                exec.events.schedule_at(end, Ev::CrashEnd(i));
            }
            for (i, (start, end)) in outage_times.into_iter().enumerate() {
                exec.events.schedule_at(start, Ev::OutageStart(i));
                exec.events.schedule_at(end, Ev::OutageEnd(i));
            }
        }
        // Resume: jobs completed before the halt start as Done, so only the
        // unfinished frontier re-runs.
        if let Some(cp) = exec.config.resume_from.clone() {
            let done: std::collections::HashSet<&str> =
                cp.completed_jobs.iter().map(String::as_str).collect();
            for i in 0..n {
                if done.contains(exec.plan.jobs()[i].name.as_str()) {
                    exec.state[i] = JobState::Done;
                    exec.jobs_done += 1;
                    for child in exec.plan.jobs()[i].children.clone() {
                        exec.pending_parents[child.0] -= 1;
                    }
                }
            }
        }
        for i in 0..n {
            if exec.pending_parents[i] == 0 && exec.state[i] == JobState::Waiting {
                exec.mark_ready(i);
            }
        }
        exec
    }

    /// Run to completion; returns the statistics and the network (for
    /// post-run inspection of link peaks and ledgers).
    pub fn run(self) -> (RunStats, Network) {
        let (stats, network, _trace) = self.run_traced();
        (stats, network)
    }

    /// Like [`WorkflowExecutor::run`], additionally returning the lifecycle
    /// trace (job starts/finishes, transfer events, retries, fallbacks).
    pub fn run_traced(self) -> (RunStats, Network, Trace) {
        let (stats, network, trace, _cp) = self.run_impl();
        (stats, network, trace)
    }

    /// Like [`WorkflowExecutor::run_traced`], additionally returning the
    /// [`Checkpoint`] of the completed-job frontier — the resume token when
    /// [`ExecutorConfig::halt_at`] stopped the run mid-DAG (and simply the
    /// full job list when it ran to completion).
    pub fn run_checkpointed(self) -> (RunStats, Network, Checkpoint) {
        let (stats, network, _trace, cp) = self.run_impl();
        (stats, network, cp)
    }

    fn run_impl(mut self) -> (RunStats, Network, Trace, Checkpoint) {
        let total = self.plan.len();
        loop {
            // With fault events scheduled past the DAG's completion, the
            // loop must not sit out a dangling restart window: once every
            // job is terminal nothing can change.
            if self.rec_active && self.jobs_done + self.jobs_failed + self.jobs_abandoned == total {
                break;
            }
            self.schedule_ready();
            let tq = self.events.peek_time();
            let tn = self.network.next_wakeup();
            let t = match (tq, tn) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if let Some(halt) = self.config.halt_at {
                if t > halt {
                    self.now = halt;
                    self.halted = true;
                    break;
                }
            }
            self.now = t;
            if let Some(clock) = &self.config.clock {
                clock.set(t);
            }
            self.network.advance(t);
            self.drain_network_completions();
            if let Some((_, ev)) = self.events.pop_until(t) {
                self.handle_event(ev);
            }
        }

        let finished = self.jobs_done + self.jobs_failed + self.jobs_abandoned;
        debug_assert!(
            finished == total || self.halted,
            "executor stalled with jobs outstanding"
        );
        let checkpoint = Checkpoint {
            completed_jobs: (0..total)
                .filter(|&i| self.state[i] == JobState::Done)
                .map(|i| self.plan.jobs()[i].name.clone())
                .collect(),
            taken_at: self.now,
        };
        let storage = self
            .config
            .storage
            .as_mut()
            .map(|rt| rt.meter.report(self.now));
        let stats = RunStats {
            makespan: self.now.since(SimTime::ZERO),
            success: self.jobs_failed == 0 && self.jobs_abandoned == 0 && finished == total,
            compute_jobs: self
                .plan
                .count_jobs(|j| matches!(j.kind, PlanJobKind::Compute { .. })),
            staging_jobs: self.staging_jobs_run,
            cleanup_jobs: self.cleanup_jobs_run,
            bytes_staged: self.bytes_staged,
            transfers: std::mem::take(&mut self.stats_transfers),
            transfers_skipped: self.transfers_skipped,
            transfer_retries: self.transfer_retries,
            failed_jobs: self.jobs_failed,
            policy_calls: self.policy_calls,
            compute_core_seconds: self.compute_core_seconds,
            peak_wan_streams: self.config.watch_link.map(|l| self.network.peak_streams(l)),
            peak_scratch_bytes: self.peak_scratch_bytes,
            final_scratch_bytes: self.scratch_bytes,
            finished_at: self.now,
            storage,
            recovery: self.rec_active.then(|| std::mem::take(&mut self.recovery)),
        };
        (stats, self.network, self.trace, checkpoint)
    }

    /// The job's kind as a metric label / trace category value.
    fn job_kind(&self, job: usize) -> &'static str {
        match self.plan.jobs()[job].kind {
            PlanJobKind::Compute { .. } => "compute",
            PlanJobKind::StageIn { .. } => "stage_in",
            PlanJobKind::StageOut { .. } => "stage_out",
            PlanJobKind::Cleanup { .. } => "cleanup",
        }
    }

    /// Open the job's lifecycle trace span (no-op without observability).
    fn open_job_span(&mut self, job: usize) {
        let Some(obs) = &self.config.obs else { return };
        let id = obs.tracer.start_span(
            self.plan.jobs()[job].name.clone(),
            self.job_kind(job),
            None,
            self.now,
        );
        self.job_spans[job] = Some(id);
    }

    /// Close the job's span and count its terminal state.
    fn close_job_span(&mut self, job: usize, state: &str) {
        let Some(obs) = &self.config.obs else { return };
        if let Some(id) = self.job_spans[job].take() {
            obs.tracer.span_arg(id, "state", state);
            obs.tracer.end_span(id, self.now);
        }
        obs.registry
            .counter(
                "pwm_workflow_jobs_total",
                "Jobs reaching a terminal state, by kind and state",
                &[("kind", self.job_kind(job)), ("state", state)],
            )
            .inc();
    }

    /// Count one policy-service callout.
    fn note_policy_call(&mut self) {
        self.policy_calls += 1;
        if let Some(obs) = &self.config.obs {
            obs.registry
                .counter(
                    "pwm_workflow_policy_calls_total",
                    "Policy-service callouts issued by the executor",
                    &[],
                )
                .inc();
        }
    }

    /// Record the advice round-trip that just landed as a span under the
    /// job's span (no-op without observability or a recorded callout start).
    fn close_rpc_span(&mut self, job: usize, name: &'static str) {
        let Some(obs) = &self.config.obs else { return };
        if let Some(started) = self.rpc_started.remove(&job) {
            obs.tracer.complete_span(
                name,
                "policy_rpc",
                self.job_spans[job],
                started,
                self.now,
                &[("job", self.plan.jobs()[job].name.clone())],
            );
        }
    }

    /// Count a fail-safe fallback (policy service unreachable) and mark it
    /// on the trace.
    fn note_fallback(&mut self, job: usize) {
        let Some(obs) = &self.config.obs else { return };
        obs.registry
            .counter(
                "pwm_workflow_policy_fallbacks_total",
                "Callouts answered by the fail-safe fallback because the service was unreachable",
                &[],
            )
            .inc();
        obs.tracer.instant(
            "policy_fallback",
            "policy_rpc",
            self.now,
            &[("job", self.plan.jobs()[job].name.clone())],
        );
    }

    fn mark_ready(&mut self, job: usize) {
        debug_assert_eq!(self.state[job], JobState::Waiting);
        self.state[job] = JobState::Ready;
        let priority = self.plan.job(crate::planner::PlanJobId(job)).priority;
        match self.plan.jobs()[job].kind {
            PlanJobKind::Compute { .. } => self.ready_compute.push(priority, job),
            PlanJobKind::StageIn { .. } | PlanJobKind::StageOut { .. } => {
                self.ready_staging.push(priority, job)
            }
            PlanJobKind::Cleanup { ref files } => {
                let mut priority = priority;
                if self.config.cleanup_price_order {
                    if let Some(rt) = &self.config.storage {
                        priority = priority.saturating_add(cleanup_price_boost(
                            files.iter().map(|(u, _)| u.to_string()),
                            |dest| {
                                self.staged_on_backend.get(dest).and_then(|(backend, _)| {
                                    rt.layer.backend(backend).map(|b| b.spec.cost.per_gb_hour)
                                })
                            },
                        ));
                    }
                }
                self.ready_cleanup.push(priority, job)
            }
        }
    }

    fn schedule_ready(&mut self) {
        // Compute jobs take cores.
        while self.compute_slots_free > 0 {
            let Some(job) = self.ready_compute.pop() else {
                break;
            };
            self.compute_slots_free -= 1;
            self.state[job] = JobState::Running;
            self.open_job_span(job);
            self.trace.info(
                self.now,
                "executor",
                format!("compute job {} started", self.plan.jobs()[job].name),
            );
            let (runtime_s, output_bytes) = match &self.plan.jobs()[job].kind {
                PlanJobKind::Compute {
                    runtime_s,
                    output_bytes,
                    ..
                } => (*runtime_s, *output_bytes),
                _ => unreachable!("compute queue held a non-compute job"),
            };
            // Outputs land on scratch while the job runs; account at start
            // (conservative for peak usage).
            self.grow_scratch(output_bytes as f64);
            let actual = runtime_s * self.rng.jitter(self.config.runtime_jitter);
            self.compute_core_seconds += actual;
            self.events.schedule_at(
                self.now + SimDuration::from_secs_f64(actual),
                Ev::ComputeDone(job, self.compute_epoch[job]),
            );
        }
        // Staging jobs respect the local job limit.
        while self.staging_in_flight < self.config.staging_job_limit {
            let Some(job) = self.ready_staging.pop() else {
                break;
            };
            self.staging_in_flight += 1;
            self.state[job] = JobState::Running;
            self.open_job_span(job);
            self.staging_jobs_run += 1;
            self.trace.info(
                self.now,
                "executor",
                format!("staging job {} released", self.plan.jobs()[job].name),
            );
            self.events.schedule_at(
                self.now + self.config.job_init_overhead,
                Ev::StagingInit(job),
            );
        }
        // Cleanup jobs are lightweight local jobs, optionally throttled by a
        // DAGMan-style category limit.
        loop {
            if let Some(limit) = self.config.cleanup_job_limit {
                if self.cleanup_in_flight >= limit {
                    break;
                }
            }
            let Some(job) = self.ready_cleanup.pop() else {
                break;
            };
            self.cleanup_in_flight += 1;
            self.state[job] = JobState::Running;
            self.open_job_span(job);
            self.cleanup_jobs_run += 1;
            self.rpc_started.insert(job, self.now);
            self.events.schedule_at(
                self.now + self.config.policy_call_latency,
                Ev::CleanupAdvice(job),
            );
        }
    }

    fn handle_event(&mut self, ev: Ev) {
        match ev {
            Ev::StagingInit(job) => {
                let transfers = self.planned_transfers(job);
                let cluster = match &self.plan.jobs()[job].kind {
                    PlanJobKind::StageIn { cluster, .. } => *cluster,
                    _ => None,
                };
                let priority = self.plan.jobs()[job].priority;
                let workflow = self.plan.jobs()[job]
                    .workflow
                    .unwrap_or(self.config.workflow_id);
                let specs: Vec<TransferSpec> = transfers
                    .iter()
                    .map(|pt| TransferSpec {
                        source: pt.source.clone(),
                        dest: pt.dest.clone(),
                        bytes: pt.bytes,
                        requested_streams: None,
                        workflow,
                        cluster: cluster.map(ClusterId),
                        priority: Some(priority),
                    })
                    .collect();
                let by_urls: HashMap<(String, String), usize> = transfers
                    .iter()
                    .enumerate()
                    .map(|(i, pt)| ((pt.source.to_string(), pt.dest.to_string()), i))
                    .collect();
                self.staging_runs.insert(
                    job,
                    StagingRun {
                        specs,
                        by_urls,
                        advice: Vec::new(),
                        next_advice: 0,
                        outcomes: Vec::new(),
                        attempts_left: self.config.retries,
                        skipped: 0,
                        retrying: None,
                        exec_attempts: HashMap::new(),
                        src_hosts: HashMap::new(),
                    },
                );
                // The callout happens now; the advice lands after a
                // round-trip.
                self.rpc_started.insert(job, self.now);
                self.events.schedule_at(
                    self.now + self.config.policy_call_latency,
                    Ev::StagingAdvice(job),
                );
            }
            Ev::StagingAdvice(job) => {
                self.note_policy_call();
                self.close_rpc_span(job, "advice_rpc");
                let run = self.staging_runs.get_mut(&job).expect("staging run state");
                let specs = run.specs.clone();
                self.flush_pending_reports();
                match self.transport.evaluate_transfers(specs) {
                    Ok(advice) => {
                        let run = self.staging_runs.get_mut(&job).expect("staging run state");
                        run.advice = advice;
                    }
                    Err(_) => {
                        // Policy service unreachable: fall back to executing
                        // the submitted list as-is with the configured
                        // default stream count (fail-safe, not fail-stop).
                        self.note_fallback(job);
                        let streams = self.config.fallback_streams.max(1);
                        self.trace.warn(
                            self.now,
                            "ptt",
                            format!(
                                "policy service unreachable for job {}; executing submitted list \
                                 with {} stream(s)",
                                self.plan.jobs()[job].name,
                                streams
                            ),
                        );
                        let run = self.staging_runs.get_mut(&job).expect("staging run state");
                        run.advice = run
                            .specs
                            .iter()
                            .enumerate()
                            .map(|(i, s)| TransferAdvice {
                                id: pwm_core::TransferId(u64::MAX - i as u64),
                                source: s.source.clone(),
                                dest: s.dest.clone(),
                                action: pwm_core::TransferAction::Execute,
                                streams,
                                group: pwm_core::GroupId(0),
                                order: i as u32,
                                backend: None,
                            })
                            .collect();
                    }
                }
                self.start_next_transfer(job);
            }
            Ev::TransferStart(job) => self.start_next_transfer(job),
            Ev::RetryEvaluate(job) => {
                // The job may have failed fatally while this retry was in
                // flight; its run state is gone and there is nothing to do.
                let Some(run) = self.staging_runs.get_mut(&job) else {
                    return;
                };
                let Some(advice_ix) = run.retrying.take() else {
                    return;
                };
                let prior = run.advice[advice_ix].clone();
                let key = (prior.source.to_string(), prior.dest.to_string());
                let spec_ix = run.by_urls[&key];
                let spec = run.specs[spec_ix].clone();
                self.note_policy_call();
                self.flush_pending_reports();
                match self.transport.evaluate_transfers(vec![spec]) {
                    Ok(mut advice) if !advice.is_empty() => {
                        let fresh = advice.remove(0);
                        let run = self.staging_runs.get_mut(&job).expect("staging run state");
                        run.advice[advice_ix] = fresh;
                        run.next_advice = advice_ix;
                    }
                    _ => {
                        // Keep the old advice; re-execute as-is.
                        let run = self.staging_runs.get_mut(&job).expect("staging run state");
                        run.next_advice = advice_ix;
                    }
                }
                self.start_next_transfer(job);
            }
            Ev::ComputeDone(job, epoch) => {
                // A stale epoch means a node crash killed this attempt; the
                // job re-queues when the node restarts.
                if epoch != self.compute_epoch[job] {
                    return;
                }
                self.compute_slots_free += 1;
                self.finish_job(job);
            }
            Ev::CrashStart(i) => self.on_crash_start(i),
            Ev::CrashEnd(i) => self.on_crash_end(i),
            Ev::OutageStart(i) => self.on_outage_start(i),
            Ev::OutageEnd(i) => self.on_outage_end(i),
            Ev::CleanupAdvice(job) => {
                self.note_policy_call();
                self.close_rpc_span(job, "cleanup_rpc");
                let files = match &self.plan.jobs()[job].kind {
                    PlanJobKind::Cleanup { files } => files.clone(),
                    _ => unreachable!("cleanup event for non-cleanup job"),
                };
                let workflow = self.plan.jobs()[job]
                    .workflow
                    .unwrap_or(self.config.workflow_id);
                let specs: Vec<CleanupSpec> = files
                    .into_iter()
                    .map(|(file, _bytes)| CleanupSpec { file, workflow })
                    .collect();
                self.flush_pending_reports();
                let advice = match self.transport.evaluate_cleanups(specs.clone()) {
                    Ok(advice) => advice,
                    Err(_) => {
                        self.note_fallback(job);
                        // Policy service unreachable: delete the submitted
                        // list as-is. Fail-safe mirrors the staging path —
                        // scratch must drain even during an outage; the
                        // worst case is deleting a file another workflow
                        // could have reused (a lost optimization, never a
                        // correctness issue).
                        self.trace.warn(
                            self.now,
                            "ptt",
                            format!(
                                "policy service unreachable for cleanup {}; deleting submitted list",
                                self.plan.jobs()[job].name
                            ),
                        );
                        specs
                            .iter()
                            .enumerate()
                            .map(|(i, s)| pwm_core::CleanupAdvice {
                                id: pwm_core::CleanupId(u64::MAX - i as u64),
                                file: s.file.clone(),
                                action: pwm_core::CleanupAction::Execute,
                            })
                            .collect()
                    }
                };
                let any_work = advice.iter().any(|a| a.should_execute());
                self.cleanup_advice.insert(job, advice);
                let delay = if any_work {
                    self.config.cleanup_duration
                } else {
                    SimDuration::ZERO
                };
                self.events
                    .schedule_at(self.now + delay, Ev::CleanupWorkDone(job));
            }
            Ev::CleanupWorkDone(job) => {
                let advice = self.cleanup_advice.remove(&job).unwrap_or_default();
                // Free scratch space for the files actually deleted.
                if let PlanJobKind::Cleanup { files } = &self.plan.jobs()[job].kind {
                    let mut freed = 0.0;
                    for a in advice.iter().filter(|a| a.should_execute()) {
                        if let Some((_, bytes)) = files.iter().find(|(f, _)| *f == a.file) {
                            freed += *bytes as f64;
                        }
                    }
                    self.scratch_bytes = (self.scratch_bytes - freed).max(0.0);
                }
                // Deleted files stop accruing residency dollars.
                for a in advice.iter().filter(|a| a.should_execute()) {
                    if let Some((backend, bytes)) =
                        self.staged_on_backend.remove(&a.file.to_string())
                    {
                        if let Some(storage) = self.config.storage.as_mut() {
                            storage.meter.on_delete(&backend, bytes, self.now);
                        }
                    }
                }
                let outcomes: Vec<CleanupOutcome> = advice
                    .iter()
                    .filter(|a| a.should_execute())
                    .map(|a| CleanupOutcome {
                        id: a.id,
                        success: true,
                    })
                    .collect();
                if !outcomes.is_empty() {
                    self.note_policy_call();
                    self.report_cleanups_or_queue(outcomes);
                }
                self.events.schedule_at(
                    self.now + self.config.policy_call_latency,
                    Ev::JobFinish(job),
                );
            }
            Ev::JobFinish(job) => {
                match self.plan.jobs()[job].kind {
                    PlanJobKind::StageIn { .. } | PlanJobKind::StageOut { .. } => {
                        self.staging_in_flight -= 1;
                        self.staging_runs.remove(&job);
                    }
                    PlanJobKind::Cleanup { .. } => {
                        self.cleanup_in_flight -= 1;
                    }
                    PlanJobKind::Compute { .. } => {}
                }
                self.finish_job(job);
            }
        }
    }

    // ------------------------------------------------------------------
    // Recovery plane
    // ------------------------------------------------------------------

    /// Deliver health observations to the Policy Service (policy-guided
    /// mode only; naive-retry runs never report). Transport errors are
    /// swallowed — health reporting is advisory, never load-bearing.
    fn report_health_events(&mut self, events: Vec<HealthEvent>) {
        let guided = self
            .config
            .recovery
            .as_ref()
            .is_some_and(|r| r.report_health);
        if !guided {
            return;
        }
        self.recovery.health_reports += 1;
        let _ = self.transport.report_health(events);
    }

    fn on_crash_start(&mut self, i: usize) {
        let crash = self
            .config
            .recovery
            .as_ref()
            .expect("recovery config")
            .crashes[i]
            .clone();
        self.recovery.host_crashes += 1;
        match crash.target {
            CrashTarget::ComputeNode(node) => {
                // The node's cores die with whatever was running on them:
                // pick victims deterministically (lowest job id first).
                let cores = self.cores_per_node as usize;
                let victims: Vec<usize> = (0..self.plan.len())
                    .filter(|&j| {
                        self.state[j] == JobState::Running
                            && matches!(self.plan.jobs()[j].kind, PlanJobKind::Compute { .. })
                    })
                    .take(cores)
                    .collect();
                self.trace.warn(
                    self.now,
                    "recovery",
                    format!(
                        "compute node {node} crashed; {} running job(s) killed",
                        victims.len()
                    ),
                );
                for &j in &victims {
                    self.compute_epoch[j] += 1;
                    // The attempt is gone but its core stays dead (slot not
                    // freed) until the node restarts.
                    self.state[j] = JobState::Ready;
                    self.recovery.compute_reruns += 1;
                }
                self.crash_requeue.insert(i, victims);
            }
            CrashTarget::Host { host, name } => {
                let up_at = crash.at + crash.restart_after;
                self.trace.warn(
                    self.now,
                    "recovery",
                    format!("host {name} crashed; flows endpointed there are dead"),
                );
                self.down_hosts.insert(name.clone(), up_at);
                self.kill_flows_at(host);
                self.report_health_events(vec![HealthEvent::HostDown { host: name }]);
            }
        }
    }

    fn on_crash_end(&mut self, i: usize) {
        let crash = self
            .config
            .recovery
            .as_ref()
            .expect("recovery config")
            .crashes[i]
            .clone();
        match crash.target {
            CrashTarget::ComputeNode(node) => {
                for j in self.crash_requeue.remove(&i).unwrap_or_default() {
                    self.compute_slots_free += 1;
                    let priority = self.plan.jobs()[j].priority;
                    self.ready_compute.push(priority, j);
                }
                self.trace.info(
                    self.now,
                    "recovery",
                    format!("compute node {node} restarted; killed jobs re-queued"),
                );
            }
            CrashTarget::Host { name, .. } => {
                self.down_hosts.remove(&name);
                self.trace
                    .info(self.now, "recovery", format!("host {name} restarted"));
                self.report_health_events(vec![HealthEvent::HostUp { host: name }]);
            }
        }
    }

    fn on_outage_start(&mut self, i: usize) {
        let outage = self
            .config
            .recovery
            .as_ref()
            .expect("recovery config")
            .backend_outages[i]
            .clone();
        self.recovery.backend_outages += 1;
        self.trace.warn(
            self.now,
            "recovery",
            format!("storage backend {} went down", outage.backend),
        );
        // Policy-guided: kill the doomed flows now and let re-planning
        // steer them to a live backend; the BackendDown fact removes the
        // backend from the selection candidates. Naive: flows stall on the
        // downed access link until the window ends.
        let guided = self
            .config
            .recovery
            .as_ref()
            .is_some_and(|r| r.report_health);
        if guided {
            self.kill_flows_at(outage.host);
            self.report_health_events(vec![HealthEvent::BackendDown {
                backend: outage.backend,
            }]);
        }
    }

    fn on_outage_end(&mut self, i: usize) {
        let outage = self
            .config
            .recovery
            .as_ref()
            .expect("recovery config")
            .backend_outages[i]
            .clone();
        self.trace.info(
            self.now,
            "recovery",
            format!("storage backend {} recovered", outage.backend),
        );
        self.report_health_events(vec![HealthEvent::BackendUp {
            backend: outage.backend,
        }]);
    }

    /// Kill every flow endpointed at `host` and route each victim into the
    /// transfer-failure path (no retry budget consumed — infrastructure
    /// faults are not the transfer's fault).
    fn kill_flows_at(&mut self, host: pwm_net::HostId) {
        let killed = self.network.kill_flows_touching(self.now, host);
        for k in killed {
            self.recovery.flows_killed += 1;
            let Some((job, advice_ix)) = self.flow_owner.remove(&k.tag) else {
                continue;
            };
            self.storage_flows.remove(&k.tag);
            if let Some(obs) = &self.config.obs {
                if let Some(span) = self.transfer_spans.remove(&k.tag) {
                    obs.tracer.span_arg(span, "result", "killed");
                    obs.tracer.end_span(span, self.now);
                }
            }
            self.infra_transfer_failure(job, advice_ix, "killed by host fault");
        }
    }

    /// A transfer died to infrastructure (killed flow / corrupt read):
    /// report the failure so the service clears its in-progress entry, then
    /// schedule a re-evaluation. Unlike injected transient failures this
    /// consumes no retry budget and draws no randomness.
    fn infra_transfer_failure(&mut self, job: usize, advice_ix: usize, why: &str) {
        let Some(run) = self.staging_runs.get(&job) else {
            return;
        };
        let advice_id = run.advice[advice_ix].id;
        self.trace.warn(
            self.now,
            "recovery",
            format!(
                "transfer of job {} {why}; re-planning",
                self.plan.jobs()[job].name
            ),
        );
        self.note_policy_call();
        self.report_transfers_or_queue(vec![TransferOutcome {
            id: advice_id,
            success: false,
        }]);
        let run = self.staging_runs.get_mut(&job).expect("staging run state");
        run.retrying = Some(advice_ix);
        let delay = self.config.policy_call_latency + self.config.retry_backoff_base;
        self.events
            .schedule_at(self.now + delay, Ev::RetryEvaluate(job));
    }

    /// True when `(host, path)` has accumulated enough checksum strikes to
    /// be quarantined locally.
    fn is_quarantined(&self, host: &str, path: &str) -> bool {
        let threshold = self
            .config
            .recovery
            .as_ref()
            .map(|r| r.quarantine_strikes.max(1))
            .unwrap_or(u32::MAX);
        self.strikes
            .get(&(host.to_string(), path.to_string()))
            .is_some_and(|&s| s >= threshold)
    }

    /// The policy suppressed this transfer's source (quarantined replica or
    /// down host): re-plan instead of skipping. In order of preference —
    /// fail over to a live alternate replica, re-run the producer
    /// (quarantine with no clean copy), or park the retry until the down
    /// host's scheduled restart.
    fn handle_blocked_source(&mut self, job: usize, advice_ix: usize, quarantined: bool) {
        let run = self.staging_runs.get(&job).expect("staging run state");
        let advice = run.advice[advice_ix].clone();
        let key = (advice.source.to_string(), advice.dest.to_string());
        let Some(&spec_ix) = run.by_urls.get(&key) else {
            // Unresolvable advice — count it as skipped like before.
            let run = self.staging_runs.get_mut(&job).expect("staging run state");
            run.skipped += 1;
            self.transfers_skipped += 1;
            self.start_next_transfer(job);
            return;
        };
        let file = self.planned_transfers(job)[spec_ix].file.clone();
        let cur_host = advice.source.host.clone();
        let cur_path = advice.source.path.clone();
        // A live, un-quarantined replica that is not the current source.
        let alternates: Vec<crate::catalog::Replica> = self
            .config
            .recovery
            .as_ref()
            .map(|r| r.replicas.replicas(&file).to_vec())
            .unwrap_or_default();
        let alt = alternates.into_iter().find(|r| {
            r.url != advice.source
                && !self.down_hosts.contains_key(&r.url.host)
                && !self.is_quarantined(&r.url.host, &r.url.path)
        });
        let run = self.staging_runs.get_mut(&job).expect("staging run state");
        if let Some(alt) = alt {
            // Re-stage from the alternate replica: rewrite the spec and the
            // advice→spec resolution, then re-ask the policy.
            run.specs[spec_ix].source = alt.url.clone();
            // Keep the stale advice slot resolvable: RetryEvaluate keys
            // the spec lookup off the advice URLs.
            run.advice[advice_ix].source = alt.url.clone();
            run.by_urls.remove(&key);
            run.by_urls
                .insert((alt.url.to_string(), advice.dest.to_string()), spec_ix);
            run.src_hosts.insert(spec_ix, alt.host);
            run.retrying = Some(advice_ix);
            self.recovery.replica_failovers += 1;
            self.trace.info(
                self.now,
                "recovery",
                format!("re-planning {file}: failing over to replica {}", alt.url),
            );
            self.events.schedule_at(
                self.now + self.config.policy_call_latency,
                Ev::RetryEvaluate(job),
            );
        } else if quarantined {
            // No clean replica left: re-run the producer. Modeled as a
            // fixed delay after which the regenerated file (generation + 1)
            // reads clean; the quarantine is lifted so advice flows again.
            *self.file_generation.entry(file.clone()).or_insert(0) += 1;
            self.strikes.remove(&(cur_host.clone(), cur_path.clone()));
            run.retrying = Some(advice_ix);
            self.recovery.producer_reruns += 1;
            self.trace.warn(
                self.now,
                "recovery",
                format!("no clean replica of {file}; re-running its producer"),
            );
            self.report_health_events(vec![HealthEvent::ReplicaCleared {
                host: cur_host,
                file: cur_path,
            }]);
            let delay = self.config.producer_rerun_delay + self.config.policy_call_latency;
            self.events
                .schedule_at(self.now + delay, Ev::RetryEvaluate(job));
        } else {
            // Down host, nowhere else to go: wait for its scheduled
            // restart (plus a round-trip so the HostUp report lands first).
            run.retrying = Some(advice_ix);
            self.recovery.waits_for_restart += 1;
            let up_at = self
                .down_hosts
                .get(&cur_host)
                .copied()
                .unwrap_or(self.now + self.config.retry_backoff_base);
            let at = up_at.max(self.now) + self.config.policy_call_latency;
            self.trace.info(
                self.now,
                "recovery",
                format!("source {cur_host} down; parking retry until {at}"),
            );
            self.events.schedule_at(at, Ev::RetryEvaluate(job));
        }
    }

    /// Checksum the completed transfer against the integrity model. Returns
    /// true when the read was corrupt and the failure path was taken.
    fn checksum_failed(&mut self, job: usize, advice_ix: usize, tag: u64) -> bool {
        let corruption = match self.config.recovery.as_ref() {
            Some(r) if !r.corruption.is_clean() => r.corruption.clone(),
            _ => return false,
        };
        let run = self.staging_runs.get(&job).expect("staging run state");
        let advice = run.advice[advice_ix].clone();
        let key = (advice.source.to_string(), advice.dest.to_string());
        let Some(&spec_ix) = run.by_urls.get(&key) else {
            return false;
        };
        let file = self.planned_transfers(job)[spec_ix].file.clone();
        let attempt = run.exec_attempts.get(&advice_ix).copied().unwrap_or(1);
        let generation = self.file_generation.get(&file).copied().unwrap_or(0);
        let src_host = advice.source.host.clone();
        if !corruption.read_is_corrupt(&src_host, &file, attempt, generation) {
            return false;
        }
        // The bytes arrived but the checksum does not match: discard them,
        // strike the replica, and (policy-guided) report the suspicion so
        // the K-th strike quarantines the source.
        self.recovery.corrupt_reads += 1;
        self.storage_flows.remove(&tag);
        if let Some(obs) = &self.config.obs {
            if let Some(span) = self.transfer_spans.remove(&tag) {
                obs.tracer.span_arg(span, "result", "corrupt");
                obs.tracer.end_span(span, self.now);
            }
        }
        let src_path = advice.source.path.clone();
        let strikes = self
            .strikes
            .entry((src_host.clone(), src_path.clone()))
            .or_insert(0);
        *strikes += 1;
        let quarantine = *strikes
            >= self
                .config
                .recovery
                .as_ref()
                .map(|r| r.quarantine_strikes.max(1))
                .unwrap_or(u32::MAX);
        self.trace.warn(
            self.now,
            "recovery",
            format!(
                "checksum mismatch on {file} from {src_host} (strike {}){}",
                strikes,
                if quarantine {
                    "; quarantining replica"
                } else {
                    ""
                }
            ),
        );
        if quarantine {
            self.recovery.quarantines += 1;
        }
        self.report_health_events(vec![HealthEvent::SuspectReplica {
            host: src_host,
            file: src_path,
            quarantine,
        }]);
        self.note_policy_call();
        self.report_transfers_or_queue(vec![TransferOutcome {
            id: advice.id,
            success: false,
        }]);
        // Integrity retries back off exponentially on the *execution*
        // attempt count but never consume the transient-failure budget.
        let run = self.staging_runs.get_mut(&job).expect("staging run state");
        run.retrying = Some(advice_ix);
        let attempt = run.exec_attempts.get(&advice_ix).copied().unwrap_or(1);
        let backoff = self
            .config
            .retry_backoff_base
            .mul_f64(
                self.config
                    .retry_backoff_factor
                    .max(1.0)
                    .powi(attempt.saturating_sub(1) as i32),
            )
            .min(self.config.retry_backoff_cap);
        self.events.schedule_at(
            self.now + self.config.policy_call_latency + backoff,
            Ev::RetryEvaluate(job),
        );
        true
    }

    /// Resend queued completion reports before the next policy
    /// interaction. Without this, outcomes from an outage window are lost
    /// forever: a service that recovers (or a warm successor) would never
    /// learn which files finished staging and would re-advise them. The
    /// resync is synchronous and adds no simulated latency, so runs stay
    /// deterministic for a given seed.
    fn flush_pending_reports(&mut self) {
        if !self.pending_transfer_reports.is_empty() {
            let queued = std::mem::take(&mut self.pending_transfer_reports);
            if self.transport.report_transfers(queued.clone()).is_err() {
                self.pending_transfer_reports = queued;
            }
        }
        if !self.pending_cleanup_reports.is_empty() {
            let queued = std::mem::take(&mut self.pending_cleanup_reports);
            if self.transport.report_cleanups(queued.clone()).is_err() {
                self.pending_cleanup_reports = queued;
            }
        }
    }

    /// Report transfer outcomes, queueing them for resync if the policy
    /// service is unreachable.
    fn report_transfers_or_queue(&mut self, outcomes: Vec<TransferOutcome>) {
        self.flush_pending_reports();
        if self.transport.report_transfers(outcomes.clone()).is_err() {
            self.pending_transfer_reports.extend(outcomes);
        }
    }

    /// Report cleanup outcomes, queueing them for resync if the policy
    /// service is unreachable.
    fn report_cleanups_or_queue(&mut self, outcomes: Vec<CleanupOutcome>) {
        self.flush_pending_reports();
        if self.transport.report_cleanups(outcomes.clone()).is_err() {
            self.pending_cleanup_reports.extend(outcomes);
        }
    }

    fn planned_transfers(&self, job: usize) -> &[PlannedTransfer] {
        match &self.plan.jobs()[job].kind {
            PlanJobKind::StageIn { transfers, .. } | PlanJobKind::StageOut { transfers } => {
                transfers
            }
            _ => unreachable!("job {job} is not a staging job"),
        }
    }

    /// Begin the next approved transfer of a staging job, skipping advice
    /// entries the policy suppressed; when the list is exhausted, report and
    /// schedule completion.
    fn start_next_transfer(&mut self, job: usize) {
        loop {
            let run = self.staging_runs.get_mut(&job).expect("staging run state");
            if run.next_advice >= run.advice.len() {
                // All advice processed → completion callout (if we executed
                // anything) and job finish.
                let outcomes = std::mem::take(&mut run.outcomes);
                let delay = if outcomes.is_empty() {
                    SimDuration::ZERO
                } else {
                    self.note_policy_call();
                    self.report_transfers_or_queue(outcomes);
                    self.config.policy_call_latency
                };
                self.events
                    .schedule_at(self.now + delay, Ev::JobFinish(job));
                return;
            }
            let ix = run.next_advice;
            run.next_advice += 1;
            let advice = run.advice[ix].clone();
            if !advice.should_execute() {
                // A recovery suppression is a re-planning signal, not a
                // dedup: the file still has to arrive from somewhere.
                if self.rec_active {
                    if let TransferAction::Skip(
                        reason @ (SuppressReason::SourceQuarantined
                        | SuppressReason::SourceHostDown),
                    ) = advice.action
                    {
                        self.handle_blocked_source(
                            job,
                            ix,
                            reason == SuppressReason::SourceQuarantined,
                        );
                        return;
                    }
                }
                run.skipped += 1;
                self.transfers_skipped += 1;
                continue;
            }
            let key = (advice.source.to_string(), advice.dest.to_string());
            let Some(&spec_ix) = run.by_urls.get(&key) else {
                // Advice for a transfer we did not submit — ignore
                // defensively.
                continue;
            };
            let mut pt = self.planned_transfers(job)[spec_ix].clone();
            if self.rec_active {
                let run = self.staging_runs.get_mut(&job).expect("staging run state");
                // Replica failover rewrote this spec's source.
                if let Some(&src) = run.src_hosts.get(&spec_ix) {
                    pt.src_host = src;
                    pt.source = run.specs[spec_ix].source.clone();
                }
                *run.exec_attempts.entry(ix).or_insert(0) += 1;
            }
            let tag = self.next_tag;
            self.next_tag += 1;
            // Policy-advised backend: redirect the flow to the backend's
            // store host and pay its per-request overhead as extra setup.
            // Unknown names (stale advice after a reconfiguration) fall back
            // to the planned destination.
            let mut dst_host = pt.dst_host;
            let mut extra_setup = SimDuration::ZERO;
            if let (Some(name), Some(storage)) = (&advice.backend, &self.config.storage) {
                if let Some(b) = storage.layer.backend(name) {
                    dst_host = b.host;
                    extra_setup = b.spec.extra_setup(pt.bytes);
                    self.storage_flows.insert(
                        tag,
                        StagedFlow {
                            backend: name.clone(),
                            bytes: pt.bytes,
                            dest: pt.dest.to_string(),
                        },
                    );
                }
            }
            let flow = FlowSpec {
                src: pt.src_host,
                dst: dst_host,
                bytes: pt.bytes as f64,
                streams: advice.streams,
                tag,
            };
            self.flow_owner.insert(tag, (job, ix));
            self.trace.info(
                self.now,
                "ptt",
                format!(
                    "transfer {} -> {} started with {} streams{}",
                    pt.source,
                    pt.dest,
                    advice.streams,
                    match &advice.backend {
                        Some(b) if self.storage_flows.contains_key(&tag) =>
                            format!(" via backend {b}"),
                        _ => String::new(),
                    }
                ),
            );
            let flow_id = self
                .network
                .start_flow_with_setup(self.now, flow, extra_setup);
            if let Some(obs) = &self.config.obs {
                let span = obs.tracer.start_span(
                    format!("xfer {}", pt.file),
                    "transfer",
                    self.job_spans[job],
                    self.now,
                );
                obs.tracer
                    .span_arg(span, "streams", advice.streams.to_string());
                obs.tracer.span_arg(span, "bytes", pt.bytes.to_string());
                self.transfer_spans.insert(tag, span);
                self.network.set_flow_span_parent(flow_id, span);
            }
            return;
        }
    }

    fn drain_network_completions(&mut self) {
        for record in self.network.take_completed() {
            let Some((job, advice_ix)) = self.flow_owner.remove(&record.tag) else {
                continue;
            };
            let failed = self.rng.chance(self.config.transfer_failure_prob);
            let advice_id = self
                .staging_runs
                .get(&job)
                .map(|r| r.advice[advice_ix].id)
                .expect("staging run state");
            if failed {
                // Nothing landed on the backend; drop the redirection so a
                // retry re-resolves whatever backend the fresh advice names.
                self.storage_flows.remove(&record.tag);
                self.transfer_retries += 1;
                if let Some(obs) = &self.config.obs {
                    obs.registry
                        .counter(
                            "pwm_workflow_transfer_failures_total",
                            "Transfers that failed (injected) and were reported to the service",
                            &[],
                        )
                        .inc();
                    if let Some(span) = self.transfer_spans.remove(&record.tag) {
                        obs.tracer.span_arg(span, "result", "failed");
                        obs.tracer.end_span(span, self.now);
                    }
                }
                // Transient failures (lost connection, timeout) are worth
                // retrying; fatal ones (missing source, permissions) never
                // succeed no matter how many attempts remain.
                let fatal = self.rng.chance(self.config.fatal_failure_prob);
                self.trace.warn(
                    self.now,
                    "ptt",
                    format!(
                        "transfer failed for job {} ({})",
                        self.plan.jobs()[job].name,
                        if fatal {
                            "fatal"
                        } else {
                            "transient; retrying"
                        }
                    ),
                );
                self.note_policy_call();
                self.report_transfers_or_queue(vec![TransferOutcome {
                    id: advice_id,
                    success: false,
                }]);
                let run = self.staging_runs.get_mut(&job).expect("staging run state");
                if fatal || run.attempts_left == 0 {
                    // Fatal error or retries exhausted: clear any retry
                    // state so the job reports Failed instead of waiting on
                    // a re-evaluation that will never be scheduled.
                    run.retrying = None;
                    self.fail_job(job);
                    continue;
                }
                run.attempts_left -= 1;
                run.retrying = Some(advice_ix);
                // Exponential backoff with seeded jitter: the first retry
                // waits base, each further one doubles (factor), capped.
                let attempt = self.config.retries.saturating_sub(run.attempts_left);
                let backoff = self
                    .config
                    .retry_backoff_base
                    .mul_f64(
                        self.config
                            .retry_backoff_factor
                            .max(1.0)
                            .powi(attempt.saturating_sub(1) as i32),
                    )
                    .min(self.config.retry_backoff_cap)
                    .mul_f64(self.rng.jitter(self.config.retry_jitter));
                if let Some(obs) = &self.config.obs {
                    obs.registry
                        .counter(
                            "pwm_workflow_transfer_retries_total",
                            "Transfer retry attempts scheduled after transient failures",
                            &[],
                        )
                        .inc();
                    obs.tracer.complete_span(
                        "retry_backoff",
                        "transfer",
                        self.job_spans[job],
                        self.now,
                        self.now + self.config.policy_call_latency + backoff,
                        &[("attempt", attempt.to_string())],
                    );
                }
                self.events.schedule_at(
                    self.now + self.config.policy_call_latency + backoff,
                    Ev::RetryEvaluate(job),
                );
            } else {
                // The transfer tool checksums what landed before declaring
                // victory; a mismatch takes the integrity-failure path.
                if self.rec_active && self.checksum_failed(job, advice_ix, record.tag) {
                    continue;
                }
                self.bytes_staged += record.bytes;
                self.grow_scratch(record.bytes);
                if let Some(staged) = self.storage_flows.remove(&record.tag) {
                    if let Some(storage) = self.config.storage.as_mut() {
                        if let Some(spec) = storage
                            .layer
                            .backend(&staged.backend)
                            .map(|b| b.spec.clone())
                        {
                            storage.meter.on_put(&spec, staged.bytes, self.now);
                        }
                    }
                    self.staged_on_backend
                        .insert(staged.dest, (staged.backend, staged.bytes));
                }
                if let Some(obs) = &self.config.obs {
                    if let Some(span) = self.transfer_spans.remove(&record.tag) {
                        obs.tracer.span_arg(span, "result", "ok");
                        obs.tracer.end_span(span, self.now);
                    }
                }
                self.stats_transfers.push(record);
                let run = self.staging_runs.get_mut(&job).expect("staging run state");
                run.outcomes.push(TransferOutcome {
                    id: advice_id,
                    success: true,
                });
                self.events.schedule_at(
                    self.now + self.config.inter_transfer_gap,
                    Ev::TransferStart(job),
                );
            }
        }
    }

    fn grow_scratch(&mut self, bytes: f64) {
        self.scratch_bytes += bytes;
        self.peak_scratch_bytes = self.peak_scratch_bytes.max(self.scratch_bytes);
    }

    fn finish_job(&mut self, job: usize) {
        if self.state[job] != JobState::Running {
            return;
        }
        self.state[job] = JobState::Done;
        self.jobs_done += 1;
        self.close_job_span(job, "done");
        self.trace.info(
            self.now,
            "executor",
            format!("job {} finished", self.plan.jobs()[job].name),
        );
        for child in self.plan.jobs()[job].children.clone() {
            self.pending_parents[child.0] -= 1;
            if self.pending_parents[child.0] == 0 && self.state[child.0] == JobState::Waiting {
                self.mark_ready(child.0);
            }
        }
    }

    fn fail_job(&mut self, job: usize) {
        if matches!(
            self.plan.jobs()[job].kind,
            PlanJobKind::StageIn { .. } | PlanJobKind::StageOut { .. }
        ) {
            self.staging_in_flight -= 1;
            self.staging_runs.remove(&job);
        }
        self.state[job] = JobState::Failed;
        self.jobs_failed += 1;
        self.close_job_span(job, "failed");
        // Abandon every transitive descendant that can no longer run.
        let mut stack: Vec<usize> = self.plan.jobs()[job].children.iter().map(|c| c.0).collect();
        while let Some(j) = stack.pop() {
            if matches!(self.state[j], JobState::Waiting | JobState::Ready) {
                self.state[j] = JobState::Abandoned;
                self.jobs_abandoned += 1;
                self.close_job_span(j, "abandoned");
                stack.extend(self.plan.jobs()[j].children.iter().map(|c| c.0));
            }
        }
    }
}

/// Priority boost for a cleanup job under price-ordered eviction: the
/// priciest $/GB·h residency among the job's files, scaled onto an integer
/// ladder well above plan priorities so price dominates and ties fall back
/// to plan order. Pure function of its inputs — `price_of` maps a file's
/// destination URL to the residency rate of the backend holding it (`None`
/// when the file is not on a metered backend).
fn cleanup_price_boost(
    files: impl Iterator<Item = String>,
    price_of: impl Fn(&str) -> Option<f64>,
) -> i32 {
    let max_price = files.filter_map(|f| price_of(&f)).fold(0.0_f64, f64::max);
    (max_price * 1e7).round() as i32
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are tweaked per-test
mod tests {
    use super::*;
    use crate::catalog::{ComputeSite, ReplicaCatalog};
    use crate::dag::{AbstractJob, AbstractWorkflow};
    use crate::planner::{plan, PlannerConfig};
    use pwm_core::transport::{InProcessTransport, NoPolicyTransport};
    use pwm_core::{PolicyConfig, PolicyController, DEFAULT_SESSION};
    use pwm_net::{paper_testbed, StreamModel};

    fn testbed() -> (Network, ComputeSite, ReplicaCatalog, pwm_net::HostId) {
        let (topo, gridftp, _apache, nfs) = paper_testbed();
        let site = ComputeSite {
            name: "obelix".into(),
            nodes: 9,
            cores_per_node: 6,
            storage_host: nfs,
            storage_host_name: "obelix-nfs".into(),
            scratch_dir: "/scratch".into(),
        };
        let network = Network::new(topo, StreamModel::default());
        let mut rc = ReplicaCatalog::new();
        // Names filled in per test.
        let _ = &mut rc;
        (network, site, rc, gridftp)
    }

    fn wide_workflow(n: usize, file_bytes: u64) -> AbstractWorkflow {
        let mut wf = AbstractWorkflow::new("wide");
        for i in 0..n {
            wf.add_job(AbstractJob {
                name: format!("work_{i}"),
                transformation: "work".into(),
                runtime_s: 5.0,
                inputs: vec![format!("in_{i}")],
                outputs: vec![format!("out_{i}")],
            });
            wf.set_file_size(format!("in_{i}"), file_bytes);
            wf.set_file_size(format!("out_{i}"), 1_000);
        }
        wf
    }

    fn register_inputs(rc: &mut ReplicaCatalog, n: usize, host: pwm_net::HostId) {
        for i in 0..n {
            rc.insert(
                format!("in_{i}"),
                pwm_core::Url::new("gsiftp", "gridftp-vm", format!("/data/in_{i}")),
                host,
            );
        }
    }

    fn run_with_policy(
        n: usize,
        bytes: u64,
        policy: PolicyConfig,
        exec_cfg: ExecutorConfig,
    ) -> (RunStats, Network, PolicyController) {
        let (network, site, mut rc, gridftp) = testbed();
        register_inputs(&mut rc, n, gridftp);
        let wf = wide_workflow(n, bytes);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let controller = PolicyController::new(policy);
        let transport = Box::new(InProcessTransport::new(controller.clone(), DEFAULT_SESSION));
        let exec = WorkflowExecutor::new(&p, &site, network, transport, exec_cfg);
        let (stats, net) = exec.run();
        (stats, net, controller)
    }

    #[test]
    fn small_workflow_completes() {
        let (stats, _net, _c) = run_with_policy(
            4,
            1_000_000,
            PolicyConfig::default(),
            ExecutorConfig::default(),
        );
        assert!(stats.success);
        assert_eq!(stats.compute_jobs, 4);
        assert_eq!(stats.staging_jobs, 4);
        assert!(stats.makespan_secs() > 0.0);
        assert!((stats.bytes_staged - 4_000_000.0).abs() < 1.0);
    }

    #[test]
    fn cleanups_run_and_clear_policy_memory() {
        let (stats, _net, controller) = run_with_policy(
            3,
            1_000_000,
            PolicyConfig::default(),
            ExecutorConfig::default(),
        );
        assert!(stats.success);
        assert!(stats.cleanup_jobs > 0);
        let snap = controller.snapshot(DEFAULT_SESSION).unwrap();
        assert_eq!(snap.staged_files, 0, "cleanup jobs removed every resource");
        assert_eq!(snap.in_progress_transfers, 0);
    }

    #[test]
    fn staging_job_limit_is_respected() {
        // 40 jobs, limit 20: the WAN peak must reflect ≤ 20 concurrent
        // staging jobs × granted streams.
        let policy = PolicyConfig::default()
            .with_default_streams(4)
            .with_threshold(1_000_000); // effectively unlimited
        let mut cfg = ExecutorConfig::default();
        cfg.staging_job_limit = 20;
        let (topo, _, _, _) = paper_testbed();
        cfg.watch_link = topo
            .links()
            .find(|(_, l)| l.name == "wan-tacc-isi")
            .map(|(id, _)| id);
        let (stats, _net, _c) = run_with_policy(40, 20_000_000, policy, cfg);
        assert!(stats.success);
        let peak = stats.peak_wan_streams.unwrap();
        assert!(
            peak <= 80,
            "peak {peak} streams exceeds 20 jobs × 4 streams"
        );
        assert!(peak > 0);
    }

    #[test]
    fn greedy_threshold_caps_wan_streams() {
        let policy = PolicyConfig::default()
            .with_default_streams(8)
            .with_threshold(50);
        let mut cfg = ExecutorConfig::default();
        let (topo, _, _, _) = paper_testbed();
        cfg.watch_link = topo
            .links()
            .find(|(_, l)| l.name == "wan-tacc-isi")
            .map(|(id, _)| id);
        let (stats, _net, controller) = run_with_policy(40, 20_000_000, policy, cfg);
        assert!(stats.success);
        // Table IV bound: threshold 50, default 8, 20 concurrent jobs →
        // at most 63 allocated at any instant.
        let peak = stats.peak_wan_streams.unwrap();
        assert!(peak <= 63, "peak {peak} > Table IV bound 63");
        let policy_peak = controller
            .snapshot(DEFAULT_SESSION)
            .unwrap()
            .host_pairs
            .iter()
            .map(|p| p.peak_allocated)
            .max()
            .unwrap();
        assert!(policy_peak <= 63);
    }

    #[test]
    fn no_policy_comparator_runs() {
        let (network, site, mut rc, gridftp) = testbed();
        register_inputs(&mut rc, 6, gridftp);
        let wf = wide_workflow(6, 5_000_000);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let transport = Box::new(NoPolicyTransport::new(4));
        let exec = WorkflowExecutor::new(&p, &site, network, transport, ExecutorConfig::default());
        let (stats, _net) = exec.run();
        assert!(stats.success);
        assert_eq!(stats.transfers_skipped, 0, "no-policy never skips");
    }

    #[test]
    fn failure_injection_triggers_retries_and_still_succeeds() {
        let mut cfg = ExecutorConfig::default();
        cfg.transfer_failure_prob = 0.3;
        cfg.seed = 7;
        let (stats, _net, _c) = run_with_policy(8, 2_000_000, PolicyConfig::default(), cfg);
        assert!(stats.transfer_retries > 0, "30% failure rate must retry");
        assert!(stats.success, "retries should absorb the failures");
    }

    #[test]
    fn certain_failure_exhausts_retries_and_fails_the_job() {
        let mut cfg = ExecutorConfig::default();
        cfg.transfer_failure_prob = 1.0;
        cfg.retries = 2;
        let (stats, _net, _c) = run_with_policy(2, 1_000_000, PolicyConfig::default(), cfg);
        assert!(!stats.success);
        assert!(stats.failed_jobs > 0);
        // Each job makes retries+1 attempts, every one failing: 2 jobs × 3.
        assert_eq!(stats.transfer_retries, 2 * 3);
    }

    #[test]
    fn fatal_failures_fail_fast_without_exhausting_retries() {
        // Every failure is fatal: each staging job dies on its first
        // attempt and reports Failed — no retry budget is consumed, the run
        // terminates, and retrying state never dangles.
        let mut cfg = ExecutorConfig::default();
        cfg.transfer_failure_prob = 1.0;
        cfg.fatal_failure_prob = 1.0;
        cfg.retries = 5;
        let (stats, _net, _c) = run_with_policy(3, 1_000_000, PolicyConfig::default(), cfg);
        assert!(!stats.success);
        assert_eq!(stats.failed_jobs, 3, "every staging job fails");
        // One attempt per job — fatal means no retries.
        assert_eq!(stats.transfer_retries, 3);
        assert!(stats.makespan_secs() > 0.0, "the run still terminates");
    }

    #[test]
    fn retry_backoff_delays_grow_the_makespan() {
        // Same failure pattern, hugely different backoff: the slow-backoff
        // run must take visibly longer, proving the delay is applied.
        let run = |base_ms: u64| {
            let mut cfg = ExecutorConfig::default();
            cfg.transfer_failure_prob = 1.0;
            cfg.retries = 3;
            cfg.seed = 9;
            cfg.retry_backoff_base = SimDuration::from_millis(base_ms);
            cfg.retry_backoff_cap = SimDuration::from_secs(300);
            let (stats, _net, _c) = run_with_policy(2, 1_000_000, PolicyConfig::default(), cfg);
            stats.makespan_secs()
        };
        let quick = run(1);
        let slow = run(20_000);
        // 3 retries with base 20 s and factor 2 add ≥ 20+40+80 s per job.
        assert!(
            slow > quick + 60.0,
            "slow backoff {slow}s vs quick {quick}s"
        );
    }

    #[test]
    fn fallback_streams_are_configurable() {
        struct Dead;
        impl PolicyTransport for Dead {
            fn evaluate_transfers(
                &mut self,
                _b: Vec<TransferSpec>,
            ) -> Result<Vec<TransferAdvice>, pwm_core::TransportError> {
                Err(pwm_core::TransportError::Io("down".into()))
            }
            fn report_transfers(
                &mut self,
                _o: Vec<TransferOutcome>,
            ) -> Result<(), pwm_core::TransportError> {
                Err(pwm_core::TransportError::Io("down".into()))
            }
            fn evaluate_cleanups(
                &mut self,
                _b: Vec<CleanupSpec>,
            ) -> Result<Vec<pwm_core::CleanupAdvice>, pwm_core::TransportError> {
                Err(pwm_core::TransportError::Io("down".into()))
            }
            fn report_cleanups(
                &mut self,
                _o: Vec<CleanupOutcome>,
            ) -> Result<(), pwm_core::TransportError> {
                Err(pwm_core::TransportError::Io("down".into()))
            }
        }
        let (network, site, mut rc, gridftp) = testbed();
        register_inputs(&mut rc, 3, gridftp);
        let wf = wide_workflow(3, 2_000_000);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let mut cfg = ExecutorConfig::default();
        cfg.fallback_streams = 4;
        let exec = WorkflowExecutor::new(&p, &site, network, Box::new(Dead), cfg);
        let (stats, _net, trace) = exec.run_traced();
        assert!(stats.success, "dead service must not stop the workflow");
        assert!(
            !trace.grep("with 4 stream(s)").is_empty(),
            "fallback should advertise the configured stream count"
        );
        // The cleanup fail-safe drained scratch even with the service down.
        assert_eq!(stats.final_scratch_bytes, 0.0, "scratch drained fail-safe");
    }

    #[test]
    fn failed_completion_reports_are_resynced_on_reconnect() {
        // The transport drops the first few completion reports (a policy
        // outage window), then recovers. The executor must queue and
        // resend them so the service's memory converges anyway.
        struct FlakyReports {
            inner: InProcessTransport,
            failures_left: usize,
        }
        impl PolicyTransport for FlakyReports {
            fn evaluate_transfers(
                &mut self,
                b: Vec<TransferSpec>,
            ) -> Result<Vec<TransferAdvice>, pwm_core::TransportError> {
                self.inner.evaluate_transfers(b)
            }
            fn report_transfers(
                &mut self,
                o: Vec<TransferOutcome>,
            ) -> Result<(), pwm_core::TransportError> {
                if self.failures_left > 0 {
                    self.failures_left -= 1;
                    return Err(pwm_core::TransportError::Io("outage".into()));
                }
                self.inner.report_transfers(o)
            }
            fn evaluate_cleanups(
                &mut self,
                b: Vec<CleanupSpec>,
            ) -> Result<Vec<pwm_core::CleanupAdvice>, pwm_core::TransportError> {
                self.inner.evaluate_cleanups(b)
            }
            fn report_cleanups(
                &mut self,
                o: Vec<CleanupOutcome>,
            ) -> Result<(), pwm_core::TransportError> {
                self.inner.report_cleanups(o)
            }
        }
        let (network, site, mut rc, gridftp) = testbed();
        register_inputs(&mut rc, 4, gridftp);
        let wf = wide_workflow(4, 1_000_000);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let controller = PolicyController::new(PolicyConfig::default());
        let transport = Box::new(FlakyReports {
            inner: InProcessTransport::new(controller.clone(), DEFAULT_SESSION),
            failures_left: 2,
        });
        let exec = WorkflowExecutor::new(&p, &site, network, transport, ExecutorConfig::default());
        let (stats, _net) = exec.run();
        assert!(stats.success);
        let snap = controller.snapshot(DEFAULT_SESSION).unwrap();
        assert_eq!(
            snap.in_progress_transfers, 0,
            "resynced reports must close every transfer the outage orphaned"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut cfg = ExecutorConfig::default();
            cfg.seed = 42;
            let (stats, _, _) = run_with_policy(10, 10_000_000, PolicyConfig::default(), cfg);
            (
                stats.makespan,
                stats.policy_calls,
                stats.bytes_staged as u64,
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn obs_traces_jobs_transfers_and_rpcs() {
        let obs = pwm_obs::Obs::new();
        let mut cfg = ExecutorConfig::default();
        cfg.seed = 7;
        cfg.obs = Some(obs.clone());
        let (stats, _, _) = run_with_policy(4, 10_000_000, PolicyConfig::default(), cfg);
        assert!(stats.success);
        let trace = obs.tracer.chrome_trace_json();
        pwm_obs::validate_chrome_trace(&trace).expect("exported trace is valid");
        for needle in [
            "\"cat\":\"stage_in\"",
            "\"cat\":\"compute\"",
            "\"cat\":\"cleanup\"",
            "\"cat\":\"transfer\"",
            "\"cat\":\"net\"",
            "\"cat\":\"policy_rpc\"",
        ] {
            assert!(trace.contains(needle), "missing {needle} in:\n{trace}");
        }
        let metrics = obs.registry.render_prometheus();
        assert!(
            metrics.contains("pwm_workflow_jobs_total{kind=\"compute\",state=\"done\"} 4"),
            "job counters missing:\n{metrics}"
        );
        assert!(metrics.contains("pwm_workflow_policy_calls_total"));
        assert!(metrics.contains("pwm_net_link_streams"));
    }

    #[test]
    fn obs_trace_is_deterministic_given_seed() {
        let mk = || {
            let obs = pwm_obs::Obs::new();
            let mut cfg = ExecutorConfig::default();
            cfg.seed = 42;
            cfg.obs = Some(obs.clone());
            let (stats, _, _) = run_with_policy(6, 10_000_000, PolicyConfig::default(), cfg);
            assert!(stats.success);
            obs.tracer.chrome_trace_json()
        };
        assert_eq!(mk(), mk(), "same seed must export an identical trace");
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let mut cfg = ExecutorConfig::default();
            cfg.seed = seed;
            let (stats, _, _) = run_with_policy(10, 10_000_000, PolicyConfig::default(), cfg);
            stats.makespan
        };
        assert_ne!(mk(1), mk(2), "jitter should differentiate seeds");
    }

    #[test]
    fn shared_input_is_staged_once_under_policy() {
        // Two compute jobs consuming the same external file: policy dedup
        // means one WAN transfer, the second stage-in is advised to skip.
        let (network, site, mut rc, gridftp) = testbed();
        let mut wf = AbstractWorkflow::new("shared");
        for i in 0..2 {
            wf.add_job(AbstractJob {
                name: format!("work_{i}"),
                transformation: "work".into(),
                runtime_s: 2.0,
                inputs: vec!["common.dat".into()],
                outputs: vec![format!("out_{i}")],
            });
            wf.set_file_size(format!("out_{i}"), 1);
        }
        wf.set_file_size("common.dat", 50_000_000);
        rc.insert(
            "common.dat",
            pwm_core::Url::new("gsiftp", "gridftp-vm", "/data/common.dat"),
            gridftp,
        );
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        assert_eq!(p.stage_in_count(), 2);
        let controller = PolicyController::new(PolicyConfig::default());
        let transport = Box::new(InProcessTransport::new(controller.clone(), DEFAULT_SESSION));
        let exec = WorkflowExecutor::new(&p, &site, network, transport, ExecutorConfig::default());
        let (stats, _net) = exec.run();
        assert!(stats.success);
        // One of the two staging attempts was suppressed...
        assert!(
            stats.transfers_skipped >= 1,
            "dedup should skip the duplicate stage-in (skipped={})",
            stats.transfers_skipped
        );
        // ...so only ~50 MB crossed the network, not 100.
        assert!(
            stats.bytes_staged < 60_000_000.0,
            "bytes staged {}",
            stats.bytes_staged
        );
    }

    #[test]
    fn trace_records_job_and_transfer_lifecycle() {
        let (network, site, mut rc, gridftp) = testbed();
        register_inputs(&mut rc, 3, gridftp);
        let wf = wide_workflow(3, 1_000_000);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let controller = PolicyController::new(PolicyConfig::default());
        let transport = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));
        let exec = WorkflowExecutor::new(&p, &site, network, transport, ExecutorConfig::default());
        let (stats, _net, trace) = exec.run_traced();
        assert!(stats.success);
        assert!(!trace.grep("staging job").is_empty());
        assert!(!trace.grep("compute job").is_empty());
        assert!(!trace.grep("streams").is_empty());
        assert!(!trace.grep("finished").is_empty());
        // Records are time-ordered.
        let times: Vec<_> = trace.records().map(|r| r.at).collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn cleanup_category_limit_throttles() {
        // Many cleanups with limit 1: the run still completes, and the
        // timeline option records the WAN when requested.
        let (network, site, mut rc, gridftp) = testbed();
        register_inputs(&mut rc, 10, gridftp);
        let wf = wide_workflow(10, 1_000_000);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let controller = PolicyController::new(PolicyConfig::default());
        let transport = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));
        let mut cfg = ExecutorConfig::default();
        cfg.cleanup_job_limit = Some(1);
        let (topo, _, _, _) = paper_testbed();
        cfg.watch_link = topo
            .links()
            .find(|(_, l)| l.name == "wan-tacc-isi")
            .map(|(id, _)| id);
        cfg.watch_timeline = true;
        let exec = WorkflowExecutor::new(&p, &site, network, transport, cfg.clone());
        let (stats, net) = exec.run();
        assert!(stats.success);
        assert!(stats.cleanup_jobs >= 10);
        let timeline = net.timeline(cfg.watch_link.unwrap()).expect("watched");
        assert!(!timeline.samples().is_empty());
        assert!(timeline.peak_streams() > 0);
    }

    #[test]
    fn ready_queue_pops_by_priority_then_id() {
        let mut q = ReadyQueue::default();
        q.push(1, 10);
        q.push(9, 11);
        q.push(5, 12);
        q.push(9, 3); // same priority as 11, lower id wins
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), Some(12));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn priority_orders_staging_release() {
        // Three independent staging jobs with priorities 1, 9, 5 and a
        // staging-job limit of 1: they must run in priority order (9, 5, 1),
        // not id order.
        use crate::planner::{ExecutablePlan, PlanJob, PlannedTransfer};
        let (topo, gridftp, _apache, nfs) = paper_testbed();
        let site = ComputeSite {
            name: "obelix".into(),
            nodes: 1,
            cores_per_node: 1,
            storage_host: nfs,
            storage_host_name: "obelix-nfs".into(),
            scratch_dir: "/scratch".into(),
        };
        let jobs: Vec<PlanJob> = [1, 9, 5]
            .iter()
            .enumerate()
            .map(|(i, &priority)| PlanJob {
                name: format!("stage_{i}"),
                kind: PlanJobKind::StageIn {
                    transfers: vec![PlannedTransfer {
                        file: format!("f{i}"),
                        bytes: 1_000_000,
                        source: pwm_core::Url::new("gsiftp", "gridftp-vm", format!("/d/f{i}")),
                        dest: pwm_core::Url::new("file", "obelix-nfs", format!("/s/f{i}")),
                        src_host: gridftp,
                        dst_host: nfs,
                    }],
                    cluster: None,
                },
                parents: vec![],
                children: vec![],
                priority,
                level: 0,
                workflow: None,
            })
            .collect();
        let plan = ExecutablePlan::from_jobs("prio", jobs).unwrap();

        let controller = PolicyController::new(PolicyConfig::default());
        let transport = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));
        let network = Network::with_seed(topo, StreamModel::default(), 1);
        let mut cfg = ExecutorConfig::default();
        cfg.staging_job_limit = 1;
        let exec = WorkflowExecutor::new(&plan, &site, network, transport, cfg);
        let (stats, _) = exec.run();
        assert!(stats.success);
        // Completion order of the staged files follows priority: f1 (prio 9),
        // then f2 (prio 5), then f0 (prio 1).
        let mut order: Vec<(pwm_sim::SimTime, u64)> = stats
            .transfers
            .iter()
            .map(|t| (t.completed_at, t.tag))
            .collect();
        order.sort();
        let tags: Vec<u64> = order.iter().map(|(_, tag)| *tag).collect();
        assert_eq!(tags, vec![0, 1, 2], "flow tags are assigned in start order");
        // Map tags back to files via bytes order: verify the *first started*
        // transfer was the priority-9 job's file (f1).
        let first = stats
            .transfers
            .iter()
            .min_by_key(|t| t.requested_at)
            .unwrap();
        let last = stats
            .transfers
            .iter()
            .max_by_key(|t| t.requested_at)
            .unwrap();
        // first flow belongs to stage_1 (priority 9): its dest path is /s/f1
        // — the ledger does not record paths, so check via completion order
        // against the known serial schedule: stage_1 → stage_2 → stage_0.
        assert!(first.completed_at < last.completed_at);
    }

    #[test]
    fn cleanup_reduces_the_scratch_footprint() {
        // With cleanup, staged files are deleted after their consumers run,
        // so the final footprint is zero and the peak is below the total
        // bytes ever written; without cleanup everything accumulates.
        let run = |cleanup: bool| {
            let (network, site, mut rc, gridftp) = testbed();
            register_inputs(&mut rc, 12, gridftp);
            let wf = wide_workflow(12, 20_000_000);
            let cfg = crate::planner::PlannerConfig {
                cleanup,
                ..Default::default()
            };
            let p = plan(&wf, &site, &rc, &cfg).unwrap();
            let controller = PolicyController::new(PolicyConfig::default());
            let transport = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));
            let exec =
                WorkflowExecutor::new(&p, &site, network, transport, ExecutorConfig::default());
            let (stats, _) = exec.run();
            assert!(stats.success);
            stats
        };
        let with_cleanup = run(true);
        let without = run(false);
        assert_eq!(
            with_cleanup.final_scratch_bytes, 0.0,
            "cleanup empties scratch"
        );
        assert!(
            without.final_scratch_bytes > 200.0e6,
            "no cleanup: everything stays ({} bytes)",
            without.final_scratch_bytes
        );
        assert!(with_cleanup.peak_scratch_bytes <= without.peak_scratch_bytes);
        assert!(with_cleanup.peak_scratch_bytes > 0.0);
    }

    #[test]
    fn policy_chosen_backend_redirects_flows_and_meters_dollars() {
        // Full stack: ec2 backends installed on the paper testbed, the
        // policy service running GreedyCheapest storage selection, and the
        // executor redirecting staged flows to the advised store host while
        // the meter accumulates dollars that cleanup later caps.
        let (mut topo, gridftp, _apache, nfs) = pwm_net::paper_testbed();
        let trio = pwm_storage::ec2_trio();
        let layer = StorageLayer::install(&mut topo, nfs, &trio);
        let store_hosts: Vec<pwm_net::HostId> = layer.backends().map(|b| b.host).collect();
        let site = ComputeSite {
            name: "obelix".into(),
            nodes: 9,
            cores_per_node: 6,
            storage_host: nfs,
            storage_host_name: "obelix-nfs".into(),
            scratch_dir: "/scratch".into(),
        };
        let network = Network::new(topo, StreamModel::default());
        let mut rc = ReplicaCatalog::new();
        register_inputs(&mut rc, 6, gridftp);
        let wf = wide_workflow(6, 10_000_000);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();

        let mut policy =
            PolicyConfig::default().with_storage(pwm_core::StoragePolicy::GreedyCheapest);
        for spec in &trio {
            policy = policy.with_backend(spec.clone(), "obelix-nfs");
        }
        let controller = PolicyController::new(policy);
        let transport = Box::new(InProcessTransport::new(controller.clone(), DEFAULT_SESSION));
        let mut cfg = ExecutorConfig::default();
        cfg.storage = Some(StorageRuntime::new(layer));
        let exec = WorkflowExecutor::new(&p, &site, network, transport, cfg);
        let (stats, _net) = exec.run();
        assert!(stats.success);

        // Every staged flow landed on a store host, not the planned NFS.
        assert!(!stats.transfers.is_empty());
        for t in &stats.transfers {
            assert!(
                store_hosts.contains(&t.dst),
                "flow should be redirected to a backend store host, went to {:?}",
                t.dst
            );
        }
        // The meter saw the bytes and priced them.
        let report = stats.storage.as_ref().expect("storage metering attached");
        let total_put: f64 = report.backends.iter().map(|b| b.bytes_put).sum();
        assert!(
            (total_put - stats.bytes_staged).abs() < 1.0,
            "metered {} vs staged {}",
            total_put,
            stats.bytes_staged
        );
        assert!(report.dollars_total > 0.0);
        // GreedyCheapest concentrates these small files on the cheapest
        // forecast backend (shared NFS: no request or egress fees).
        let nfs_row = report.backend("nfs-std").unwrap();
        assert!(nfs_row.bytes_put > 0.0, "cheapest backend should win");
        assert_eq!(report.backend("obj-s3").unwrap().bytes_put, 0.0);
    }

    #[test]
    fn storage_disabled_runs_are_not_metered() {
        let (stats, _net, _c) = run_with_policy(
            3,
            1_000_000,
            PolicyConfig::default(),
            ExecutorConfig::default(),
        );
        assert!(stats.success);
        assert!(stats.storage.is_none(), "no layer, no cost report");
    }

    // --------------------------------------------------------------
    // Recovery plane
    // --------------------------------------------------------------

    use crate::recovery::{BackendOutage, CrashTarget, HostCrash, RecoveryConfig};

    /// Replica catalog with the planned gridftp source plus an apache
    /// mirror for every input file.
    fn mirrored_replicas(
        n: usize,
        gridftp: pwm_net::HostId,
        apache: pwm_net::HostId,
    ) -> ReplicaCatalog {
        let mut rc = ReplicaCatalog::new();
        for i in 0..n {
            rc.insert(
                format!("in_{i}"),
                pwm_core::Url::new("gsiftp", "gridftp-vm", format!("/data/in_{i}")),
                gridftp,
            );
            rc.insert(
                format!("in_{i}"),
                pwm_core::Url::new("http", "apache-isi", format!("/mirror/in_{i}")),
                apache,
            );
        }
        rc
    }

    fn run_with_recovery(
        n: usize,
        bytes: u64,
        recovery: RecoveryConfig,
        tweak: impl FnOnce(&mut ExecutorConfig),
    ) -> (RunStats, PolicyController) {
        let (network, site, mut rc, gridftp) = testbed();
        register_inputs(&mut rc, n, gridftp);
        let wf = wide_workflow(n, bytes);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let controller = PolicyController::new(PolicyConfig::default());
        let transport = Box::new(InProcessTransport::new(controller.clone(), DEFAULT_SESSION));
        let mut cfg = ExecutorConfig::default();
        cfg.recovery = Some(recovery);
        tweak(&mut cfg);
        let exec = WorkflowExecutor::new(&p, &site, network, transport, cfg);
        let (stats, _net) = exec.run();
        (stats, controller)
    }

    #[test]
    fn inert_recovery_config_changes_nothing() {
        // An attached-but-empty recovery plane must leave the run
        // bit-identical to one with no plane at all.
        let mk = |recovery: Option<RecoveryConfig>| {
            let (network, site, mut rc, gridftp) = testbed();
            register_inputs(&mut rc, 5, gridftp);
            let wf = wide_workflow(5, 5_000_000);
            let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
            let controller = PolicyController::new(PolicyConfig::default());
            let transport = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));
            let mut cfg = ExecutorConfig::default();
            cfg.seed = 11;
            cfg.recovery = recovery;
            let exec = WorkflowExecutor::new(&p, &site, network, transport, cfg);
            exec.run().0
        };
        let without = mk(None);
        let with_inert = mk(Some(RecoveryConfig::default()));
        assert_eq!(without, with_inert);
        assert!(with_inert.recovery.is_none(), "inert plane reports nothing");
    }

    #[test]
    fn host_crash_kills_flows_and_fails_over_to_mirror() {
        let (_topo, gridftp, apache, _nfs) = {
            let (t, g, a, n) = paper_testbed();
            (t, g, a, n)
        };
        let mut rec = RecoveryConfig::default();
        rec.crashes.push(HostCrash {
            target: CrashTarget::Host {
                host: gridftp,
                name: "gridftp-vm".into(),
            },
            at: SimTime::from_secs(4),
            restart_after: SimDuration::from_secs(120),
        });
        rec.replicas = mirrored_replicas(8, gridftp, apache);
        let (stats, _c) = run_with_recovery(8, 40_000_000, rec, |cfg| {
            cfg.seed = 3;
        });
        assert!(stats.success, "failover must keep the workflow alive");
        let report = stats.recovery.as_ref().expect("recovery report");
        assert_eq!(report.host_crashes, 1);
        assert!(report.flows_killed > 0, "the crash lands mid-staging");
        assert!(
            report.replica_failovers > 0,
            "killed transfers re-plan onto the apache mirror"
        );
        // The run finished well before the crashed host's restart: recovery
        // did not wait out the 120 s downtime.
        assert!(
            stats.makespan_secs() < 120.0,
            "makespan {} should beat the restart window",
            stats.makespan_secs()
        );
        // Failed-over flows really came from the mirror host.
        assert!(stats.transfers.iter().any(|t| t.src == apache));
    }

    #[test]
    fn host_crash_with_no_mirror_waits_for_restart() {
        let (_t, gridftp, _a, _n) = paper_testbed();
        let mut rec = RecoveryConfig::default();
        rec.crashes.push(HostCrash {
            target: CrashTarget::Host {
                host: gridftp,
                name: "gridftp-vm".into(),
            },
            at: SimTime::from_secs(4),
            restart_after: SimDuration::from_secs(60),
        });
        // No alternates: the only copy lives on the crashed host.
        let (stats, _c) = run_with_recovery(6, 40_000_000, rec, |cfg| {
            cfg.seed = 5;
        });
        assert!(stats.success, "parked retries resume after restart");
        let report = stats.recovery.as_ref().expect("recovery report");
        assert!(report.flows_killed > 0);
        assert!(report.waits_for_restart > 0, "no mirror: retries must park");
        assert!(
            stats.makespan_secs() > 64.0,
            "makespan {} must include the 60 s downtime",
            stats.makespan_secs()
        );
    }

    #[test]
    fn node_crash_requeues_running_compute_jobs() {
        let mut rec = RecoveryConfig::default();
        // Staging of 12 x 1 MB finishes around t=7 s and the 5 s computes
        // run from there; crash a node mid-compute.
        rec.crashes.push(HostCrash {
            target: CrashTarget::ComputeNode(0),
            at: SimTime::from_secs(9),
            restart_after: SimDuration::from_secs(15),
        });
        let (stats, _c) = run_with_recovery(12, 1_000_000, rec, |cfg| {
            cfg.seed = 7;
        });
        assert!(stats.success);
        let report = stats.recovery.as_ref().expect("recovery report");
        assert_eq!(report.host_crashes, 1);
        assert!(
            report.compute_reruns > 0,
            "jobs were running at the crash instant"
        );
        // Victims re-queue only at restart, so the makespan covers it.
        assert!(stats.makespan_secs() > 20.0);
    }

    #[test]
    fn corruption_strikes_quarantine_and_fail_over() {
        let (_t, gridftp, apache, _n) = paper_testbed();
        let mut rec = RecoveryConfig::default();
        rec.corruption.set_host_prob("gridftp-vm", 1.0);
        rec.quarantine_strikes = 2;
        rec.replicas = mirrored_replicas(4, gridftp, apache);
        let (stats, _c) = run_with_recovery(4, 2_000_000, rec, |cfg| {
            cfg.seed = 13;
        });
        assert!(stats.success);
        let report = stats.recovery.as_ref().expect("recovery report");
        // Every file: 2 corrupt reads → quarantine → mirror.
        assert_eq!(report.corrupt_reads, 8, "two strikes per file");
        assert_eq!(report.quarantines, 4);
        assert_eq!(report.replica_failovers, 4);
        assert_eq!(report.producer_reruns, 0, "the mirror is clean");
        // Exactly one clean copy of each file was counted.
        assert!((stats.bytes_staged - 8_000_000.0).abs() < 1.0);
    }

    #[test]
    fn corruption_with_no_mirror_heals_via_producer_rerun() {
        let mut rec = RecoveryConfig::default();
        rec.corruption.set_host_prob("gridftp-vm", 1.0);
        rec.quarantine_strikes = 1;
        let (stats, _c) = run_with_recovery(3, 1_000_000, rec, |cfg| {
            cfg.seed = 17;
            cfg.producer_rerun_delay = SimDuration::from_secs(5);
        });
        assert!(stats.success, "regenerated files read clean");
        let report = stats.recovery.as_ref().expect("recovery report");
        assert_eq!(report.producer_reruns, 3, "one regeneration per file");
        assert_eq!(report.replica_failovers, 0, "nowhere to fail over to");
        assert!((stats.bytes_staged - 3_000_000.0).abs() < 1.0);
    }

    #[test]
    fn naive_retry_grinds_through_transient_corruption() {
        let mut rec = RecoveryConfig::default();
        rec.corruption.set_host_prob("gridftp-vm", 0.5);
        rec.report_health = false; // naive: no health reports, no re-planning
        let (stats, _c) = run_with_recovery(6, 1_000_000, rec, |cfg| {
            cfg.seed = 19;
        });
        assert!(
            stats.success,
            "per-attempt independence guarantees progress"
        );
        let report = stats.recovery.as_ref().expect("recovery report");
        assert!(report.corrupt_reads > 0, "p=0.5 must corrupt something");
        assert_eq!(report.health_reports, 0, "naive mode stays silent");
        assert_eq!(report.replica_failovers, 0);
        assert_eq!(report.producer_reruns, 0);
    }

    #[test]
    fn backend_outage_steers_placement_away() {
        // The cheapest backend goes down before the run starts; policy
        // placement must route every staged byte elsewhere.
        let (mut topo, gridftp, _apache, nfs) = pwm_net::paper_testbed();
        let trio = pwm_storage::ec2_trio();
        let layer = StorageLayer::install(&mut topo, nfs, &trio);
        let nfs_std_host = layer.backend("nfs-std").expect("trio has nfs-std").host;
        let site = ComputeSite {
            name: "obelix".into(),
            nodes: 9,
            cores_per_node: 6,
            storage_host: nfs,
            storage_host_name: "obelix-nfs".into(),
            scratch_dir: "/scratch".into(),
        };
        let network = Network::new(topo, StreamModel::default());
        let mut rc = ReplicaCatalog::new();
        register_inputs(&mut rc, 5, gridftp);
        let wf = wide_workflow(5, 5_000_000);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let mut policy =
            PolicyConfig::default().with_storage(pwm_core::StoragePolicy::GreedyCheapest);
        for spec in &trio {
            policy = policy.with_backend(spec.clone(), "obelix-nfs");
        }
        let controller = PolicyController::new(policy);
        let transport = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));
        let mut cfg = ExecutorConfig::default();
        cfg.storage = Some(StorageRuntime::new(layer));
        let mut rec = RecoveryConfig::default();
        rec.backend_outages.push(BackendOutage {
            backend: "nfs-std".into(),
            host: nfs_std_host,
            from: SimTime::ZERO,
            duration: SimDuration::from_secs(10_000),
        });
        cfg.recovery = Some(rec);
        let exec = WorkflowExecutor::new(&p, &site, network, transport, cfg);
        let (stats, _net) = exec.run();
        assert!(stats.success);
        let report = stats.recovery.as_ref().expect("recovery report");
        assert_eq!(report.backend_outages, 1);
        // The run finishes inside the outage window, so only the "down"
        // report is guaranteed to have fired.
        assert!(report.health_reports >= 1, "BackendDown reported");
        // Not a byte landed on the downed backend.
        let storage = stats.storage.as_ref().expect("metered");
        assert_eq!(storage.backend("nfs-std").unwrap().bytes_put, 0.0);
        assert!(stats.transfers.iter().all(|t| t.dst != nfs_std_host));
    }

    #[test]
    fn halt_checkpoint_resume_skips_finished_work() {
        let run_full = || {
            let (network, site, mut rc, gridftp) = testbed();
            register_inputs(&mut rc, 8, gridftp);
            let wf = wide_workflow(8, 20_000_000);
            let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
            let controller = PolicyController::new(PolicyConfig::default());
            let transport = Box::new(InProcessTransport::new(controller.clone(), DEFAULT_SESSION));
            let mut cfg = ExecutorConfig::default();
            cfg.seed = 23;
            let exec = WorkflowExecutor::new(&p, &site, network, transport, cfg);
            exec.run().0
        };
        let full = run_full();
        assert!(full.success);

        // Same setup, but the site "crashes" mid-run: halt, checkpoint,
        // then resume against the same policy controller.
        let (network, site, mut rc, gridftp) = testbed();
        register_inputs(&mut rc, 8, gridftp);
        let wf = wide_workflow(8, 20_000_000);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let controller = PolicyController::new(PolicyConfig::default());
        let transport = Box::new(InProcessTransport::new(controller.clone(), DEFAULT_SESSION));
        let mut cfg = ExecutorConfig::default();
        cfg.seed = 23;
        // The 8 WAN flows fair-share the bottleneck and all finish around
        // 85% of the makespan; halt just after, mid-compute, so the
        // checkpoint holds the stage-in frontier.
        cfg.halt_at = Some(SimTime::from_secs_f64(full.makespan_secs() * 0.92));
        let exec = WorkflowExecutor::new(&p, &site, network, transport, cfg.clone());
        let (halted, _net, cp) = exec.run_checkpointed();
        assert!(!halted.success, "halted mid-DAG");
        assert!(!cp.is_empty(), "something completed before the halt");
        assert!(cp.completed_jobs.len() < p.len());

        let (network2, ..) = testbed();
        let transport2 = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));
        let mut cfg2 = ExecutorConfig::default();
        cfg2.seed = 23;
        cfg2.resume_from = Some(cp.clone());
        let exec2 = WorkflowExecutor::new(&p, &site, network2, transport2, cfg2);
        let (resumed, _net) = exec2.run();
        assert!(resumed.success, "resume completes the remaining frontier");
        // Finished jobs did not re-run and already-staged files were
        // deduplicated by the shared policy memory.
        assert!(
            resumed.bytes_staged < full.bytes_staged,
            "resumed {} vs full {}",
            resumed.bytes_staged,
            full.bytes_staged
        );
        assert!(resumed.staging_jobs <= full.staging_jobs);
    }

    #[test]
    fn cleanup_price_boost_orders_priciest_first() {
        let price = |f: &str| match f {
            "s3://a" => Some(0.000_05),
            "pfs://b" => Some(0.001_2),
            "nfs://c" => Some(0.000_1),
            _ => None,
        };
        let boost =
            |files: &[&str]| cleanup_price_boost(files.iter().map(|s| s.to_string()), price);
        // The priciest residency dominates the boost.
        assert_eq!(boost(&["pfs://b", "nfs://c"]), 12_000);
        assert_eq!(boost(&["s3://a"]), 500);
        assert_eq!(boost(&["nfs://c"]), 1_000);
        // Eviction order: pfs > nfs > s3 > unmetered.
        assert!(boost(&["pfs://b"]) > boost(&["nfs://c"]));
        assert!(boost(&["nfs://c"]) > boost(&["s3://a"]));
        assert_eq!(boost(&["unknown"]), 0);
        assert_eq!(boost(&[]), 0);
    }

    #[test]
    fn recovery_runs_are_deterministic_per_seed() {
        let (_t, gridftp, apache, _n) = paper_testbed();
        let mk = |seed| {
            let mut rec = RecoveryConfig::default();
            rec.corruption.set_host_prob("gridftp-vm", 0.4);
            rec.crashes.push(HostCrash {
                target: CrashTarget::Host {
                    host: gridftp,
                    name: "gridftp-vm".into(),
                },
                at: SimTime::from_secs(5),
                restart_after: SimDuration::from_secs(30),
            });
            rec.replicas = mirrored_replicas(6, gridftp, apache);
            let (stats, _c) = run_with_recovery(6, 10_000_000, rec, |cfg| {
                cfg.seed = seed;
            });
            stats
        };
        let a = mk(31);
        let b = mk(31);
        assert_eq!(a, b, "same seed, same faults, same run — bit for bit");
        assert!(a.success);
        assert_ne!(mk(32), a, "a different seed perturbs the run");
    }

    #[test]
    fn compute_slots_bound_parallelism() {
        // 1 node × 1 core: 4 compute jobs of 5 s must serialize ≥ 20 s.
        let (network, _site, mut rc, gridftp) = testbed();
        register_inputs(&mut rc, 4, gridftp);
        let site = ComputeSite {
            name: "tiny".into(),
            nodes: 1,
            cores_per_node: 1,
            storage_host: pwm_net::HostId(2),
            storage_host_name: "obelix-nfs".into(),
            scratch_dir: "/scratch".into(),
        };
        let wf = wide_workflow(4, 1_000);
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let transport = Box::new(NoPolicyTransport::new(4));
        let mut cfg = ExecutorConfig::default();
        cfg.runtime_jitter = 0.0;
        let exec = WorkflowExecutor::new(&p, &site, network, transport, cfg);
        let (stats, _net) = exec.run();
        assert!(stats.success);
        assert!(
            stats.makespan_secs() >= 20.0,
            "makespan {} < serialized compute time",
            stats.makespan_secs()
        );
    }
}
