//! # pwm-workflow — the workflow management substrate
//!
//! A from-scratch stand-in for the Pegasus Workflow Management System and
//! the Condor DAGMan executor beneath it, providing exactly the pieces the
//! paper's evaluation depends on:
//!
//! * [`dag`] — abstract workflows (jobs + logical files, DAX-style), with
//!   data dependencies derived from producer/consumer relations;
//! * [`catalog`] — site and replica catalogs (the Obelix compute site, the
//!   Apache/GridFTP data sources);
//! * [`dax`] — DAX-dialect XML import/export (the Pegasus interchange
//!   format);
//! * [`planner`] — the planning phase: stage-in / stage-out / cleanup job
//!   insertion and horizontal task clustering with a clustering factor;
//! * [`executor`] — a DAGMan-like engine over the `pwm-net` simulator with
//!   compute slots, the local staging-job limit, per-job retries, and a
//!   Pegasus-Transfer-Tool state machine that consults the Policy Service
//!   through `pwm_core::transport::PolicyTransport` and executes approved
//!   transfers serially in the advised order;
//! * [`stats`] — per-run statistics (makespan, staging goodput, retries,
//!   peak WAN streams) consumed by the benchmark harness.

#![warn(missing_docs)]

pub mod catalog;
pub mod dag;
pub mod dax;
pub mod executor;
pub mod multi;
pub mod planner;
pub mod recovery;
pub mod report;
pub mod stats;

pub use catalog::{ComputeSite, Replica, ReplicaCatalog};
pub use dag::{AbstractJob, AbstractWorkflow, JobIx, WorkflowError};
pub use dax::{parse_dax, to_dax, DaxError};
pub use executor::{ExecutorConfig, StorageRuntime, WorkflowExecutor};
pub use multi::merge_plans;
pub use planner::{
    plan, ExecutablePlan, PlanError, PlanJob, PlanJobId, PlanJobKind, PlannedTransfer,
    PlannerConfig,
};
pub use recovery::{
    BackendOutage, Checkpoint, CrashTarget, HostCrash, RecoveryConfig, RecoveryReport,
};
pub use report::render_report;
pub use stats::RunStats;
