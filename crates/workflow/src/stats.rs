//! Post-run statistics of a workflow execution.

use crate::recovery::RecoveryReport;
use pwm_net::TransferRecord;
use pwm_sim::{SimDuration, SimTime};
use pwm_storage::StorageCostReport;

/// Everything the experiment harness wants to know about one run.
///
/// `PartialEq` compares every field (floats exactly): two same-seed runs of
/// a deterministic experiment must produce `==` stats, and the determinism
/// suite asserts exactly that.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Wall-clock (virtual) time from release of the first job to completion
    /// of the last — the quantity plotted in Figures 5–9.
    pub makespan: SimDuration,
    /// Whether every job completed (false → a job exhausted its retries).
    pub success: bool,
    /// Jobs by category.
    pub compute_jobs: usize,
    /// Stage-in + stage-out jobs executed.
    pub staging_jobs: usize,
    /// Cleanup jobs executed.
    pub cleanup_jobs: usize,
    /// Total payload bytes moved by staging.
    pub bytes_staged: f64,
    /// Completed transfer records (for goodput analysis).
    pub transfers: Vec<TransferRecord>,
    /// Transfers skipped on policy advice (duplicates / already staged).
    pub transfers_skipped: usize,
    /// Transfer attempts that failed (failure injection) and were retried.
    pub transfer_retries: u64,
    /// Jobs that permanently failed.
    pub failed_jobs: usize,
    /// Calls made to the policy service (advice + reports).
    pub policy_calls: u64,
    /// Sum of busy core-seconds across compute jobs.
    pub compute_core_seconds: f64,
    /// Peak concurrent streams observed on the WAN bottleneck link (`None`
    /// when the run had no WAN transfers) — the simulator-side check of
    /// Table IV.
    pub peak_wan_streams: Option<u32>,
    /// Largest number of bytes simultaneously resident on site scratch —
    /// the finite-storage pressure that motivates cleanup jobs.
    pub peak_scratch_bytes: f64,
    /// Bytes left on scratch at the end (0 when cleanup is enabled and
    /// every cleanup ran).
    pub final_scratch_bytes: f64,
    /// Virtual time the run finished.
    pub finished_at: SimTime,
    /// Dollar-cost accounting of the storage backends (`None` when the run
    /// had no storage layer attached).
    pub storage: Option<StorageCostReport>,
    /// What the recovery plane did (`None` when no — or an inert — recovery
    /// config was attached).
    pub recovery: Option<RecoveryReport>,
}

impl RunStats {
    /// Makespan in seconds (convenience for plotting).
    pub fn makespan_secs(&self) -> f64 {
        self.makespan.as_secs_f64()
    }

    /// Aggregate staging goodput in bytes/sec over the staging window.
    pub fn staging_goodput(&self) -> f64 {
        if self.transfers.is_empty() {
            return 0.0;
        }
        let start = self
            .transfers
            .iter()
            .map(|t| t.requested_at)
            .min()
            .unwrap_or(SimTime::ZERO);
        let end = self
            .transfers
            .iter()
            .map(|t| t.completed_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        let window = end.since(start).as_secs_f64();
        if window <= 0.0 {
            0.0
        } else {
            self.bytes_staged / window
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> RunStats {
        RunStats {
            makespan: SimDuration::from_secs(100),
            success: true,
            compute_jobs: 0,
            staging_jobs: 0,
            cleanup_jobs: 0,
            bytes_staged: 0.0,
            transfers: Vec::new(),
            transfers_skipped: 0,
            transfer_retries: 0,
            failed_jobs: 0,
            policy_calls: 0,
            compute_core_seconds: 0.0,
            peak_wan_streams: None,
            peak_scratch_bytes: 0.0,
            final_scratch_bytes: 0.0,
            finished_at: SimTime::from_secs(100),
            storage: None,
            recovery: None,
        }
    }

    #[test]
    fn makespan_secs_converts() {
        assert_eq!(empty().makespan_secs(), 100.0);
    }

    #[test]
    fn goodput_of_no_transfers_is_zero() {
        assert_eq!(empty().staging_goodput(), 0.0);
    }

    #[test]
    fn goodput_uses_staging_window() {
        use pwm_net::{FlowId, HostId};
        let mut s = empty();
        s.bytes_staged = 100.0;
        s.transfers.push(TransferRecord {
            flow: FlowId(0),
            tag: 0,
            src: HostId(0),
            dst: HostId(1),
            bytes: 100.0,
            streams: 1,
            requested_at: SimTime::from_secs(10),
            activated_at: SimTime::from_secs(10),
            completed_at: SimTime::from_secs(20),
        });
        assert!((s.staging_goodput() - 10.0).abs() < 1e-9);
    }
}
