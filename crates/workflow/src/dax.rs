//! DAX import/export — the Pegasus workflow interchange format.
//!
//! Pegasus workflows are described in DAX ("directed acyclic graph in XML")
//! documents. This module reads and writes a faithful simplified dialect of
//! DAX 3: an `<adag>` element containing `<job>` elements, each with `<uses>`
//! children declaring input/output files with sizes. Dependencies are
//! derived from producer/consumer relations exactly as [`crate::dag`] does,
//! so `<child>/<parent>` edges are not required (Pegasus itself can infer
//! them the same way).
//!
//! ```xml
//! <adag name="montage-4x5">
//!   <job id="j0" name="mProjectPP_00_00" transformation="mProjectPP" runtime="8">
//!     <uses file="2mass_00_00.fits" link="input" size="2000000"/>
//!     <uses file="p_00_00.fits" link="output" size="4000000"/>
//!   </job>
//! </adag>
//! ```
//!
//! The writer/parser are hand-rolled (no XML crate in the dependency
//! budget); the parser accepts exactly the subset the writer emits plus
//! whitespace/comment variations, and rejects anything else loudly.

use crate::dag::{AbstractJob, AbstractWorkflow};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Errors from [`parse_dax`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaxError {
    /// Document structure violated (unexpected/missing tags).
    Structure(String),
    /// An attribute was missing or unparsable.
    Attribute(String),
}

impl std::fmt::Display for DaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaxError::Structure(m) => write!(f, "malformed DAX: {m}"),
            DaxError::Attribute(m) => write!(f, "bad DAX attribute: {m}"),
        }
    }
}
impl std::error::Error for DaxError {}

/// Serialize a workflow to the DAX dialect.
pub fn to_dax(workflow: &AbstractWorkflow) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    let _ = writeln!(out, "<adag name=\"{}\">", escape(&workflow.name));
    for (ix, job) in workflow.jobs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  <job id=\"j{ix}\" name=\"{}\" transformation=\"{}\" runtime=\"{}\">",
            escape(&job.name),
            escape(&job.transformation),
            job.runtime_s
        );
        for input in &job.inputs {
            let _ = writeln!(
                out,
                "    <uses file=\"{}\" link=\"input\" size=\"{}\"/>",
                escape(input),
                workflow.file_size(input).unwrap_or(0)
            );
        }
        for output in &job.outputs {
            let _ = writeln!(
                out,
                "    <uses file=\"{}\" link=\"output\" size=\"{}\"/>",
                escape(output),
                workflow.file_size(output).unwrap_or(0)
            );
        }
        out.push_str("  </job>\n");
    }
    out.push_str("</adag>\n");
    out
}

/// Parse the DAX dialect back into a workflow.
pub fn parse_dax(text: &str) -> Result<AbstractWorkflow, DaxError> {
    let mut parser = Parser::new(text);
    parser.skip_prolog();
    let adag = parser.expect_open("adag")?;
    let name = adag
        .attr("name")
        .ok_or_else(|| DaxError::Attribute("adag missing name".into()))?;
    let mut workflow = AbstractWorkflow::new(name);
    let mut sizes: BTreeMap<String, u64> = BTreeMap::new();

    loop {
        match parser.next_tag()? {
            Tag::Open(tag) if tag.name == "job" => {
                let job_name = tag
                    .attr("name")
                    .ok_or_else(|| DaxError::Attribute("job missing name".into()))?;
                let transformation = tag
                    .attr("transformation")
                    .unwrap_or_else(|| job_name.clone());
                let runtime_s: f64 = tag
                    .attr("runtime")
                    .unwrap_or_else(|| "1".into())
                    .parse()
                    .map_err(|_| DaxError::Attribute(format!("bad runtime on {job_name}")))?;
                let mut inputs = Vec::new();
                let mut outputs = Vec::new();
                loop {
                    match parser.next_tag()? {
                        Tag::SelfClosing(uses) if uses.name == "uses" => {
                            let file = uses
                                .attr("file")
                                .ok_or_else(|| DaxError::Attribute("uses missing file".into()))?;
                            let size: u64 = uses
                                .attr("size")
                                .unwrap_or_else(|| "0".into())
                                .parse()
                                .map_err(|_| DaxError::Attribute(format!("bad size on {file}")))?;
                            sizes.insert(file.clone(), size);
                            match uses.attr("link").as_deref() {
                                Some("input") => inputs.push(file),
                                Some("output") => outputs.push(file),
                                other => {
                                    return Err(DaxError::Attribute(format!(
                                        "uses link must be input/output, got {other:?}"
                                    )))
                                }
                            }
                        }
                        Tag::Close(name) if name == "job" => break,
                        other => {
                            return Err(DaxError::Structure(format!(
                                "unexpected {other:?} inside <job>"
                            )))
                        }
                    }
                }
                workflow.add_job(AbstractJob {
                    name: job_name,
                    transformation,
                    runtime_s,
                    inputs,
                    outputs,
                });
            }
            Tag::Close(name) if name == "adag" => break,
            other => {
                return Err(DaxError::Structure(format!(
                    "unexpected {other:?} inside <adag>"
                )))
            }
        }
    }
    for (file, size) in sizes {
        workflow.set_file_size(file, size);
    }
    Ok(workflow)
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

#[derive(Debug)]
struct TagData {
    name: String,
    attrs: Vec<(String, String)>,
}

impl TagData {
    fn attr(&self, name: &str) -> Option<String> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| unescape(v))
    }
}

#[derive(Debug)]
enum Tag {
    Open(TagData),
    SelfClosing(TagData),
    Close(String),
}

struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { rest: text }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            self.rest = self.rest.trim_start();
            if let Some(after) = self.rest.strip_prefix("<!--") {
                match after.find("-->") {
                    Some(end) => self.rest = &after[end + 3..],
                    None => {
                        self.rest = "";
                        return;
                    }
                }
            } else {
                return;
            }
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_ws_and_comments();
        if self.rest.starts_with("<?") {
            if let Some(end) = self.rest.find("?>") {
                self.rest = &self.rest[end + 2..];
            }
        }
    }

    fn expect_open(&mut self, name: &str) -> Result<TagData, DaxError> {
        match self.next_tag()? {
            Tag::Open(tag) if tag.name == name => Ok(tag),
            other => Err(DaxError::Structure(format!(
                "expected <{name}>, found {other:?}"
            ))),
        }
    }

    fn next_tag(&mut self) -> Result<Tag, DaxError> {
        self.skip_ws_and_comments();
        let rest = self.rest.strip_prefix('<').ok_or_else(|| {
            DaxError::Structure(format!("expected tag, found {:?}", head(self.rest)))
        })?;
        let end = rest
            .find('>')
            .ok_or_else(|| DaxError::Structure("unterminated tag".into()))?;
        let inner = &rest[..end];
        self.rest = &rest[end + 1..];

        if let Some(name) = inner.strip_prefix('/') {
            return Ok(Tag::Close(name.trim().to_string()));
        }
        let (inner, self_closing) = match inner.strip_suffix('/') {
            Some(i) => (i, true),
            None => (inner, false),
        };
        let mut parts = inner.splitn(2, char::is_whitespace);
        let name = parts
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| DaxError::Structure("empty tag name".into()))?
            .to_string();
        let attrs = parse_attrs(parts.next().unwrap_or(""))?;
        let data = TagData { name, attrs };
        Ok(if self_closing {
            Tag::SelfClosing(data)
        } else {
            Tag::Open(data)
        })
    }
}

fn parse_attrs(mut s: &str) -> Result<Vec<(String, String)>, DaxError> {
    let mut attrs = Vec::new();
    loop {
        s = s.trim_start();
        if s.is_empty() {
            return Ok(attrs);
        }
        let eq = s
            .find('=')
            .ok_or_else(|| DaxError::Attribute(format!("missing '=' in {:?}", head(s))))?;
        let key = s[..eq].trim().to_string();
        let after = s[eq + 1..].trim_start();
        let after = after
            .strip_prefix('"')
            .ok_or_else(|| DaxError::Attribute(format!("unquoted value for {key}")))?;
        let close = after
            .find('"')
            .ok_or_else(|| DaxError::Attribute(format!("unterminated value for {key}")))?;
        attrs.push((key, after[..close].to_string()));
        s = &after[close + 1..];
    }
}

fn head(s: &str) -> &str {
    match s.char_indices().nth(24) {
        Some((ix, _)) => &s[..ix],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AbstractWorkflow {
        let mut wf = AbstractWorkflow::new("sample");
        wf.add_job(AbstractJob {
            name: "proj_0".into(),
            transformation: "mProjectPP".into(),
            runtime_s: 8.0,
            inputs: vec!["raw.fits".into()],
            outputs: vec!["p.fits".into()],
        });
        wf.add_job(AbstractJob {
            name: "add_0".into(),
            transformation: "mAdd".into(),
            runtime_s: 40.0,
            inputs: vec!["p.fits".into()],
            outputs: vec!["mosaic.fits".into()],
        });
        wf.set_file_size("raw.fits", 2_000_000);
        wf.set_file_size("p.fits", 4_000_000);
        wf.set_file_size("mosaic.fits", 160_000_000);
        wf
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = sample();
        let dax = to_dax(&original);
        let parsed = parse_dax(&dax).unwrap();
        assert_eq!(parsed.name, original.name);
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.jobs().iter().zip(parsed.jobs()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.transformation, b.transformation);
            assert_eq!(a.runtime_s, b.runtime_s);
            assert_eq!(a.inputs, b.inputs);
            assert_eq!(a.outputs, b.outputs);
        }
        assert_eq!(parsed.file_size("mosaic.fits"), Some(160_000_000));
        // Dependencies survive (derived from files).
        assert_eq!(parsed.edges().unwrap(), original.edges().unwrap());
    }

    #[test]
    fn output_looks_like_dax() {
        let dax = to_dax(&sample());
        assert!(dax.starts_with("<?xml"));
        assert!(dax.contains("<adag name=\"sample\">"));
        assert!(dax.contains("<job id=\"j0\" name=\"proj_0\" transformation=\"mProjectPP\""));
        assert!(dax.contains("<uses file=\"raw.fits\" link=\"input\" size=\"2000000\"/>"));
        assert!(dax.ends_with("</adag>\n"));
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let dax = r#"
            <?xml version="1.0"?>
            <!-- generated by pegasus-like tooling -->
            <adag name="w">
              <!-- first job -->
              <job id="j0" name="a" transformation="t" runtime="2.5">
                <uses file="in" link="input" size="10"/>
                <uses file="out" link="output" size="20"/>
              </job>
            </adag>
        "#;
        let wf = parse_dax(dax).unwrap();
        assert_eq!(wf.len(), 1);
        assert_eq!(wf.job(crate::dag::JobIx(0)).runtime_s, 2.5);
        assert_eq!(wf.file_size("out"), Some(20));
    }

    #[test]
    fn escaped_names_roundtrip() {
        let mut wf = AbstractWorkflow::new(r#"weird "name" <&>"#);
        wf.add_job(AbstractJob {
            name: "j<1>".into(),
            transformation: "t&t".into(),
            runtime_s: 1.0,
            inputs: vec![],
            outputs: vec![],
        });
        let parsed = parse_dax(&to_dax(&wf)).unwrap();
        assert_eq!(parsed.name, wf.name);
        assert_eq!(parsed.jobs()[0].name, "j<1>");
        assert_eq!(parsed.jobs()[0].transformation, "t&t");
    }

    #[test]
    fn missing_name_rejected() {
        assert!(matches!(
            parse_dax("<adag></adag>"),
            Err(DaxError::Attribute(_))
        ));
    }

    #[test]
    fn bad_link_rejected() {
        let dax = r#"<adag name="w"><job id="j0" name="a">
            <uses file="f" link="sideways" size="1"/></job></adag>"#;
        assert!(matches!(parse_dax(dax), Err(DaxError::Attribute(_))));
    }

    #[test]
    fn truncated_document_rejected() {
        let dax = r#"<adag name="w"><job id="j0" name="a">"#;
        assert!(parse_dax(dax).is_err());
    }

    #[test]
    fn garbage_rejected_without_panic() {
        for garbage in ["", "not xml", "<adag", "<adag name=\"w\"><job/></adag>"] {
            let _ = parse_dax(garbage);
        }
    }

    #[test]
    fn montage_89_jobs_roundtrip() {
        // The full paper workload survives the interchange format.
        let mut wf = AbstractWorkflow::new("m");
        for i in 0..89 {
            wf.add_job(AbstractJob {
                name: format!("job_{i}"),
                transformation: "t".into(),
                runtime_s: i as f64,
                inputs: vec![format!("in_{i}")],
                outputs: vec![format!("out_{i}")],
            });
            wf.set_file_size(format!("in_{i}"), i);
            wf.set_file_size(format!("out_{i}"), i * 2);
        }
        let parsed = parse_dax(&to_dax(&wf)).unwrap();
        assert_eq!(parsed.len(), 89);
        assert_eq!(parsed.file_size("out_88"), Some(176));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-zA-Z0-9_.<>&\" -]{1,24}"
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary job structure round-trips.
        #[test]
        fn arbitrary_workflows_roundtrip(
            wf_name in arb_name(),
            jobs in proptest::collection::vec(
                (arb_name(), 0.1f64..1000.0, 0usize..4, 0usize..4),
                1..20,
            ),
        ) {
            let mut wf = AbstractWorkflow::new(wf_name);
            for (i, (name, runtime, n_in, n_out)) in jobs.into_iter().enumerate() {
                let inputs: Vec<String> = (0..n_in).map(|k| format!("in_{i}_{k}")).collect();
                let outputs: Vec<String> = (0..n_out).map(|k| format!("out_{i}_{k}")).collect();
                for f in inputs.iter().chain(&outputs) {
                    wf.set_file_size(f, (i * 1000) as u64);
                }
                wf.add_job(AbstractJob {
                    name: format!("{name}_{i}"),
                    transformation: name,
                    runtime_s: runtime,
                    inputs,
                    outputs,
                });
            }
            let parsed = parse_dax(&to_dax(&wf)).unwrap();
            prop_assert_eq!(&parsed.name, &wf.name);
            prop_assert_eq!(parsed.len(), wf.len());
            for (a, b) in wf.jobs().iter().zip(parsed.jobs()) {
                prop_assert_eq!(&a.name, &b.name);
                prop_assert_eq!(a.runtime_s, b.runtime_s);
                prop_assert_eq!(&a.inputs, &b.inputs);
                prop_assert_eq!(&a.outputs, &b.outputs);
            }
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_never_panics(text in "\\PC{0,512}") {
            let _ = parse_dax(&text);
        }
    }
}
