#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test -q --workspace --offline

echo "CI OK"
