#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test -q --workspace --offline

# Chaos job: the fault-injection suite in release mode with fixed seeds
# (the seeds are baked into tests/chaos_faults.rs; release catches
# timing-sensitive determinism regressions the debug run might mask).
echo "== cargo test --release (chaos) =="
cargo test -q --release --offline --test chaos_faults

echo "CI OK"
