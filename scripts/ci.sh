#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test -q --workspace --offline

# Chaos job: the fault-injection suite in release mode with fixed seeds
# (the seeds are baked into tests/chaos_faults.rs; release catches
# timing-sensitive determinism regressions the debug run might mask).
echo "== cargo test --release (chaos) =="
cargo test -q --release --offline --test chaos_faults

# Observability job: a traced paper-setup run must export a valid,
# non-empty Chrome trace, and a live /metrics scrape over the REST
# interface must succeed. Both commands exit nonzero on failure.
echo "== repro --trace + /metrics scrape =="
cargo build -q --release --offline -p pwm-bench --bin repro
TRACE_OUT="$(mktemp /tmp/pwm-trace.XXXXXX.json)"
trap 'rm -f "$TRACE_OUT"' EXIT
./target/release/repro --trace "$TRACE_OUT" 1
test -s "$TRACE_OUT" || { echo "trace export is empty" >&2; exit 1; }
./target/release/repro validate-trace "$TRACE_OUT"
./target/release/repro scrape-metrics > /dev/null

# Crash-recovery job: the durability acceptance suite in release mode
# (seeded WAL crash points, warm-failover invariants, recovery
# determinism), then the cold-vs-warm recovery scenario through the repro
# binary — it exits nonzero if any recovery invariant is violated.
echo "== cargo test --release (crash recovery) =="
cargo test -q --release --offline --test crash_recovery
echo "== repro crash =="
./target/release/repro crash 7 > /dev/null

# Netbench job: the 1k-flow allocator-throughput smoke in release mode.
# The run itself takes ~1 s. `--min-events-per-sec 250000` is the engine
# floor: with the ladder queue and the cache-packed hot rows the committed
# BENCH_net.json records well over 1M events/s for this scenario, so a 4x+
# margin absorbs CI-machine noise (shared runners measure this engine
# anywhere across a ~2x band minute to minute) while still catching
# structural regressions — losing the O(1) queue or the one-line flow rows
# costs integer factors, and the incremental engine silently falling back
# to full recomputes runs at ~400 events/s. Throughput is judged
# best-of-3: a single cold run on a noisy shared runner can land anywhere
# in that band, so the gate retries up to two times and fails only when
# every attempt misses the floor — flake-resistant without weakening the
# structural check. The JSON report (last passing attempt, or the final
# failing one) is recorded as a build artifact next to the committed
# BENCH_net.json (full suite).
echo "== netbench smoke (1k flows, 250k events/s floor, best of 3) =="
cargo build -q --release --offline -p pwm-bench --bin netbench
mkdir -p target/netbench
netbench_ok=0
for attempt in 1 2 3; do
  if timeout 120 ./target/release/netbench smoke --min-events-per-sec 250000 \
    --out target/netbench/BENCH_net.json > /dev/null; then
    netbench_ok=1
    break
  fi
  echo "netbench smoke attempt ${attempt} missed the floor" >&2
done
[ "$netbench_ok" = 1 ] || { echo "netbench smoke failed 3/3 attempts" >&2; exit 1; }
test -s target/netbench/BENCH_net.json || { echo "netbench report is empty" >&2; exit 1; }

# Differential job: the arena fact store and both event queues (indexed
# heap and ladder) are locked to their straightforward oracles (legacy
# map-backed working memory, sorted-Vec queue) by randomized lockstep
# suites — the queue suite drives heap and ladder side by side through
# cancel/reschedule storms, same-instant bursts, and far-future outliers,
# checking the ladder's internal invariants as it goes. The workspace
# run above already exercises them at the default case budgets (128 / 256);
# this release pass raises the budget 8x so CI walks a much deeper slice
# of the command space. PWM_PROPTEST_CASES is read at *compile* time
# (option_env!), so it is set on the cargo invocation, not the binary.
echo "== differential suites (release, 8x case budget) =="
PWM_PROPTEST_CASES=1024 cargo test -q --release --offline \
  -p pwm-rules --test facts_differential
PWM_PROPTEST_CASES=2048 cargo test -q --release --offline \
  -p pwm-sim --test event_differential

# Svcbench job: the Policy Service front-end smoke grid in release mode —
# three cells (connect-per-request baseline, pipelined/batched, sharded)
# against the live event-driven REST server. `--min-speedup 2` makes the
# run exit nonzero unless the batched path beats the pre-change
# connect-per-request client by at least 2x (the full grid in the
# committed BENCH_svc.json shows >5x); this catches regressions that
# silently knock the event loop back to request-per-round-trip economics.
echo "== svcbench smoke (policy front end) =="
cargo build -q --release --offline -p pwm-bench --bin svcbench
mkdir -p target/svcbench
timeout 300 ./target/release/svcbench smoke --min-speedup 2 \
  --out target/svcbench/BENCH_svc.json > /dev/null
test -s target/svcbench/BENCH_svc.json || { echo "svcbench report is empty" >&2; exit 1; }

# Storagebench job: the storage-backend frontier smoke in release mode —
# three fixed-backend comparators (NFS / parallel FS / object store)
# against the three policy-picked runs over the same trio. The bin exits
# nonzero on any cost-invariant violation: inconsistent accounting
# (component sums, metered bytes != staged bytes), a non-monotone
# makespan-vs-dollars Pareto frontier, or no policy-picked run beating
# the worst fixed backend on cost at equal-or-better makespan. The full
# suite's JSON is committed as BENCH_storage.json.
echo "== storagebench smoke (backend cost frontier) =="
cargo build -q --release --offline -p pwm-bench --bin storagebench
mkdir -p target/storagebench
timeout 120 ./target/release/storagebench smoke \
  --out target/storagebench/BENCH_storage.json > /dev/null
test -s target/storagebench/BENCH_storage.json || { echo "storagebench report is empty" >&2; exit 1; }

# Resiliencebench job: the failure-domain sweep smoke in release mode —
# the fault-intensity ladder (calm / rough / turbulent) × policy-guided vs
# naive-retry recovery, every cell run twice. The bin exits nonzero on any
# incomplete workflow at any swept intensity, any same-seed determinism
# mismatch, staged bytes differing from one clean copy per input, or a
# turbulent-cell policy-guided speedup below the committed 1.2x floor.
# The full suite's JSON is committed as BENCH_resilience.json.
echo "== resiliencebench smoke (failure domains, guided vs naive) =="
cargo build -q --release --offline -p pwm-bench --bin resiliencebench
mkdir -p target/resiliencebench
timeout 120 ./target/release/resiliencebench smoke \
  --out target/resiliencebench/BENCH_resilience.json > /dev/null
test -s target/resiliencebench/BENCH_resilience.json || { echo "resiliencebench report is empty" >&2; exit 1; }

echo "CI OK"
