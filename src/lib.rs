//! Root crate: re-exports of the policy-wms workspace.
//!
//! See the README for the crate map; this package exists to host the
//! runnable examples and the cross-crate integration tests.

pub use pwm_bench as bench;
pub use pwm_core as core;
pub use pwm_montage as montage;
pub use pwm_net as net;
pub use pwm_rest as rest;
pub use pwm_rules as rules;
pub use pwm_sim as sim;
pub use pwm_workflow as workflow;
