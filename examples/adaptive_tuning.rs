//! The paper's future work, running: "we will also explore machine learning
//! algorithms to help us learn what data transfer settings (such as the
//! threshold number of streams) are the most beneficial".
//!
//! Episodes of a staging-heavy workload run under the threshold chosen by
//! an online ε-greedy [`ThresholdTuner`]; after each episode the tuner
//! observes every transfer's achieved goodput and updates its estimates.
//! Within a couple dozen episodes it settles on the healthy region of the
//! stream-allocation curve (the paper's empirically best 50, not the
//! over-subscribed 200).
//!
//! ```text
//! cargo run --release --example adaptive_tuning
//! ```

use pwm_bench::{mb, MontageExperiment, PolicyMode};
use pwm_core::{ThresholdTuner, TransferObservation};

fn main() {
    let mut tuner = ThresholdTuner::new(vec![25, 50, 100, 200], 7)
        .with_min_samples(60)
        .with_epsilon(0.05);

    println!("episode  threshold  makespan(s)  mean-goodput(MB/s)");
    for episode in 0..24 {
        let threshold = tuner.active_threshold();
        // One staging-heavy campaign under the tuner's threshold: the
        // augmented Montage at 10 MB extras (fast to simulate, enough WAN
        // transfers for ~90 observations per episode).
        let exp = MontageExperiment::paper_setup(mb(10), 8, PolicyMode::Greedy { threshold });
        let stats = exp.run_once(1000 + episode);
        assert!(stats.success);

        // Feed every WAN transfer's goodput back to the tuner (the 10 MB
        // extras; the small Montage inputs travel the LAN and would pollute
        // the reward signal).
        let wan: Vec<_> = stats
            .transfers
            .iter()
            .filter(|t| t.bytes >= 9.0e6)
            .collect();
        let mean_goodput = wan.iter().map(|t| t.goodput()).sum::<f64>() / wan.len().max(1) as f64;
        for t in &wan {
            tuner.observe(TransferObservation {
                goodput: t.goodput(),
                concurrent: 20,
            });
        }
        println!(
            "{:>7}  {:>9}  {:>11.0}  {:>18.3}",
            episode,
            threshold,
            stats.makespan_secs(),
            mean_goodput / 1e6,
        );
    }

    println!("\ntuner estimates (aggregate goodput, MB/s):");
    for (threshold, estimate) in tuner.estimates() {
        match estimate {
            Some(e) => println!("  threshold {threshold:>4}: {:.2}", e / 1e6),
            None => println!("  threshold {threshold:>4}: (untried)"),
        }
    }
    println!(
        "\nconverged recommendation: threshold {}",
        tuner.best_threshold()
    );
    assert!(
        tuner.best_threshold() <= 100,
        "the tuner must avoid the over-subscribed region"
    );
}
