//! Quickstart: stand up a Policy Service, submit a staging request list the
//! way the Pegasus Transfer Tool does, and walk the full advice lifecycle.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pwm_core::{
    AllocationPolicy, CleanupSpec, PolicyConfig, PolicyService, TransferOutcome, TransferSpec, Url,
    WorkflowId,
};

fn main() {
    // 1. Configure the service the way a site administrator would: default
    //    8 streams per transfer, at most 50 streams between any host pair,
    //    greedy allocation (the paper's best-performing setting).
    let mut service = PolicyService::new(
        PolicyConfig::default()
            .with_default_streams(8)
            .with_threshold(50)
            .with_allocation(AllocationPolicy::Greedy),
    );

    // 2. A staging job submits its transfer list — note the duplicate.
    let batch: Vec<TransferSpec> = (0..7)
        .map(|i| TransferSpec {
            source: Url::parse(&format!("gsiftp://gridftp-vm.tacc/data/input_{i}.dat")).unwrap(),
            dest: Url::parse(&format!("file://obelix-nfs/scratch/run1/input_{i}.dat")).unwrap(),
            bytes: 100_000_000,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        })
        .chain(std::iter::once(TransferSpec {
            // Same file again — the policy will remove the duplicate.
            source: Url::parse("gsiftp://gridftp-vm.tacc/data/input_0.dat").unwrap(),
            dest: Url::parse("file://obelix-nfs/scratch/run1/input_0.dat").unwrap(),
            bytes: 100_000_000,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        }))
        .collect();

    println!("submitting {} transfer requests...\n", batch.len());
    let advice = service.evaluate_transfers(batch);

    println!(
        "{:<6}{:<34}{:<10}{:>8}{:>8}",
        "order", "source", "action", "streams", "group"
    );
    for a in &advice {
        println!(
            "{:<6}{:<34}{:<10}{:>8}{:>8}",
            a.order,
            a.source.to_string(),
            if a.should_execute() {
                "execute"
            } else {
                "skip"
            },
            a.streams,
            a.group.0,
        );
    }

    // Greedy arithmetic: 6 × 8 = 48, then 2 to reach the threshold, then 1.
    println!(
        "\nstreams allocated between (gridftp-vm.tacc → obelix-nfs): {}",
        service.allocated("gridftp-vm.tacc", "obelix-nfs")
    );

    // 3. Report completions: streams are released, files become shareable.
    let outcomes: Vec<TransferOutcome> = advice
        .iter()
        .filter(|a| a.should_execute())
        .map(|a| TransferOutcome {
            id: a.id,
            success: true,
        })
        .collect();
    service.report_transfers(outcomes);
    println!(
        "after completion reports: allocated = {}, staged files = {}",
        service.allocated("gridftp-vm.tacc", "obelix-nfs"),
        service.snapshot().staged_files,
    );

    // 4. A second workflow asks for one of the same files → deduplicated.
    let again = service.evaluate_transfers(vec![TransferSpec {
        source: Url::parse("gsiftp://gridftp-vm.tacc/data/input_3.dat").unwrap(),
        dest: Url::parse("file://obelix-nfs/scratch/run1/input_3.dat").unwrap(),
        bytes: 100_000_000,
        requested_streams: None,
        workflow: WorkflowId(2),
        cluster: None,
        priority: None,
    }]);
    println!(
        "\nworkflow 2 requests input_3.dat again → action: {:?}",
        again[0].action
    );

    // 5. Workflow 1 wants to clean up that file — suppressed while workflow
    //    2 is using it.
    let cleanup = service.evaluate_cleanups(vec![CleanupSpec {
        file: Url::parse("file://obelix-nfs/scratch/run1/input_3.dat").unwrap(),
        workflow: WorkflowId(1),
    }]);
    println!(
        "workflow 1 cleanup of input_3.dat → action: {:?} (workflow 2 still uses it)",
        cleanup[0].action
    );

    println!("\nservice stats: {:#?}", service.stats());
}
