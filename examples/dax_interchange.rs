//! Export the paper's Montage workload to DAX (the Pegasus workflow
//! interchange format), re-import it, and plan it — demonstrating that the
//! substrate speaks the ecosystem's artifact format.
//!
//! ```text
//! cargo run --example dax_interchange
//! ```

use pwm_montage::{montage_replicas, montage_workflow, MontageConfig};
use pwm_net::paper_testbed;
use pwm_workflow::{parse_dax, plan, to_dax, ComputeSite, PlannerConfig};

fn main() {
    let workflow = montage_workflow(&MontageConfig {
        extra_file_bytes: 10_000_000,
        seed: 1,
        ..Default::default()
    });
    let dax = to_dax(&workflow);
    println!(
        "exported {} jobs to DAX ({} bytes). First lines:\n",
        workflow.len(),
        dax.len()
    );
    for line in dax.lines().take(8) {
        println!("  {line}");
    }
    println!("  ...\n");

    let reimported = parse_dax(&dax).expect("our own DAX must parse");
    assert_eq!(reimported.len(), workflow.len());
    assert_eq!(reimported.edges().unwrap(), workflow.edges().unwrap());
    println!(
        "re-imported {} jobs; dependency edges identical: {}",
        reimported.len(),
        reimported.edges().unwrap().len()
    );

    // Plan the re-imported workflow exactly like the original.
    let (_topo, gridftp, apache, nfs) = paper_testbed();
    let site = ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    let rc = montage_replicas(&reimported, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let p = plan(&reimported, &site, &rc, &PlannerConfig::default()).unwrap();
    println!(
        "planned: {} total jobs, {} data staging jobs (the paper's 89)",
        p.len(),
        p.stage_in_count()
    );
    assert_eq!(p.stage_in_count(), 89);
}
