//! Compare all three policy families on a synthetic data-intensive
//! fork-join workload: no policy, greedy allocation, balanced allocation,
//! and the four structure-based priority orderings.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use pwm_core::transport::{InProcessTransport, NoPolicyTransport, PolicyTransport};
use pwm_core::{
    AllocationPolicy, PolicyConfig, PolicyController, PriorityAlgorithm, DEFAULT_SESSION,
};
use pwm_montage::{fork_join, single_source_replicas};
use pwm_net::{paper_testbed, Network, StreamModel};
use pwm_workflow::{plan, ComputeSite, ExecutorConfig, PlannerConfig, WorkflowExecutor};

fn main() {
    let (topo, gridftp, _apache, nfs) = paper_testbed();
    let site = ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    // 32 workers each pulling a 100 MB input over the WAN.
    let wf = fork_join(32, 100_000_000);
    let rc = single_source_replicas(&wf, "gridftp-vm", gridftp);

    println!("fork-join(32 workers × 100 MB WAN input) on the paper testbed\n");
    println!(
        "{:<26}{:>13}{:>10}",
        "configuration", "makespan(s)", "skipped"
    );

    let run = |label: &str, planner: PlannerConfig, transport: Box<dyn PolicyTransport>| {
        let p = plan(&wf, &site, &rc, &planner).expect("plan");
        let network = Network::with_seed(topo.clone(), StreamModel::default(), 9);
        let exec = WorkflowExecutor::new(
            &p,
            &site,
            network,
            transport,
            ExecutorConfig {
                seed: 9,
                ..Default::default()
            },
        );
        let (stats, _) = exec.run();
        assert!(stats.success, "{label} failed");
        println!(
            "{:<26}{:>13.0}{:>10}",
            label,
            stats.makespan_secs(),
            stats.transfers_skipped
        );
    };

    // 1. No policy: fixed 4 streams per transfer.
    run(
        "no-policy (4 streams)",
        PlannerConfig::default(),
        Box::new(NoPolicyTransport::new(4)),
    );

    // 2. Greedy at two thresholds.
    for threshold in [50, 200] {
        let controller = PolicyController::new(
            PolicyConfig::default()
                .with_default_streams(8)
                .with_threshold(threshold)
                .with_allocation(AllocationPolicy::Greedy),
        );
        run(
            &format!("greedy threshold {threshold}"),
            PlannerConfig::default(),
            Box::new(InProcessTransport::new(controller, DEFAULT_SESSION)),
        );
    }

    // 3. Balanced with 4 clusters (clustered staging).
    let controller = PolicyController::new(
        PolicyConfig::default()
            .with_default_streams(8)
            .with_threshold(48)
            .with_cluster_factor(4)
            .with_allocation(AllocationPolicy::Balanced),
    );
    run(
        "balanced 48 / 4 clusters",
        PlannerConfig {
            clustering_factor: Some(4),
            ..Default::default()
        },
        Box::new(InProcessTransport::new(controller, DEFAULT_SESSION)),
    );

    // 4. Structure-based priorities (greedy 50 underneath).
    for algo in [
        PriorityAlgorithm::BreadthFirst,
        PriorityAlgorithm::DepthFirst,
        PriorityAlgorithm::DirectDependent,
        PriorityAlgorithm::Dependent,
    ] {
        let controller = PolicyController::new(
            PolicyConfig::default()
                .with_default_streams(8)
                .with_threshold(50)
                .with_allocation(AllocationPolicy::Greedy)
                .with_ordering(pwm_core::OrderingPolicy::ByPriority),
        );
        run(
            &format!("greedy 50 + {algo:?}"),
            PlannerConfig {
                priority: Some(algo),
                ..Default::default()
            },
            Box::new(InProcessTransport::new(controller, DEFAULT_SESSION)),
        );
    }
}
