//! Run the paper's headline experiment once, end to end: the augmented
//! 1-degree Montage workflow (89 data staging jobs, one extra 100 MB file
//! per staging job) on the simulated FutureGrid→ISI testbed, with the greedy
//! policy at threshold 50 versus default Pegasus with no policy.
//!
//! ```text
//! cargo run --release --example montage_campaign [extra_mb]
//! ```

use pwm_bench::{mb, MontageExperiment, PolicyMode};
use pwm_montage::{montage_replicas, montage_workflow, MontageConfig};
use pwm_net::paper_testbed;
use pwm_workflow::{plan, render_report, ComputeSite, PlannerConfig};

fn main() {
    let extra_mb: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    println!(
        "augmented Montage: 89 staging jobs, one extra {extra_mb} MB file each;\n\
         staging limit 20, retries 5, cleanup enabled, no clustering\n"
    );

    println!(
        "{:<14}{:>9}{:>13}{:>13}{:>10}{:>9}{:>9}",
        "policy", "streams", "makespan(s)", "staged(GB)", "peak WAN", "skipped", "calls"
    );
    for (mode, streams) in [
        (PolicyMode::NoPolicy, 4),
        (PolicyMode::Greedy { threshold: 50 }, 8),
        (PolicyMode::Greedy { threshold: 100 }, 8),
        (PolicyMode::Greedy { threshold: 200 }, 8),
        (
            PolicyMode::Balanced {
                threshold: 50,
                cluster_factor: 1,
            },
            8,
        ),
    ] {
        let exp = MontageExperiment::paper_setup(mb(extra_mb), streams, mode);
        let stats = exp.run_once(42);
        assert!(stats.success, "{} run failed", mode.label());
        println!(
            "{:<14}{:>9}{:>13.0}{:>13.2}{:>10}{:>9}{:>9}",
            mode.label(),
            streams,
            stats.makespan_secs(),
            stats.bytes_staged / 1e9,
            stats.peak_wan_streams.unwrap_or(0),
            stats.transfers_skipped,
            stats.policy_calls,
        );
    }

    println!(
        "\nNote the peak-WAN column: with 20 concurrent staging jobs the greedy\n\
         ledger reproduces Table IV exactly (e.g. threshold 50 @ 8 streams → 63)."
    );

    // Detailed pegasus-statistics-style report for the greedy-50 run.
    let exp = MontageExperiment::paper_setup(mb(extra_mb), 8, PolicyMode::Greedy { threshold: 50 });
    let stats = exp.run_once(42);
    let (_topo, gridftp, apache, nfs) = paper_testbed();
    let site = ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    let wf = montage_workflow(&MontageConfig {
        extra_file_bytes: mb(extra_mb),
        seed: 42,
        ..Default::default()
    });
    let rc = montage_replicas(&wf, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
    println!("\n{}", render_report(&p, &stats));
}
