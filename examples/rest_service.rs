//! The deployment shape of the paper's Fig. 1: the Policy Service behind a
//! RESTful web interface, with the transfer client talking JSON over HTTP.
//!
//! Starts the loopback server, configures a session over PUT, submits a
//! transfer list, reports completions, and dumps the `/status` document.
//!
//! ```text
//! cargo run --example rest_service
//! ```

use pwm_core::transport::PolicyTransport;
use pwm_core::{PolicyConfig, PolicyController, TransferOutcome, TransferSpec, Url, WorkflowId};
use pwm_rest::{PolicyRestClient, PolicyRestServer};

fn main() {
    // Server side: a Policy Controller with the default session, served
    // over a loopback TCP port.
    let controller = PolicyController::new(PolicyConfig::default());
    let server = PolicyRestServer::start(controller).expect("bind loopback");
    println!("policy service listening on http://{}\n", server.addr());

    // Client side: configure a dedicated session for this workflow run.
    let client = PolicyRestClient::new(server.addr(), "montage-run-7");
    client
        .put_config(
            &PolicyConfig::default()
                .with_default_streams(8)
                .with_threshold(50),
        )
        .expect("PUT config");
    println!("PUT /sessions/montage-run-7/config → ok");

    // Submit a transfer list exactly like the modified Pegasus Transfer
    // Tool: POST /sessions/{s}/transfers.
    let mut client = client;
    let batch: Vec<TransferSpec> = (0..5)
        .map(|i| TransferSpec {
            source: Url::parse(&format!("gsiftp://gridftp-vm/data/extra_{i}.dat")).unwrap(),
            dest: Url::parse(&format!("file://obelix-nfs/scratch/extra_{i}.dat")).unwrap(),
            bytes: 500_000_000,
            requested_streams: None,
            workflow: WorkflowId(7),
            cluster: None,
            priority: None,
        })
        .collect();
    let advice = client.evaluate_transfers(batch).expect("POST transfers");
    println!("\nPOST /sessions/montage-run-7/transfers →");
    for a in &advice {
        println!(
            "  {} {} → streams {}, group {}, order {}",
            a.id, a.source, a.streams, a.group.0, a.order
        );
    }

    // Report completions: POST /sessions/{s}/transfers/complete.
    client
        .report_transfers(
            advice
                .iter()
                .map(|a| TransferOutcome {
                    id: a.id,
                    success: true,
                })
                .collect(),
        )
        .expect("POST completions");
    println!("\nPOST /sessions/montage-run-7/transfers/complete → ok");

    // GET /sessions/{s}/status — the monitoring document.
    let status = client.status().expect("GET status");
    println!("\nGET /sessions/montage-run-7/status →");
    println!("{}", serde_json::to_string_pretty(&status).unwrap());
}
